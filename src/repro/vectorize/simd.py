"""Innermost-loop SIMD vectorization against the target's instruction set.

The vectorizer pattern-matches innermost ``ForRange`` loops whose bodies
consist of scalar temporaries, element stores with unit-stride indices,
and additive reductions.  Matched loops are strip-mined: a main loop
steps by the SIMD width executing custom-instruction calls
(:class:`~repro.ir.nodes.IntrinsicCall`, :class:`~repro.ir.nodes.VecLoad`,
:class:`~repro.ir.nodes.VecStore`), and a scalar tail loop handles the
remainder.  Reductions accumulate into a vector register and fold with a
horizontal-reduction instruction after the loop; multiply-accumulate
chains select the ``vmac`` instruction when the target has one.

Selection is entirely driven by the parameterized
:class:`~repro.asip.model.ProcessorDescription`: an operation the target
lacks simply keeps its loop scalar — this is what makes the compiler
retargetable.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.asip.model import ProcessorDescription
from repro.ir import nodes as ir
from repro.ir.passes.rewrite import assigned_vars, stored_arrays
from repro.ir.types import I32, ScalarKind, ScalarType, VectorType
from repro.observe import remarks as obs_remarks


@dataclass
class _LoopInfo:
    loop: ir.ForRange
    elem: ScalarType
    lanes: int


class SimdVectorizer:
    """Vectorizes one IR function for a given processor."""

    name = "simd-vectorize"

    def __init__(self, processor: ProcessorDescription):
        self.processor = processor
        self._counter = 0

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def run(self, func: ir.IRFunction) -> bool:
        self._func = func
        return self._walk(func.body)

    # ------------------------------------------------------------------
    # Remarks
    # ------------------------------------------------------------------

    def _missed(self, loop: ir.Stmt, message: str, **args) -> None:
        obs_remarks.missed(self.name, message,
                           function=self._func.name, line=loop.line,
                           **args)

    def _passed(self, loop: ir.Stmt, message: str, **args) -> None:
        obs_remarks.passed(self.name, message,
                           function=self._func.name, line=loop.line,
                           **args)

    def _used_outside(self, loop: ir.ForRange, name: str) -> bool:
        """Is ``name`` read (as a live value) outside ``loop``'s body?

        A loop-local temporary (or the induction variable) that is read
        after the loop would hold the wrong value when the vector main
        loop covers all iterations and the scalar tail never runs.
        Reads inside a *different* loop that uses ``name`` as its own
        induction variable don't count — that loop redefines the value
        before any use.
        """
        # A function output is read by the caller after the loop even
        # when no statement in the body mentions it again.
        if any(p.name == name for p in self._func.outputs):
            return True

        def count(body: list[ir.Stmt]) -> int:
            total = 0
            for stmt in body:
                if stmt is loop:
                    continue  # the target loop's own body is exempt
                for expr in ir.statement_exprs(stmt):
                    for node in ir.walk_expr(expr):
                        if isinstance(node, ir.VarRef) and node.name == name:
                            total += 1
                if isinstance(stmt, ir.ForRange) and stmt.var == name:
                    continue  # redefined before any body use
                for sub in stmt.substatements():
                    total += count(sub)
            return total

        return count(self._func.body) > 0

    def _walk(self, body: list[ir.Stmt]) -> bool:
        changed = False
        index = 0
        while index < len(body):
            stmt = body[index]
            if isinstance(stmt, ir.ForRange):
                if self._is_innermost(stmt):
                    replacement = self._try_vectorize(stmt)
                    if replacement is not None:
                        body[index:index + 1] = replacement
                        index += len(replacement)
                        changed = True
                        continue
                else:
                    self._missed(stmt, "contains a nested loop; only "
                                       "innermost loops are vectorized")
            elif isinstance(stmt, ir.While):
                self._missed(stmt, "while loops are not vectorized "
                                   "(unknown trip count shape)")
            for sub in stmt.substatements():
                changed |= self._walk(sub)
            index += 1
        return changed

    def _is_innermost(self, loop: ir.ForRange) -> bool:
        return not any(isinstance(s, (ir.ForRange, ir.While))
                       for s in ir.walk_statements(loop.body))

    def _temp(self, prefix: str) -> str:
        # Leading underscore: MATLAB identifiers start with a letter, so
        # generated names can never shadow a source variable.
        self._counter += 1
        return f"_{prefix}_{self._counter}"

    # ------------------------------------------------------------------
    # Loop analysis
    # ------------------------------------------------------------------

    def _try_vectorize(self, loop: ir.ForRange) -> list[ir.Stmt] | None:
        if loop.step != 1:
            self._missed(loop, f"loop step is {loop.step}; only "
                               "unit-stride (step 1) loops are "
                               "vectorized", step=loop.step)
            return None
        unsupported = next(
            (s for s in ir.walk_statements(loop.body)
             if isinstance(s, (ir.If, ir.Break, ir.Continue, ir.Return,
                               ir.Call, ir.Emit, ir.CopyArray,
                               ir.IntrinsicStmt))), None)
        if unsupported is not None:
            self._missed(loop, "body contains a "
                               f"{type(unsupported).__name__} statement "
                               "the vectorizer does not support",
                         statement=type(unsupported).__name__)
            return None
        elem = self._loop_element_type(loop)
        if elem is None:
            self._missed(loop, "loop memory accesses mix element types "
                               "(or touch none); vectorization needs "
                               "exactly one element type")
            return None
        lanes = self._choose_width(loop, elem)
        if lanes is None:
            widths = self.processor.simd_lanes(elem.kind)
            if not widths:
                self._missed(loop, "target "
                                   f"{self.processor.name!r} has no "
                                   "SIMD instructions for "
                                   f"{elem.describe()} elements",
                             element=elem.describe())
            else:
                self._missed(loop, "trip count is smaller than the "
                                   "narrowest SIMD width "
                                   f"({min(widths)} lanes)",
                             narrowest=min(widths))
            return None

        plan = self._plan_body(loop, elem, lanes)
        if plan is None:
            # _plan_body emitted the specific missed remark.
            return None
        if self._used_outside(loop, loop.var):
            self._missed(loop, f"loop variable {loop.var!r} is live "
                               "after the loop; the vector main loop "
                               "would leave it with the wrong value",
                         variable=loop.var)
            return None
        for entry in plan:
            if entry[0] == "temp" and self._used_outside(loop, entry[1].name):
                self._missed(loop, f"temporary {entry[1].name!r} is "
                                   "live after the loop",
                             variable=entry[1].name)
                return None
        replacement = self._emit(loop, elem, lanes, plan)
        n_stores = sum(1 for e in plan if e[0] == "store")
        n_reduce = sum(1 for e in plan if e[0] == "reduce")
        self._passed(loop, f"vectorized with {lanes}-lane "
                           f"{elem.describe()} SIMD "
                           f"({n_stores} store(s), "
                           f"{n_reduce} reduction(s))",
                     lanes=lanes, stores=n_stores, reductions=n_reduce)
        return replacement

    def _choose_width(self, loop: ir.ForRange,
                      elem: ScalarType) -> int | None:
        """Pick the SIMD width for this loop from the target's options.

        With a known trip count, the widest datapath is not always the
        fastest: a 24-iteration loop runs better as three full 8-lane
        chunks than as one 16-lane chunk plus an 8-iteration scalar
        tail.  The proxy cost weights a scalar tail iteration as three
        vector chunks, which matches the modeled datapath.
        """
        widths = self.processor.simd_lanes(elem.kind)
        if not widths:
            return None
        if not (isinstance(loop.start, ir.Const) and
                isinstance(loop.stop, ir.Const)):
            return widths[0]
        trips = loop.stop.value - loop.start.value
        best_lanes = None
        best_cost = None
        for lanes in widths:
            if trips < lanes:
                continue
            cost = (trips // lanes) + 3 * (trips % lanes)
            if best_cost is None or cost < best_cost:
                best_cost, best_lanes = cost, lanes
        return best_lanes

    def _loop_element_type(self, loop: ir.ForRange) -> ScalarType | None:
        """The single element kind all memory traffic in the loop uses."""
        kinds: set[ScalarKind] = set()
        for stmt in ir.walk_statements(loop.body):
            for expr in ir.statement_exprs(stmt):
                for node in ir.walk_expr(expr):
                    if isinstance(node, ir.Load):
                        kinds.add(node.type.kind)
            if isinstance(stmt, ir.Store):
                value_t = stmt.value.type
                if isinstance(value_t, ScalarType):
                    kinds.add(value_t.kind)
        if len(kinds) != 1:
            return None
        return ScalarType(kinds.pop())

    def _plan_body(self, loop: ir.ForRange, elem: ScalarType,
                   lanes: int) -> list[tuple] | None:
        """Classify each body statement; None if anything doesn't fit.

        Plan entries:
            ("store", stmt, vec_value_expr)
            ("temp", stmt, vec_value_expr)
            ("reduce", stmt, acc_name, vmac_args | vec_term)
        """
        var = loop.var
        stored = stored_arrays(loop.body)
        # Arrays both loaded at loop-invariant indices and stored in the
        # same loop would make splatted loads stale; reject those.
        self._stored_in_loop = stored
        self._loop_writes = assigned_vars(loop.body)

        vector_temps: dict[str, VectorType] = {}
        plan: list[tuple] = []
        reduced: set[str] = set()
        for stmt in loop.body:
            if isinstance(stmt, ir.Store):
                stride = self._stride_of(stmt.index, var)
                if stride != 1:
                    self._missed(loop, "store into "
                                       f"{stmt.array!r} is not "
                                       "unit-stride in the loop variable "
                                       f"(stride {stride})",
                                 array=stmt.array, stride=stride)
                    return None
                value = self._vectorize_expr(stmt.value, var, elem, lanes,
                                             vector_temps)
                if value is None:
                    self._missed(loop, "value stored into "
                                       f"{stmt.array!r} has no vector "
                                       "form on this target",
                                 array=stmt.array)
                    return None
                plan.append(("store", stmt, value))
            elif isinstance(stmt, ir.AssignVar):
                reduction = self._match_reduction(stmt, var, elem, lanes,
                                                  vector_temps)
                if reduction is not None:
                    if stmt.name in reduced:
                        self._missed(loop, "reduction variable "
                                           f"{stmt.name!r} is updated "
                                           "more than once per iteration",
                                     variable=stmt.name)
                        return None
                    reduced.add(stmt.name)
                    plan.append(reduction)
                    continue
                value = self._vectorize_expr(stmt.value, var, elem, lanes,
                                             vector_temps)
                if value is None:
                    self._missed(loop, "assignment to "
                                       f"{stmt.name!r} has no vector "
                                       "form on this target",
                                 variable=stmt.name)
                    return None
                if not isinstance(value.type, VectorType):
                    self._missed(loop, "assignment to "
                                       f"{stmt.name!r} stays scalar; "
                                       "nothing to vectorize",
                                 variable=stmt.name)
                    return None
                vector_temps[stmt.name] = value.type
                plan.append(("temp", stmt, value))
            else:
                self._missed(loop, "body contains a "
                                   f"{type(stmt).__name__} statement the "
                                   "vectorizer does not support",
                             statement=type(stmt).__name__)
                return None
        # A reduction accumulator must not be read by other statements.
        for kind, stmt, *rest in plan:
            if kind == "reduce":
                continue
            names: set[str] = set()
            for expr in ir.statement_exprs(stmt):
                for node in ir.walk_expr(expr):
                    if isinstance(node, ir.VarRef):
                        names.add(node.name)
            if names & reduced:
                clash = sorted(names & reduced)[0]
                self._missed(loop, "reduction accumulator "
                                   f"{clash!r} is read by another "
                                   "statement in the loop body",
                             variable=clash)
                return None
        return plan

    # ------------------------------------------------------------------
    # Stride analysis
    # ------------------------------------------------------------------

    def _stride_of(self, index: ir.Expr, var: str) -> int | None:
        """d(index)/d(var) when index is affine in var; None otherwise."""
        if isinstance(index, ir.VarRef):
            return 1 if index.name == var else 0
        if isinstance(index, ir.Const):
            return 0
        if isinstance(index, ir.Cast):
            return self._stride_of(index.operand, var)
        if isinstance(index, ir.BinOp):
            left = self._stride_of(index.left, var)
            right = self._stride_of(index.right, var)
            if left is None or right is None:
                return None
            if index.op == "add":
                return left + right
            if index.op == "sub":
                return left - right
            if index.op == "mul":
                if left == 0 and isinstance(index.left, ir.Const):
                    return right * int(index.left.value)
                if right == 0 and isinstance(index.right, ir.Const):
                    return left * int(index.right.value)
                if left == 0 and right == 0:
                    return 0
                return None
            if left == 0 and right == 0:
                return 0
            return None
        if isinstance(index, ir.UnOp) and index.op == "neg":
            inner = self._stride_of(index.operand, var)
            return None if inner is None else -inner
        # Loads/calls: invariant only if they don't mention var at all.
        for node in ir.walk_expr(index):
            if isinstance(node, ir.VarRef) and node.name == var:
                return None
            if isinstance(node, (ir.Load, ir.IntrinsicCall)):
                return None
        return 0

    def _is_invariant(self, expr: ir.Expr, var: str) -> bool:
        for node in ir.walk_expr(expr):
            if isinstance(node, ir.VarRef) and (
                    node.name == var or node.name in self._loop_writes):
                return False
            if isinstance(node, ir.Load):
                if node.array in self._stored_in_loop:
                    return False
                if not self._is_invariant(node.index, var):
                    return False
            if isinstance(node, ir.IntrinsicCall):
                return False
        return True

    # ------------------------------------------------------------------
    # Expression vectorization
    # ------------------------------------------------------------------

    def _vectorize_expr(self, expr: ir.Expr, var: str, elem: ScalarType,
                        lanes: int,
                        vector_temps: dict[str, VectorType]) -> ir.Expr | None:
        vtype = VectorType(elem, lanes)

        if isinstance(expr, ir.Load):
            if expr.type != elem:
                return None
            stride = self._stride_of(expr.index, var)
            if stride == 1:
                instr = self.processor.find("vload", elem.kind, lanes)
                if instr is None:
                    return None
                return ir.VecLoad(vtype, array=expr.array,
                                  base=copy.deepcopy(expr.index),
                                  instruction=instr)
            if stride == -1:
                # Descending access x(n-k): a reversed vector load reads
                # lanes idx, idx-1, ..., idx-(L-1); its base (lowest
                # address) is idx - (L-1).
                instr = self.processor.find("vloadr", elem.kind, lanes)
                if instr is None:
                    return None
                base = ir.BinOp(I32, op="sub",
                                left=copy.deepcopy(expr.index),
                                right=ir.Const(I32, lanes - 1))
                return ir.VecLoad(vtype, array=expr.array, base=base,
                                  instruction=instr, reverse=True)
            if stride == 0 and self._is_invariant(expr, var):
                return self._splat(copy.deepcopy(expr), elem, lanes)
            return None

        if isinstance(expr, ir.Const):
            if expr.type != elem:
                return None
            return self._splat(copy.deepcopy(expr), elem, lanes)

        if isinstance(expr, ir.VarRef):
            if expr.name in vector_temps:
                return ir.VarRef(vector_temps[expr.name], expr.name)
            if expr.name == var or expr.name in self._loop_writes:
                return None
            if expr.type != elem:
                return None
            return self._splat(copy.deepcopy(expr), elem, lanes)

        if isinstance(expr, ir.BinOp):
            from repro.vectorize.select import SIMD_BINOPS
            operation = SIMD_BINOPS.get(expr.op)
            if operation is None:
                return None
            instr = self.processor.find(operation, elem.kind, lanes)
            if instr is None:
                return None
            left = self._vectorize_expr(expr.left, var, elem, lanes,
                                        vector_temps)
            if left is None:
                return None
            right = self._vectorize_expr(expr.right, var, elem, lanes,
                                         vector_temps)
            if right is None:
                return None
            return ir.IntrinsicCall(vtype, instruction=instr,
                                    args=[left, right])

        if isinstance(expr, ir.UnOp) and expr.op == "neg":
            instr = self.processor.find("vneg", elem.kind, lanes)
            if instr is None:
                return None
            operand = self._vectorize_expr(expr.operand, var, elem, lanes,
                                           vector_temps)
            if operand is None:
                return None
            return ir.IntrinsicCall(vtype, instruction=instr, args=[operand])

        if isinstance(expr, ir.MathCall) and expr.name == "abs" and \
                not elem.is_complex:
            instr = self.processor.find("vabs", elem.kind, lanes)
            if instr is None:
                return None
            operand = self._vectorize_expr(expr.args[0], var, elem, lanes,
                                           vector_temps)
            if operand is None:
                return None
            return ir.IntrinsicCall(vtype, instruction=instr, args=[operand])

        if isinstance(expr, ir.MathCall) and expr.name == "conj" and \
                elem.is_complex:
            instr = self.processor.find("vconj", elem.kind, lanes)
            if instr is None:
                return None
            operand = self._vectorize_expr(expr.args[0], var, elem, lanes,
                                           vector_temps)
            if operand is None:
                return None
            return ir.IntrinsicCall(vtype, instruction=instr, args=[operand])

        # Loop-invariant scalar subexpression of the right type: splat it.
        if isinstance(expr.type, ScalarType) and expr.type == elem and \
                self._is_invariant(expr, var):
            return self._splat(copy.deepcopy(expr), elem, lanes)
        return None

    def _splat(self, operand: ir.Expr, elem: ScalarType,
               lanes: int) -> ir.Expr | None:
        instr = self.processor.find("vsplat", elem.kind, lanes)
        if instr is None:
            return None
        return ir.IntrinsicCall(VectorType(elem, lanes), instruction=instr,
                                args=[operand])

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------

    def _match_reduction(self, stmt: ir.AssignVar, var: str,
                         elem: ScalarType, lanes: int,
                         vector_temps: dict) -> tuple | None:
        value = stmt.value
        if not isinstance(value, ir.BinOp) or value.op != "add":
            return None
        if isinstance(value.left, ir.VarRef) and value.left.name == stmt.name:
            term = value.right
        elif isinstance(value.right, ir.VarRef) and \
                value.right.name == stmt.name:
            term = value.left
        else:
            return None
        if not isinstance(stmt.value.type, ScalarType) or \
                stmt.value.type != elem:
            return None
        if self.processor.find("vredadd", elem.kind, lanes) is None:
            return None
        # Prefer a fused multiply-accumulate.
        if isinstance(term, ir.BinOp) and term.op == "mul":
            vmac = self.processor.find("vmac", elem.kind, lanes)
            if vmac is not None:
                left = self._vectorize_expr(term.left, var, elem, lanes,
                                            vector_temps)
                right = self._vectorize_expr(term.right, var, elem, lanes,
                                             vector_temps)
                if left is not None and right is not None:
                    return ("reduce", stmt, stmt.name, ("mac", left, right))
        vterm = self._vectorize_expr(term, var, elem, lanes, vector_temps)
        if vterm is None:
            return None
        return ("reduce", stmt, stmt.name, ("add", vterm))

    # ------------------------------------------------------------------
    # Code emission
    # ------------------------------------------------------------------

    def _emit(self, loop: ir.ForRange, elem: ScalarType, lanes: int,
              plan: list[tuple]) -> list[ir.Stmt]:
        func = self._func
        vtype = VectorType(elem, lanes)
        out: list[ir.Stmt] = []

        # Trip-count split: main = start + floor((stop-start)/VL)*VL.
        if isinstance(loop.start, ir.Const) and isinstance(loop.stop,
                                                           ir.Const):
            trips = loop.stop.value - loop.start.value
            main_stop: ir.Expr = ir.Const(
                I32, loop.start.value + (trips // lanes) * lanes)
        else:
            name = self._temp("vstop")
            func.declare(name, I32)
            span = ir.BinOp(I32, op="sub", left=copy.deepcopy(loop.stop),
                            right=copy.deepcopy(loop.start))
            chunks = ir.BinOp(I32, op="div", left=span,
                              right=ir.Const(I32, lanes))
            scaled = ir.BinOp(I32, op="mul", left=chunks,
                              right=ir.Const(I32, lanes))
            total = ir.BinOp(I32, op="add", left=copy.deepcopy(loop.start),
                             right=scaled)
            out.append(ir.AssignVar(name, total))
            main_stop = ir.VarRef(I32, name)

        # Reduction prologues.
        accumulators: dict[str, str] = {}
        for entry in plan:
            if entry[0] != "reduce":
                continue
            acc_name = entry[2]
            vacc = self._temp("vacc")
            func.declare(vacc, vtype)
            accumulators[acc_name] = vacc
            zero = ir.Const(elem, complex(0) if elem.is_complex else 0)
            splat = self._splat(zero, elem, lanes)
            out.append(ir.AssignVar(vacc, splat))

        # Main vector body.  Vector temporaries get fresh names so the
        # scalar tail loop keeps using the original scalar variables.
        tail_body = copy.deepcopy(loop.body)
        main_body: list[ir.Stmt] = []
        renames: dict[str, str] = {}
        for entry in plan:
            if entry[0] == "temp":
                renames[entry[1].name] = self._temp("v" + entry[1].name)

        def rename_refs(expr: ir.Expr) -> None:
            for node in ir.walk_expr(expr):
                if isinstance(node, ir.VarRef) and node.name in renames and \
                        isinstance(node.type, VectorType):
                    node.name = renames[node.name]

        vstore = self.processor.find("vstore", elem.kind, lanes)
        for entry in plan:
            kind, stmt = entry[0], entry[1]
            if kind == "store":
                rename_refs(entry[2])
                main_body.append(ir.VecStore(
                    array=stmt.array, base=stmt.index, value=entry[2],
                    instruction=vstore))
            elif kind == "temp":
                rename_refs(entry[2])
                new_name = renames[stmt.name]
                main_body.append(ir.AssignVar(new_name, entry[2]))
                func.declare(new_name, entry[2].type)
            else:
                acc_name, how = entry[2], entry[3]
                vacc = accumulators[acc_name]
                if how[0] == "mac":
                    rename_refs(how[1])
                    rename_refs(how[2])
                    instr = self.processor.find("vmac", elem.kind, lanes)
                    update: ir.Expr = ir.IntrinsicCall(
                        vtype, instruction=instr,
                        args=[ir.VarRef(vtype, vacc), how[1], how[2]])
                else:
                    rename_refs(how[1])
                    instr = self.processor.find("vadd", elem.kind, lanes)
                    update = ir.IntrinsicCall(
                        vtype, instruction=instr,
                        args=[ir.VarRef(vtype, vacc), how[1]])
                main_body.append(ir.AssignVar(vacc, update))
            # Vector statements inherit the source line of the scalar
            # statement they replace, so hotspot profiles attribute
            # their cycles to the original MATLAB line.
            main_body[-1].line = stmt.line

        out.append(ir.ForRange(var=loop.var, start=loop.start,
                               stop=main_stop, step=lanes, body=main_body))

        # Reduction epilogues: fold the vector accumulator into the
        # scalar before the tail loop continues accumulating.
        for acc_name, vacc in accumulators.items():
            red = self.processor.find("vredadd", elem.kind, lanes)
            fold = ir.IntrinsicCall(elem, instruction=red,
                                    args=[ir.VarRef(vtype, vacc)])
            out.append(ir.AssignVar(acc_name, ir.BinOp(
                elem, op="add",
                left=ir.VarRef(elem, acc_name), right=fold)))

        # Scalar tail.
        out.append(ir.ForRange(var=loop.var, start=copy.deepcopy(main_stop),
                               stop=loop.stop, step=1, body=tail_body))
        # Compiler-generated glue (trip split, prologues, epilogues, the
        # strip-mined loop headers) maps to the loop's own source line.
        for top in out:
            for sub in ir.walk_statements([top]):
                if sub.line == 0:
                    sub.line = loop.line
        return out
