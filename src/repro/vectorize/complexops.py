"""Complex-arithmetic custom-instruction selection.

Maps scalar complex operations onto the target's complex-arithmetic unit
when the processor description provides one: ``a*b`` becomes ``cmul``,
``x + a*b`` becomes the fused ``cmac``, ``conj(z)`` becomes ``cconj``,
and the power-spectrum idiom ``real(z)*real(z) + imag(z)*imag(z)``
becomes ``cmag2``.  On a plain scalar datapath a complex multiply costs
four multiplies and two adds; these instructions are where the paper's
speedup on complex DSP kernels comes from.
"""

from __future__ import annotations

from repro.asip.model import ProcessorDescription
from repro.ir import nodes as ir
from repro.ir.passes.rewrite import rewrite_stmt_exprs
from repro.ir.types import ScalarType
from repro.observe import remarks as obs_remarks
from repro.vectorize.select import COMPLEX_BINOPS, exprs_equal


class ComplexInstructionSelector:
    """Rewrites scalar complex arithmetic to custom-instruction calls."""

    name = "complex-select"

    def __init__(self, processor: ProcessorDescription):
        self.processor = processor

    def run(self, func: ir.IRFunction) -> bool:
        self._changed = False
        self._func = func
        self._line = 0
        self._walk(func.body)
        return self._changed

    def _walk(self, body: list[ir.Stmt]) -> None:
        # Statement-at-a-time so remarks carry the source line of the
        # statement whose expression selected the instruction.
        for stmt in body:
            self._line = stmt.line
            rewrite_stmt_exprs(stmt, self._rewrite)
            for sub in stmt.substatements():
                self._walk(sub)

    def _select(self, instr, what: str) -> None:
        self._changed = True
        obs_remarks.passed(self.name,
                           f"selected {instr.name!r} for {what}",
                           function=self._func.name, line=self._line,
                           instruction=instr.name)

    def _rewrite(self, expr: ir.Expr) -> ir.Expr:
        if not isinstance(expr.type, ScalarType) or not expr.type.is_complex:
            return self._rewrite_real(expr)
        kind = expr.type.kind

        if isinstance(expr, ir.BinOp):
            # Fused multiply-accumulate: x + a*b (either side).
            if expr.op == "add":
                cmac = self.processor.find("cmac", kind, 1)
                if cmac is not None:
                    for addend, product in ((expr.left, expr.right),
                                            (expr.right, expr.left)):
                        if self._is_cmul(product):
                            a, b = self._cmul_operands(product)
                            self._select(cmac,
                                         "fused complex multiply-"
                                         "accumulate x + a*b")
                            return ir.IntrinsicCall(
                                expr.type, instruction=cmac,
                                args=[addend, a, b])
            operation = COMPLEX_BINOPS.get(expr.op)
            if operation is not None:
                instr = self.processor.find(operation, kind, 1)
                if instr is not None:
                    self._select(instr, f"complex {expr.op!r}")
                    return ir.IntrinsicCall(expr.type, instruction=instr,
                                            args=[expr.left, expr.right])
            return expr

        if isinstance(expr, ir.MathCall) and expr.name == "conj":
            instr = self.processor.find("cconj", kind, 1)
            if instr is not None:
                self._select(instr, "complex conjugate")
                return ir.IntrinsicCall(expr.type, instruction=instr,
                                        args=list(expr.args))
        return expr

    def _is_cmul(self, expr: ir.Expr) -> bool:
        if isinstance(expr, ir.IntrinsicCall) and \
                expr.instruction.operation == "cmul":
            return True
        return isinstance(expr, ir.BinOp) and expr.op == "mul" and \
            isinstance(expr.type, ScalarType) and expr.type.is_complex

    def _cmul_operands(self, expr: ir.Expr) -> tuple[ir.Expr, ir.Expr]:
        if isinstance(expr, ir.IntrinsicCall):
            return expr.args[0], expr.args[1]
        return expr.left, expr.right

    def _rewrite_real(self, expr: ir.Expr) -> ir.Expr:
        """Real-typed patterns over complex operands (|z|^2)."""
        if not isinstance(expr, ir.BinOp) or expr.op != "add":
            return expr
        if not isinstance(expr.type, ScalarType) or expr.type.is_complex:
            return expr
        z = self._mag2_component(expr.left, "real")
        z2 = self._mag2_component(expr.right, "imag")
        if z is None or z2 is None or not exprs_equal(z, z2):
            # Also accept the commuted form imag^2 + real^2.
            z = self._mag2_component(expr.left, "imag")
            z2 = self._mag2_component(expr.right, "real")
            if z is None or z2 is None or not exprs_equal(z, z2):
                return expr
        kind = z.type.kind
        instr = self.processor.find("cmag2", kind, 1)
        if instr is None:
            return expr
        self._select(instr, "squared magnitude real(z)^2 + imag(z)^2")
        return ir.IntrinsicCall(expr.type, instruction=instr, args=[z])

    def _mag2_component(self, expr: ir.Expr, part: str) -> ir.Expr | None:
        """Match ``part(z) * part(z)``; returns z."""
        if not isinstance(expr, ir.BinOp) or expr.op != "mul":
            return None
        left, right = expr.left, expr.right
        if not (isinstance(left, ir.MathCall) and left.name == part and
                isinstance(right, ir.MathCall) and right.name == part):
            return None
        if not exprs_equal(left.args[0], right.args[0]):
            return None
        z = left.args[0]
        if not (isinstance(z.type, ScalarType) and z.type.is_complex):
            return None
        return z
