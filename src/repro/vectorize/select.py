"""Shared instruction-selection queries against a processor description."""

from __future__ import annotations

from repro.asip.model import Instruction, ProcessorDescription
from repro.ir import nodes as ir
from repro.ir.types import ScalarKind, ScalarType

#: BinOp opcodes with a direct SIMD-instruction counterpart.
SIMD_BINOPS = {
    "add": "vadd",
    "sub": "vsub",
    "mul": "vmul",
    "div": "vdiv",
    "min": "vmin",
    "max": "vmax",
}

#: Scalar complex BinOp opcodes with a complex-unit counterpart.
COMPLEX_BINOPS = {
    "add": "cadd",
    "sub": "csub",
    "mul": "cmul",
}


def find(processor: ProcessorDescription, operation: str, elem: ScalarKind,
         lanes: int) -> Instruction | None:
    return processor.find(operation, elem, lanes)


def exprs_equal(a: ir.Expr, b: ir.Expr) -> bool:
    """Structural equality of pure expressions (used by idiom matchers)."""
    if type(a) is not type(b) or a.type != b.type:
        return False
    if isinstance(a, ir.Const):
        return a.value == b.value
    if isinstance(a, ir.VarRef):
        return a.name == b.name
    if isinstance(a, ir.BinOp):
        return a.op == b.op and exprs_equal(a.left, b.left) and \
            exprs_equal(a.right, b.right)
    if isinstance(a, ir.UnOp):
        return a.op == b.op and exprs_equal(a.operand, b.operand)
    if isinstance(a, ir.MathCall):
        return a.name == b.name and len(a.args) == len(b.args) and \
            all(exprs_equal(x, y) for x, y in zip(a.args, b.args))
    if isinstance(a, ir.Cast):
        return exprs_equal(a.operand, b.operand)
    if isinstance(a, ir.Load):
        return a.array == b.array and exprs_equal(a.index, b.index)
    if isinstance(a, ir.MakeComplex):
        return exprs_equal(a.real, b.real) and exprs_equal(a.imag, b.imag)
    return False


def scalar_kind(expr: ir.Expr) -> ScalarKind | None:
    if isinstance(expr.type, ScalarType):
        return expr.type.kind
    return None
