"""Scalar idiom recognition against custom instructions.

Two idioms:

* multiply-accumulate — ``x + a*b`` on a real scalar maps to the DSP's
  single-cycle ``mac`` instruction, the classic ASIP customization even
  scalar-only targets carry;
* clip — ``min(max(x, lo), hi)`` (either nesting order) maps to the
  saturation/clip unit common on audio/telecom ASIPs.
"""

from __future__ import annotations

from repro.asip.model import ProcessorDescription
from repro.ir import nodes as ir
from repro.ir.passes.rewrite import rewrite_stmt_exprs
from repro.ir.types import ScalarType
from repro.observe import remarks as obs_remarks


class _LineAwareSelector:
    """Shared statement-at-a-time driver that remembers the source line
    of the statement being rewritten, so selection remarks point at the
    user's code rather than at the function."""

    name = "selector"

    def run(self, func: ir.IRFunction) -> bool:
        self._changed = False
        self._func = func
        self._line = 0
        self._walk(func.body)
        return self._changed

    def _walk(self, body: list[ir.Stmt]) -> None:
        for stmt in body:
            self._line = stmt.line
            rewrite_stmt_exprs(stmt, self._rewrite)
            for sub in stmt.substatements():
                self._walk(sub)

    def _select(self, instr, what: str) -> None:
        self._changed = True
        obs_remarks.passed(self.name,
                           f"selected {instr.name!r} for {what}",
                           function=self._func.name, line=self._line,
                           instruction=instr.name)


class ScalarMacSelector(_LineAwareSelector):
    """Rewrites real-scalar ``x + a*b`` into ``mac`` intrinsic calls."""

    name = "scalar-mac"

    def __init__(self, processor: ProcessorDescription):
        self.processor = processor

    def _rewrite(self, expr: ir.Expr) -> ir.Expr:
        if not isinstance(expr, ir.BinOp) or expr.op != "add":
            return expr
        if not isinstance(expr.type, ScalarType) or expr.type.is_complex \
                or not expr.type.is_float:
            return expr
        instr = self.processor.find("mac", expr.type.kind, 1)
        if instr is None:
            return expr
        for addend, product in ((expr.left, expr.right),
                                (expr.right, expr.left)):
            if isinstance(product, ir.BinOp) and product.op == "mul" and \
                    product.type == expr.type:
                self._select(instr, "scalar multiply-accumulate x + a*b")
                return ir.IntrinsicCall(
                    expr.type, instruction=instr,
                    args=[addend, product.left, product.right])
        return expr


class ClipSelector(_LineAwareSelector):
    """Rewrites ``min(max(x, lo), hi)`` into ``clip`` intrinsic calls.

    Only the min-outer nesting is matched: ``max(min(x, hi), lo)`` is
    *not* equivalent when lo > hi, so mapping it onto the same
    instruction would change semantics.  Operand order inside the inner
    ``max`` is irrelevant (max commutes), so either operand may play
    the role of x.
    """

    name = "clip-idiom"

    def __init__(self, processor: ProcessorDescription):
        self.processor = processor

    def _rewrite(self, expr: ir.Expr) -> ir.Expr:
        if not isinstance(expr, ir.BinOp) or expr.op != "min":
            return expr
        if not isinstance(expr.type, ScalarType) or expr.type.is_complex \
                or not expr.type.is_float:
            return expr
        instr = self.processor.find("clip", expr.type.kind, 1)
        if instr is None:
            return expr
        for inner, hi in ((expr.left, expr.right),
                          (expr.right, expr.left)):
            if isinstance(inner, ir.BinOp) and inner.op == "max" and \
                    inner.type == expr.type:
                x, lo = inner.left, inner.right
                self._select(instr, "clip idiom min(max(x, lo), hi)")
                return ir.IntrinsicCall(expr.type, instruction=instr,
                                        args=[x, lo, hi])
        return expr
