"""Custom-instruction exploitation: SIMD, complex, MAC."""
