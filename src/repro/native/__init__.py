"""Native execution tier: run the emitted C in-process via ctypes.

The generated translation unit is compiled once into a
position-independent shared object (behind a content-addressed artifact
cache, so identical (source, compiler, flags) hit disk instead of gcc)
and the entry point is called in-process through a stable C ABI wrapper
with zero-copy numpy views.  Surfaced as
``CompilationResult.simulate(backend="native")`` next to the
tree-walking and compiled-closure simulator backends, and as the fuzz
oracle's default gcc harness.

Unlike the two simulator backends, the native tier performs no cycle
accounting — it exists to run the kernel at host-hardware speed; its
:class:`~repro.sim.machine.ExecutionResult` carries an empty
:class:`~repro.sim.cost.CycleReport`.
"""

from repro.native.abi import WRAPPER_SYMBOL, CallPlan, build_plan, wrapper_source
from repro.native.builder import (NativeCache, configure, default_cache,
                                  native_cache_key, stats)
from repro.native.program import NativeProgram

__all__ = [
    "WRAPPER_SYMBOL",
    "CallPlan",
    "NativeCache",
    "NativeProgram",
    "build_plan",
    "configure",
    "default_cache",
    "native_cache_key",
    "stats",
    "wrapper_source",
]
