"""Shared-object builds behind a content-addressed artifact cache.

Mirrors the compilation cache's two-layer shape (:mod:`repro.cache`)
for native artifacts:

* an in-process table of loaded libraries (a ``.so`` stays mapped for
  the life of the process — ``dlclose`` on a live ctypes handle is
  never forced, so "eviction" from the memory layer only drops this
  cache's reference);
* an on-disk store of built ``.so`` files, shared between processes.

Disk layout: ``<dir>/<key[:2]>/<key>.so`` where ``key`` is the sha256
of exactly the build inputs — C source text, compiler name, compile
flags, link flags, and an ABI version tag.  Writes publish via
``mkstemp`` + atomic ``os.replace`` (same protocol as the compilation
cache), so concurrent builders of the same key race harmlessly and
readers never observe a partial file.  Eviction is size-bounded: when
the store exceeds ``disk_limit`` entries after a write, the
oldest-mtime entries beyond the limit are unlinked (already-loaded
libraries keep working; on POSIX the mapping survives the unlink).

The cache directory resolves from ``REPRO_NATIVE_CACHE_DIR``, then
``REPRO_CACHE_DIR``/native (so service/benchmark runs that share a
compilation cache share native artifacts too), else a process-lifetime
temporary directory.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path

from repro.backend.harness import LINK_FLAGS, STRICT_FLAGS
from repro.errors import BackendError
from repro.observe import trace as obs_trace

#: Compile flags for the shared object: the same strict-ANSI contract
#: the exec harness enforces, but optimized for execution speed and
#: position-independent.  ``LINK_FLAGS`` (``-lm``) are passed after the
#: source file — toolchains that process libraries positionally resolve
#: symbols left to right.
SO_COMPILE_FLAGS = [*STRICT_FLAGS, "-O2", "-fPIC", "-shared"]

#: Bumped whenever the wrapper ABI or marshalling layout changes, so
#: stale on-disk artifacts from older versions can never be dlopened
#: against a newer caller.
_ABI_TAG = "repro-native-abi-v1"


def native_cache_key(source: str, cc: str,
                     compile_flags: "list[str] | None" = None,
                     link_flags: "list[str] | None" = None) -> str:
    """Content hash identifying one shared-object build exactly."""
    hasher = hashlib.sha256()
    for part in (_ABI_TAG, source, cc,
                 "\x1f".join(SO_COMPILE_FLAGS if compile_flags is None
                             else compile_flags),
                 "\x1f".join(LINK_FLAGS if link_flags is None
                             else link_flags)):
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


class NativeCache:
    """Loaded-library table over an on-disk ``.so`` store."""

    def __init__(self, cache_dir: "str | Path | None" = None,
                 disk_limit: int = 512):
        self._lock = threading.Lock()
        self._loaded: dict[str, ctypes.CDLL] = {}
        self._explicit_dir = Path(cache_dir) if cache_dir else None
        self._tmp_dir: "tempfile.TemporaryDirectory | None" = None
        self.disk_limit = disk_limit
        self.builds = 0
        self.cache_hits = 0
        self.disk_hits = 0
        self.build_errors = 0
        self.evictions = 0

    # -- directory resolution -----------------------------------------

    def cache_dir(self) -> Path:
        if self._explicit_dir is not None:
            return self._explicit_dir
        env = os.environ.get("REPRO_NATIVE_CACHE_DIR")
        if env:
            return Path(env)
        shared = os.environ.get("REPRO_CACHE_DIR")
        if shared:
            return Path(shared) / "native"
        if self._tmp_dir is None:
            self._tmp_dir = tempfile.TemporaryDirectory(
                prefix="repro-native-")
        return Path(self._tmp_dir.name)

    def _so_path(self, key: str) -> Path:
        return self.cache_dir() / key[:2] / f"{key}.so"

    # -- public --------------------------------------------------------

    def load(self, source: str, cc: str = "gcc") -> ctypes.CDLL:
        """The loaded library for ``source``, building it on first use.

        A warm call performs zero compiler invocations: either the
        library is already loaded in-process, or the published ``.so``
        is dlopened straight from disk.
        """
        key = native_cache_key(source, cc)
        session = obs_trace.current()
        with self._lock:
            lib = self._loaded.get(key)
        if lib is not None:
            with self._lock:
                self.cache_hits += 1
            session.counter("native.cache_hit")
            return lib

        path = self._so_path(key)
        if not path.is_file():
            self._build(source, cc, path)
        else:
            with self._lock:
                self.disk_hits += 1
            session.counter("native.cache_hit")
            session.counter("native.disk_hit")
        with session.span("dlopen", "native", so=path.name) as span:
            try:
                lib = ctypes.CDLL(str(path))
            except OSError as exc:
                # A corrupt/truncated artifact behaves as a miss: drop
                # it and rebuild once before giving up.
                try:
                    path.unlink()
                except OSError:
                    pass
                self._build(source, cc, path)
                try:
                    lib = ctypes.CDLL(str(path))
                except OSError:
                    raise BackendError(
                        f"cannot dlopen native artifact {path}: "
                        f"{exc}") from exc
        session.observe("native.dlopen_s", span.duration)
        with self._lock:
            self._loaded[key] = lib
        return lib

    def warm(self, source: str, cc: str = "gcc") -> bool:
        """Ensure the ``.so`` for ``source`` exists on disk without
        loading it (service pre-warm path).  Returns True when a build
        actually ran."""
        key = native_cache_key(source, cc)
        path = self._so_path(key)
        if path.is_file():
            with self._lock:
                self.disk_hits += 1
            obs_trace.current().counter("native.cache_hit")
            return False
        self._build(source, cc, path)
        return True

    # -- build ---------------------------------------------------------

    def _build(self, source: str, cc: str, path: Path) -> None:
        session = obs_trace.current()
        with session.span("native-build", "native", cc=cc) as span:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tempfile.TemporaryDirectory(
                    prefix="repro-native-build-") as tmp:
                c_path = Path(tmp) / "generated.c"
                c_path.write_text(source)
                fd, tmp_so = tempfile.mkstemp(
                    prefix=f".{path.stem[:16]}.tmp.", suffix=".so",
                    dir=path.parent)
                os.close(fd)
                try:
                    proc = subprocess.run(
                        [cc, *SO_COMPILE_FLAGS, str(c_path),
                         "-o", tmp_so, *LINK_FLAGS],
                        capture_output=True, text=True)
                    if proc.returncode != 0:
                        with self._lock:
                            self.build_errors += 1
                        session.counter("native.build_error")
                        raise BackendError(
                            "native shared-object build failed:\n"
                            f"{proc.stderr}")
                    os.replace(tmp_so, path)
                except BaseException:
                    try:
                        os.unlink(tmp_so)
                    except OSError:
                        pass
                    raise
            with self._lock:
                self.builds += 1
            session.counter("native.build")
            span.set(so=path.name)
        session.observe("native.build_s", span.duration)
        session.event("native.build", so=path.name, cc=cc,
                      wall_s=round(span.duration, 6), span_id=span.id)
        self._evict()

    def _evict(self) -> None:
        """Unlink oldest artifacts beyond ``disk_limit`` (best-effort)."""
        try:
            entries = sorted(self.cache_dir().glob("*/*.so"),
                             key=lambda p: p.stat().st_mtime)
        except OSError:
            return
        for stale in entries[:max(0, len(entries) - self.disk_limit)]:
            try:
                stale.unlink()
                with self._lock:
                    self.evictions += 1
                obs_trace.current().counter("native.evict")
            except OSError:
                pass

    # -- maintenance ---------------------------------------------------

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"builds": self.builds,
                    "cache_hits": self.cache_hits,
                    "disk_hits": self.disk_hits,
                    "build_errors": self.build_errors,
                    "evictions": self.evictions,
                    "loaded": len(self._loaded)}


_default_cache = NativeCache()


def default_cache() -> NativeCache:
    """The process-wide native artifact cache."""
    return _default_cache


def configure(cache_dir: "str | Path | None" = None,
              disk_limit: int = 512) -> NativeCache:
    """Replace the process-wide native cache (tests, service workers)."""
    global _default_cache
    _default_cache = NativeCache(cache_dir=cache_dir,
                                 disk_limit=disk_limit)
    return _default_cache


def stats() -> dict[str, int]:
    return _default_cache.stats()
