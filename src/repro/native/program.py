"""In-process execution of one compiled module through its ``.so``.

A :class:`NativeProgram` owns the loaded shared object plus the
marshalling plan for the entry signature.  ``run`` marshals arguments
into flat column-major element buffers (zero-copy views whenever the
caller's numpy array already has the right dtype — the common case for
benchmark/fuzz inputs), dispatches through the fixed-ABI wrapper, and
returns output buffers as reshaped numpy *views* (no copy) in MATLAB
shape.

No cycle accounting happens here: the returned
:class:`~repro.sim.machine.ExecutionResult` carries an empty
:class:`~repro.sim.cost.CycleReport`.  ``Emit``/``printf`` statements
in the generated C write to the real process stdout (they are not
captured the way the simulators capture them).
"""

from __future__ import annotations

import ctypes
import shutil
import time

import numpy as np

from repro.errors import BackendError, SimulationError
from repro.ir.types import ScalarKind, ScalarType
from repro.native.abi import (WRAPPER_SYMBOL, Slot, build_plan,
                              native_source)
from repro.native.builder import default_cache
from repro.observe import trace as obs_trace
from repro.sim.cost import CycleReport
from repro.sim.machine import ExecutionResult, coerce_scalar


def _marshal_input(slot: Slot, value: object) -> np.ndarray:
    """One C-layout element buffer for ``value`` (a view when the
    caller's array already matches dtype and layout)."""
    if slot.is_array:
        buf = np.ravel(np.asarray(value), order="F")
        if buf.size != slot.numel:
            raise SimulationError(
                f"argument {slot.name!r}: expected {slot.numel} "
                f"elements, got {buf.size}")
        if buf.dtype != slot.dtype:
            buf = buf.astype(slot.dtype)
        return buf
    scalar = coerce_scalar(value, ScalarType(slot.kind))
    if slot.kind is ScalarKind.BOOL:
        scalar = int(scalar)
    return np.full(1, scalar, dtype=slot.dtype)


def _unmarshal_output(slot: Slot, buf: np.ndarray) -> object:
    """Simulator-identical output value from one filled buffer."""
    if slot.is_array:
        shaped = buf.reshape((slot.rows, slot.cols), order="F")
        if slot.kind is ScalarKind.BOOL:
            return shaped.astype(np.bool_)
        return shaped
    value = buf[0]
    if slot.kind.is_complex:
        return complex(value)
    if slot.kind is ScalarKind.BOOL:
        return bool(value)
    if slot.kind.is_integer:
        return int(value)
    return float(value)


class NativeProgram:
    """Compile-once / call-hot executor for one module's entry point."""

    def __init__(self, module, processor, cc: str = "gcc", cache=None):
        if shutil.which(cc) is None:
            raise BackendError(
                f"native backend requires a host C compiler "
                f"({cc!r} is not on PATH)")
        self.plan = build_plan(module)
        self.cc = cc
        self.source = native_source(module, processor)
        cache = cache if cache is not None else default_cache()
        lib = cache.load(self.source, cc=cc)
        self._fn = getattr(lib, WRAPPER_SYMBOL)
        self._fn.argtypes = [ctypes.POINTER(ctypes.c_void_p),
                             ctypes.POINTER(ctypes.c_void_p)]
        self._fn.restype = None
        #: Wall-clock seconds of the most recent dispatch (marshalling
        #: + the in-process call), for benchmark reporting.
        self.last_call_s = 0.0

    def run(self, args: list[object]) -> ExecutionResult:
        """Execute the entry point on ``args`` in-process."""
        plan = self.plan
        if len(args) != len(plan.params):
            raise SimulationError(
                f"{plan.entry}: expected {len(plan.params)} arguments, "
                f"got {len(args)}")
        t0 = time.perf_counter()
        in_bufs = [_marshal_input(slot, value)
                   for slot, value in zip(plan.params, args)]
        out_bufs = [np.zeros(slot.numel if slot.is_array else 1,
                             dtype=slot.dtype)
                    for slot in plan.outputs]
        in_ptrs = (ctypes.c_void_p * max(1, len(in_bufs)))(
            *(buf.ctypes.data for buf in in_bufs))
        out_ptrs = (ctypes.c_void_p * max(1, len(out_bufs)))(
            *(buf.ctypes.data for buf in out_bufs))
        self._fn(in_ptrs, out_ptrs)
        outputs = [_unmarshal_output(slot, buf)
                   for slot, buf in zip(plan.outputs, out_bufs)]
        self.last_call_s = time.perf_counter() - t0
        session = obs_trace.current()
        session.counter("native.calls")
        return ExecutionResult(outputs=outputs, report=CycleReport())
