"""Stable C ABI wrapper for in-process dispatch of the emitted entry.

The emitted entry point's signature varies per program (scalars by
value, complex scalars as struct-by-value, arrays as element pointers).
Calling it directly through ctypes would require rebuilding a ctypes
signature — including struct-by-value classes whose passing convention
is ABI-sensitive — for every program.  Instead the native tier appends
one wrapper with a fixed, pointer-only signature::

    void repro_native_call(const void * const *in, void * const *out);

* ``in[i]`` points at argument ``i``'s storage: the flat column-major
  element buffer for arrays (``const T *``, exactly the layout the
  emitted code indexes), or a single element for scalars (dereferenced
  by the wrapper; complex scalars are ``asip_c64``/``asip_c128``
  structs, which are layout-identical to numpy's complex64/complex128).
* ``out[j]`` points at output ``j``'s storage: a caller-allocated flat
  column-major buffer for arrays, or a single element written through
  the entry's scalar out-parameter.

Every multi-return output is an explicit out-pointer, so the wrapper
ABI never depends on struct-return conventions.  The only ctypes
signature ever needed is ``void (void**, void**)``.

Element storage matches :mod:`repro.backend.c_types`: the C element
type of a ``BOOL`` value is ``int``, so bool scalars/buffers marshal
through ``numpy.intc`` (1-byte ``numpy.bool_`` buffers would corrupt
adjacent elements) and are converted back to ``bool`` on the way out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.c_types import c_type_name
from repro.ir import nodes as ir
from repro.ir.types import ArrayType, ScalarKind, ScalarType

#: Exported symbol of the fixed-signature dispatch wrapper.
WRAPPER_SYMBOL = "repro_native_call"

#: numpy dtype backing each scalar kind's *C* element storage.  BOOL is
#: stored as C ``int`` by the emitter (see ``c_types``), not as a
#: 1-byte numpy bool.
_BUFFER_DTYPES = {
    ScalarKind.BOOL: np.intc,
    ScalarKind.I8: np.int8,
    ScalarKind.I16: np.int16,
    ScalarKind.I32: np.intc,
    ScalarKind.F32: np.float32,
    ScalarKind.F64: np.float64,
    ScalarKind.C64: np.complex64,
    ScalarKind.C128: np.complex128,
}


def buffer_dtype(kind: ScalarKind):
    """The numpy dtype whose memory layout matches the C element type."""
    return np.dtype(_BUFFER_DTYPES[kind])


@dataclass(frozen=True)
class Slot:
    """Marshalling recipe for one wrapper argument slot."""

    name: str
    kind: ScalarKind
    is_array: bool
    rows: int = 1
    cols: int = 1

    @property
    def numel(self) -> int:
        return self.rows * self.cols

    @property
    def dtype(self):
        return buffer_dtype(self.kind)


@dataclass(frozen=True)
class CallPlan:
    """Input/output slot layout of one entry point's wrapper call."""

    entry: str
    params: tuple[Slot, ...]
    outputs: tuple[Slot, ...]


def _slot(param: ir.Param) -> Slot:
    if isinstance(param.type, ArrayType):
        return Slot(name=param.name, kind=param.type.elem.kind,
                    is_array=True, rows=param.type.rows,
                    cols=param.type.cols)
    assert isinstance(param.type, ScalarType)
    return Slot(name=param.name, kind=param.type.kind, is_array=False)


def build_plan(module: ir.IRModule) -> CallPlan:
    """Derive the marshalling plan from the module's entry signature."""
    entry = module.entry_function
    return CallPlan(entry=entry.name,
                    params=tuple(_slot(p) for p in entry.params),
                    outputs=tuple(_slot(o) for o in entry.outputs))


def wrapper_source(module: ir.IRModule) -> str:
    """The C text of the fixed-ABI dispatch wrapper (appended after the
    translation unit; the entry's own prototype is already in scope)."""
    entry = module.entry_function
    args: list[str] = []
    for index, param in enumerate(entry.params):
        c_elem = c_type_name(param.type)
        if isinstance(param.type, ArrayType):
            args.append(f"(const {c_elem} *)in[{index}]")
        else:
            args.append(f"*(const {c_elem} *)in[{index}]")
    for index, out in enumerate(entry.outputs):
        c_elem = c_type_name(out.type)
        args.append(f"({c_elem} *)out[{index}]")
    call = f"{entry.name}({', '.join(args)});" if args \
        else f"{entry.name}();"
    return "\n".join([
        f"/* ---- stable native-dispatch ABI (entry: {entry.name}) "
        "---- */",
        "",
        f"void {WRAPPER_SYMBOL}(const void * const *in, "
        "void * const *out)",
        "{",
        "    (void)in; (void)out;",
        f"    {call}",
        "}",
    ]) + "\n"


def native_source(module: ir.IRModule, processor) -> str:
    """The full translation unit the shared object is built from."""
    from repro.backend.emitter import emit_c

    return emit_c(module, processor, with_main=True,
                  main_body=wrapper_source(module))
