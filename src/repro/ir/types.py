"""IR-level types: scalars, SIMD vectors, and statically-shaped arrays.

The IR is fully concrete: every array has static (rows, cols) and MATLAB
column-major element order, so linear indexing and reshape behave exactly
like the source language.  Complex numbers are first-class scalar kinds
(lowered by the C backend to a two-field struct or to complex-arithmetic
intrinsics when the target ASIP has them).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LoweringError
from repro.semantics.types import DType, MType


class ScalarKind(enum.Enum):
    """Primitive machine-level element kinds."""

    BOOL = "bool"
    I8 = "i8"
    I16 = "i16"
    I32 = "i32"
    F32 = "f32"
    F64 = "f64"
    C64 = "c64"    # complex of two f32
    C128 = "c128"  # complex of two f64

    @property
    def is_complex(self) -> bool:
        return self in (ScalarKind.C64, ScalarKind.C128)

    @property
    def is_float(self) -> bool:
        return self in (ScalarKind.F32, ScalarKind.F64)

    @property
    def is_integer(self) -> bool:
        return self in (ScalarKind.I8, ScalarKind.I16, ScalarKind.I32, ScalarKind.BOOL)

    @property
    def real_kind(self) -> "ScalarKind":
        """The component kind of a complex kind (identity otherwise)."""
        if self is ScalarKind.C64:
            return ScalarKind.F32
        if self is ScalarKind.C128:
            return ScalarKind.F64
        return self

    @property
    def complex_kind(self) -> "ScalarKind":
        if self in (ScalarKind.F32, ScalarKind.C64):
            return ScalarKind.C64
        return ScalarKind.C128


@dataclass(frozen=True)
class ScalarType:
    """A scalar IR value type."""

    kind: ScalarKind

    @property
    def is_complex(self) -> bool:
        return self.kind.is_complex

    @property
    def is_float(self) -> bool:
        return self.kind.is_float

    @property
    def is_integer(self) -> bool:
        return self.kind.is_integer

    def describe(self) -> str:
        return self.kind.value


@dataclass(frozen=True)
class VectorType:
    """A SIMD value: ``lanes`` elements of a scalar kind."""

    elem: ScalarType
    lanes: int

    @property
    def is_complex(self) -> bool:
        return self.elem.is_complex

    def describe(self) -> str:
        return f"<{self.lanes} x {self.elem.describe()}>"


@dataclass(frozen=True)
class ArrayType:
    """A statically shaped 2-D array, column-major like MATLAB."""

    elem: ScalarType
    rows: int
    cols: int

    @property
    def numel(self) -> int:
        return self.rows * self.cols

    @property
    def is_complex(self) -> bool:
        return self.elem.is_complex

    def describe(self) -> str:
        return f"{self.elem.describe()}[{self.rows}x{self.cols}]"


IRType = ScalarType | VectorType | ArrayType

#: Shared scalar instances.
BOOL = ScalarType(ScalarKind.BOOL)
I32 = ScalarType(ScalarKind.I32)
F32 = ScalarType(ScalarKind.F32)
F64 = ScalarType(ScalarKind.F64)
C64 = ScalarType(ScalarKind.C64)
C128 = ScalarType(ScalarKind.C128)

_DTYPE_TO_KIND = {
    DType.LOGICAL: ScalarKind.BOOL,
    DType.CHAR: ScalarKind.I8,
    DType.INT8: ScalarKind.I8,
    DType.INT16: ScalarKind.I16,
    DType.INT32: ScalarKind.I32,
    DType.SINGLE: ScalarKind.F32,
    DType.DOUBLE: ScalarKind.F64,
}


def scalar_from_mtype(mtype: MType) -> ScalarType:
    """Element IR type of a MATLAB type."""
    kind = _DTYPE_TO_KIND[mtype.dtype]
    if mtype.is_complex:
        if kind is ScalarKind.F32:
            kind = ScalarKind.C64
        elif kind is ScalarKind.F64:
            kind = ScalarKind.C128
        else:
            raise LoweringError(
                f"complex {mtype.dtype.short_name} has no IR representation")
    return ScalarType(kind)


def from_mtype(mtype: MType, what: str = "value") -> IRType:
    """Full IR type of a MATLAB type; arrays must be concretely shaped."""
    elem = scalar_from_mtype(mtype)
    if mtype.is_scalar:
        return elem
    shape = mtype.shape
    if not shape.is_concrete:
        raise LoweringError(
            f"cannot lower {what}: shape {shape.describe()} is not fully "
            "known at compile time (allocation sizes must derive from "
            "entry-point argument shapes or literals)")
    return ArrayType(elem, shape.rows, shape.cols)
