"""Mid-level IR: nodes, types, lowering, verification."""
