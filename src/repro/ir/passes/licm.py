"""Loop-invariant code motion (conservative).

Hoists scalar assignments out of ``ForRange`` loops when the right-hand
side is pure, reads no arrays, depends only on variables the loop does
not modify, and the loop provably runs at least once (constant bounds) —
so a variable read after the loop still holds the same value.
"""

from __future__ import annotations

from repro.ir import nodes as ir
from repro.ir.passes.rewrite import assigned_vars
from repro.observe import remarks as obs_remarks


class LoopInvariantCodeMotion:
    name = "licm"

    def run(self, func: ir.IRFunction) -> bool:
        self._func = func
        return self._walk(func.body)

    def _walk(self, body: list[ir.Stmt]) -> bool:
        changed = False
        index = 0
        while index < len(body):
            stmt = body[index]
            for sub in stmt.substatements():
                changed |= self._walk(sub)
            if isinstance(stmt, ir.ForRange):
                hoisted = self._hoist_from(stmt)
                if hoisted:
                    body[index:index] = hoisted
                    index += len(hoisted)
                    changed = True
            index += 1
        return changed

    def _hoist_from(self, loop: ir.ForRange) -> list[ir.Stmt]:
        if not self._runs_at_least_once(loop):
            return []
        loop_writes = assigned_vars(loop.body) | {loop.var}
        hoisted: list[ir.Stmt] = []
        # Only a prefix of the body may be hoisted: later statements may
        # depend on values the loop computes.
        while loop.body:
            stmt = loop.body[0]
            if not isinstance(stmt, ir.AssignVar):
                break
            # The full loop-write set includes the statement's own
            # target: an accumulator whose RHS reads itself
            # (acc = acc + inv) is NOT invariant even though every
            # other operand is.
            if not self._invariant(stmt.value, loop_writes):
                break
            if self._assign_count(loop.body, stmt.name) != 1:
                break
            hoisted.append(loop.body.pop(0))
            obs_remarks.passed(
                self.name,
                f"hoisted loop-invariant assignment to {stmt.name!r} "
                "out of the loop",
                function=self._func.name, line=stmt.line,
                variable=stmt.name)
        return hoisted

    def _runs_at_least_once(self, loop: ir.ForRange) -> bool:
        if not (isinstance(loop.start, ir.Const) and
                isinstance(loop.stop, ir.Const)):
            return False
        if loop.step > 0:
            return loop.start.value < loop.stop.value
        return loop.start.value > loop.stop.value

    def _invariant(self, expr: ir.Expr, loop_writes: set[str]) -> bool:
        for node in ir.walk_expr(expr):
            if isinstance(node, (ir.Load, ir.VecLoad, ir.IntrinsicCall)):
                return False
            if isinstance(node, ir.VarRef) and node.name in loop_writes:
                return False
        return True

    def _assign_count(self, body: list[ir.Stmt], name: str) -> int:
        count = 0
        for stmt in ir.walk_statements(body):
            if isinstance(stmt, ir.AssignVar) and stmt.name == name:
                count += 1
            elif isinstance(stmt, ir.ForRange) and stmt.var == name:
                count += 1
            elif isinstance(stmt, ir.Call) and name in stmt.results:
                count += 1
        return count
