"""Function inlining (module-level pass).

Inlines calls whose callee is small or called exactly once.  Besides
removing call overhead, inlining is what lets the later loop passes and
the SIMD vectorizer work *across* the original function boundaries —
e.g. a compiler-library kernel specialized for a single call site merges
into its caller and its loops join the caller's optimization scope.

Calling convention recap (see :class:`repro.ir.nodes.IRFunction`):
array parameters are read-only views, array outputs are caller buffers
written in place, scalar outputs are plain locals.  Inlining therefore
maps array params to the argument array names, array outputs to the
result array names, scalar params to fresh initialized temporaries, and
everything else to fresh names.
"""

from __future__ import annotations

import copy

from repro.ir import nodes as ir
from repro.ir.types import ArrayType


class FunctionInlining:
    """Module-level inliner; run before the scalar/SIMD pipelines."""

    name = "inline"

    def __init__(self, max_statements: int = 12):
        self.max_statements = max_statements
        self._counter = 0

    # ------------------------------------------------------------------

    def run_module(self, module: ir.IRModule) -> bool:
        changed = False
        # Iterate: inlining can expose further single-site callees.
        for _ in range(4):
            site_counts = self._call_site_counts(module)
            round_changed = False
            for func in module.functions:
                round_changed |= self._inline_in(func, module, site_counts)
            if not round_changed:
                break
            changed = True
        if changed:
            self._drop_dead_functions(module)
        return changed

    def _call_site_counts(self, module: ir.IRModule) -> dict[str, int]:
        counts: dict[str, int] = {}
        for func in module.functions:
            for stmt in ir.walk_statements(func.body):
                if isinstance(stmt, ir.Call):
                    counts[stmt.callee] = counts.get(stmt.callee, 0) + 1
        return counts

    def _statement_count(self, func: ir.IRFunction) -> int:
        return sum(1 for _ in ir.walk_statements(func.body))

    def _inlinable(self, callee: ir.IRFunction, sites: int) -> bool:
        if any(isinstance(s, ir.Return)
               for s in ir.walk_statements(callee.body)):
            return False  # early returns would need label plumbing
        return sites == 1 or \
            self._statement_count(callee) <= self.max_statements

    # ------------------------------------------------------------------

    def _inline_in(self, caller: ir.IRFunction, module: ir.IRModule,
                   site_counts: dict[str, int]) -> bool:
        changed = False

        def process(body: list[ir.Stmt]) -> None:
            nonlocal changed
            index = 0
            while index < len(body):
                stmt = body[index]
                for sub in stmt.substatements():
                    process(sub)
                if isinstance(stmt, ir.Call):
                    callee = module.function(stmt.callee)
                    if callee is not None and callee is not caller and \
                            self._inlinable(callee,
                                            site_counts.get(stmt.callee, 0)):
                        expansion = self._expand(stmt, callee, caller)
                        body[index:index + 1] = expansion
                        index += len(expansion)
                        changed = True
                        continue
                index += 1

        process(caller.body)
        return changed

    def _expand(self, call: ir.Call, callee: ir.IRFunction,
                caller: ir.IRFunction) -> list[ir.Stmt]:
        self._counter += 1
        prefix = f"inl{self._counter}_"
        rename: dict[str, str] = {}
        prologue: list[ir.Stmt] = []

        for param, argument in zip(callee.params, call.args):
            if isinstance(param.type, ArrayType):
                rename[param.name] = argument  # argument is an array name
            else:
                temp = prefix + param.name
                caller.declare(temp, param.type)
                rename[param.name] = temp
                prologue.append(ir.AssignVar(temp,
                                             copy.deepcopy(argument)))

        for out, result in zip(callee.outputs, call.results):
            rename[out.name] = result

        for name, ir_type in callee.locals.items():
            if name in rename:
                continue  # scalar outputs live in locals too
            fresh = prefix + name
            rename[name] = fresh
            caller.declare(fresh, ir_type)

        body = copy.deepcopy(callee.body)
        _rename_tree(body, rename)
        return prologue + body

    def _drop_dead_functions(self, module: ir.IRModule) -> None:
        live = self._call_site_counts(module)
        module.functions = [
            f for f in module.functions
            if f.name == module.entry or live.get(f.name, 0) > 0
        ]


def _rename_tree(body: list[ir.Stmt], rename: dict[str, str]) -> None:
    """Rewrite every variable and array name in a statement tree."""

    def map_name(name: str) -> str:
        return rename.get(name, name)

    def fix_expr(expr: ir.Expr) -> None:
        for node in ir.walk_expr(expr):
            if isinstance(node, ir.VarRef):
                node.name = map_name(node.name)
            elif isinstance(node, (ir.Load, ir.VecLoad)):
                node.array = map_name(node.array)

    for stmt in body:
        for expr in ir.statement_exprs(stmt):
            fix_expr(expr)
        if isinstance(stmt, ir.AssignVar):
            stmt.name = map_name(stmt.name)
        elif isinstance(stmt, (ir.Store, ir.VecStore)):
            stmt.array = map_name(stmt.array)
        elif isinstance(stmt, ir.ForRange):
            stmt.var = map_name(stmt.var)
        elif isinstance(stmt, ir.CopyArray):
            stmt.dst = map_name(stmt.dst)
            stmt.src = map_name(stmt.src)
        elif isinstance(stmt, ir.Call):
            stmt.args = [map_name(a) if isinstance(a, str) else a
                         for a in stmt.args]
            stmt.results = [map_name(r) for r in stmt.results]
        for sub in stmt.substatements():
            _rename_tree(sub, rename)
