"""Dead-code elimination.

Removes assignments to scalar variables that are never read (and are not
function outputs), loops and copies producing arrays that are never read
(and are not outputs), and unused local declarations.  Iterates naturally
with the pass manager: removing one dead assignment can make another's
operands dead in the next round.
"""

from __future__ import annotations

from repro.ir import nodes as ir
from repro.ir.passes.rewrite import loaded_arrays, used_vars


class DeadCodeElimination:
    name = "dce"

    def run(self, func: ir.IRFunction) -> bool:
        changed = False
        keep = {p.name for p in func.outputs}
        keep.update(p.name for p in func.params)

        live_scalars = used_vars(func.body) | keep
        live_arrays = loaded_arrays(func.body) | keep

        self._func_body = func.body
        changed |= self._sweep(func.body, live_scalars, live_arrays)

        # Drop locals that no statement mentions any more.
        still_assigned = self._mentioned_names(func.body)
        for name in list(func.locals):
            if name in keep:
                continue
            if name not in still_assigned and name not in live_scalars and \
                    name not in live_arrays:
                del func.locals[name]
                changed = True
        return changed

    def _mentioned_names(self, body: list[ir.Stmt]) -> set[str]:
        names: set[str] = set()
        for stmt in ir.walk_statements(body):
            if isinstance(stmt, ir.AssignVar):
                names.add(stmt.name)
            elif isinstance(stmt, (ir.Store, ir.VecStore)):
                names.add(stmt.array)
            elif isinstance(stmt, ir.ForRange):
                names.add(stmt.var)
            elif isinstance(stmt, ir.CopyArray):
                names.add(stmt.dst)
                names.add(stmt.src)
            elif isinstance(stmt, ir.Call):
                names.update(stmt.results)
                names.update(a for a in stmt.args if isinstance(a, str))
            for expr in ir.statement_exprs(stmt):
                for node in ir.walk_expr(expr):
                    if isinstance(node, ir.VarRef):
                        names.add(node.name)
                    elif isinstance(node, (ir.Load, ir.VecLoad)):
                        names.add(node.array)
        return names

    def _sweep(self, body: list[ir.Stmt], live_scalars: set[str],
               live_arrays: set[str]) -> bool:
        changed = False
        index = 0
        while index < len(body):
            stmt = body[index]
            remove = False
            if isinstance(stmt, ir.AssignVar):
                if stmt.name not in live_scalars and \
                        self._is_pure(stmt.value):
                    remove = True
            elif isinstance(stmt, ir.CopyArray):
                if stmt.dst not in live_arrays:
                    remove = True
            elif isinstance(stmt, ir.ForRange):
                changed |= self._sweep(stmt.body, live_scalars, live_arrays)
                if self._loop_only_writes_dead(stmt, live_arrays,
                                               live_scalars):
                    remove = True
            elif isinstance(stmt, (ir.While, ir.If)):
                for sub in stmt.substatements():
                    changed |= self._sweep(sub, live_scalars, live_arrays)
                if isinstance(stmt, ir.If) and not stmt.then_body and \
                        not stmt.else_body:
                    remove = True
            if remove:
                del body[index]
                changed = True
            else:
                index += 1
        return changed

    def _var_used_outside(self, loop: ir.ForRange) -> bool:
        """Is the loop variable read anywhere outside the loop's body?

        Reads inside another loop that redefines the name as its own
        induction variable don't count.
        """
        name = loop.var

        def count(body: list[ir.Stmt]) -> int:
            total = 0
            for stmt in body:
                if stmt is loop:
                    continue
                for expr in ir.statement_exprs(stmt):
                    for node in ir.walk_expr(expr):
                        if isinstance(node, ir.VarRef) and \
                                node.name == name:
                            total += 1
                if isinstance(stmt, ir.ForRange) and stmt.var == name:
                    continue
                for sub in stmt.substatements():
                    total += count(sub)
            return total

        return count(self._func_body) > 0

    def _is_pure(self, expr: ir.Expr) -> bool:
        return not any(isinstance(node, ir.IntrinsicCall)
                       for node in ir.walk_expr(expr))

    def _loop_only_writes_dead(self, loop: ir.ForRange,
                               live_arrays: set[str],
                               live_scalars: set[str]) -> bool:
        """A loop whose only effects are writes to dead targets is dead.

        The induction variable itself is an effect: MATLAB leaves it
        holding its final value, so a loop variable read *outside* the
        loop keeps the loop.
        """
        if self._var_used_outside(loop):
            return False
        if not loop.body:
            return True
        for stmt in ir.walk_statements(loop.body):
            if isinstance(stmt, (ir.Emit, ir.Call, ir.IntrinsicStmt,
                                 ir.Return, ir.Break, ir.Continue,
                                 ir.While)):
                return False
            if isinstance(stmt, (ir.Store, ir.VecStore)) and \
                    stmt.array in live_arrays:
                return False
            if isinstance(stmt, ir.CopyArray) and stmt.dst in live_arrays:
                return False
            if isinstance(stmt, ir.AssignVar) and stmt.name in live_scalars:
                return False
        return True
