"""Fusion of adjacent conformable loops.

Two back-to-back ``ForRange`` loops with identical constant bounds and
step are merged when every array they both touch is accessed only at the
loop index itself (pure element-wise traffic) and no scalar flows from
the first body into the second.  This collapses chains of element-wise
statements (``a = x + y; b = a .* w``) into single loops, which both
saves loop overhead on the scalar datapath and gives the vectorizer one
bigger body to convert.
"""

from __future__ import annotations

from repro.ir import nodes as ir
from repro.ir.passes.rewrite import (
    assigned_vars,
    loaded_arrays,
    rewrite_tree,
    stored_arrays,
    used_vars,
)
from repro.observe import remarks as obs_remarks


class LoopFusion:
    name = "loop-fusion"

    def run(self, func: ir.IRFunction) -> bool:
        self._func = func
        return self._walk(func.body)

    def _walk(self, body: list[ir.Stmt]) -> bool:
        changed = False
        index = 0
        while index < len(body):
            stmt = body[index]
            for sub in stmt.substatements():
                changed |= self._walk(sub)
            if isinstance(stmt, ir.ForRange) and index + 1 < len(body):
                nxt = body[index + 1]
                if isinstance(nxt, ir.ForRange) and self._fusable(stmt, nxt):
                    obs_remarks.passed(
                        self.name,
                        "fused adjacent conformable loop (from line "
                        f"{nxt.line}) into this one",
                        function=self._func.name, line=stmt.line,
                        fused_line=nxt.line)
                    self._fuse(stmt, nxt)
                    del body[index + 1]
                    changed = True
                    continue  # try to fuse further successors too
            index += 1
        return changed

    def _fusable(self, a: ir.ForRange, b: ir.ForRange) -> bool:
        if a.step != b.step or a.step != 1:
            return False
        if not (isinstance(a.start, ir.Const) and isinstance(b.start, ir.Const)
                and isinstance(a.stop, ir.Const) and isinstance(b.stop, ir.Const)):
            return False
        if a.start.value != b.start.value or a.stop.value != b.stop.value:
            return False
        if self._has_control_flow(a.body) or self._has_control_flow(b.body):
            return False
        # No scalar may flow between the two bodies.
        a_scalars = assigned_vars(a.body)
        if a_scalars & (used_vars(b.body) | assigned_vars(b.body)):
            return False
        if assigned_vars(b.body) & used_vars(a.body):
            return False
        # Arrays touched by both loops must be accessed only at the
        # loop index itself.
        a_arrays = stored_arrays(a.body) | loaded_arrays(a.body)
        b_arrays = stored_arrays(b.body) | loaded_arrays(b.body)
        shared = a_arrays & b_arrays
        if shared:
            if not self._index_only(a.body, shared, a.var):
                return False
            if not self._index_only(b.body, shared, b.var):
                return False
        return True

    def _has_control_flow(self, body: list[ir.Stmt]) -> bool:
        return any(isinstance(stmt, (ir.ForRange, ir.While, ir.If, ir.Break,
                                     ir.Continue, ir.Return, ir.Call,
                                     ir.Emit, ir.CopyArray))
                   for stmt in ir.walk_statements(body))

    def _index_only(self, body: list[ir.Stmt], arrays: set[str],
                    var: str) -> bool:
        for stmt in ir.walk_statements(body):
            if isinstance(stmt, (ir.Store, ir.VecStore)) and \
                    stmt.array in arrays:
                index = stmt.index if isinstance(stmt, ir.Store) else stmt.base
                if not self._is_loop_var(index, var):
                    return False
            for expr in ir.statement_exprs(stmt):
                for node in ir.walk_expr(expr):
                    if isinstance(node, (ir.Load, ir.VecLoad)) and \
                            node.array in arrays:
                        index = node.index if isinstance(node, ir.Load) \
                            else node.base
                        if not self._is_loop_var(index, var):
                            return False
        return True

    def _is_loop_var(self, index: ir.Expr, var: str) -> bool:
        return isinstance(index, ir.VarRef) and index.name == var

    def _fuse(self, a: ir.ForRange, b: ir.ForRange) -> None:
        if b.var != a.var:
            def rename(expr: ir.Expr) -> ir.Expr:
                if isinstance(expr, ir.VarRef) and expr.name == b.var:
                    return ir.VarRef(expr.type, a.var)
                return expr

            rewrite_tree(b.body, rename)
        a.body.extend(b.body)
