"""Pass manager for IR-to-IR optimization passes.

A pass is any object with ``name`` and ``run(func: IRFunction) -> bool``
(returning True when it changed something).  The manager runs its pass
list over every function of a module repeatedly until a fixpoint, with a
safety bound.  The standard pipelines used by the compiler driver live
here so the ablation benchmarks can switch them off selectively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.ir import nodes as ir


class Pass(Protocol):  # pragma: no cover - typing only
    name: str

    def run(self, func: ir.IRFunction) -> bool: ...


@dataclass
class PassManager:
    """Runs a pass pipeline to fixpoint over an IR module."""

    passes: list[Pass] = field(default_factory=list)
    max_rounds: int = 8

    def run(self, module: ir.IRModule) -> dict[str, int]:
        """Run all passes; returns per-pass change counts (diagnostics)."""
        stats: dict[str, int] = {}
        for func in module.functions:
            for _ in range(self.max_rounds):
                changed = False
                for pass_ in self.passes:
                    if pass_.run(func):
                        changed = True
                        stats[pass_.name] = stats.get(pass_.name, 0) + 1
                if not changed:
                    break
        return stats


def standard_pipeline() -> PassManager:
    """Pre-vectorization scalar pipeline.

    Deliberately excludes CSE: CSE introduces scalar index temporaries
    inside loop bodies that would hide the store/reduction patterns the
    SIMD vectorizer matches.  CSE belongs in :func:`cleanup_pipeline`,
    which runs after instruction selection.
    """
    from repro.ir.passes.constant_folding import ConstantFolding
    from repro.ir.passes.dce import DeadCodeElimination
    from repro.ir.passes.licm import LoopInvariantCodeMotion
    from repro.ir.passes.loop_fusion import LoopFusion
    from repro.ir.passes.propagation import ConstantPropagation

    return PassManager(passes=[
        ConstantPropagation(),
        ConstantFolding(),
        LoopFusion(),
        LoopInvariantCodeMotion(),
        DeadCodeElimination(),
    ])


def cleanup_pipeline() -> PassManager:
    """Post-vectorization cleanup: folding, CSE, DCE."""
    from repro.ir.passes.constant_folding import ConstantFolding
    from repro.ir.passes.cse import CommonSubexpressionElimination
    from repro.ir.passes.dce import DeadCodeElimination
    from repro.ir.passes.propagation import ConstantPropagation

    return PassManager(passes=[
        ConstantPropagation(),
        ConstantFolding(),
        CommonSubexpressionElimination(),
        DeadCodeElimination(),
    ])


def minimal_pipeline() -> PassManager:
    """Folding only — used by ablation variants."""
    from repro.ir.passes.constant_folding import ConstantFolding

    return PassManager(passes=[ConstantFolding()], max_rounds=2)
