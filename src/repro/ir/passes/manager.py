"""Pass manager for IR-to-IR optimization passes.

A pass is any object with ``name`` and ``run(func: IRFunction) -> bool``
(returning True when it changed something).  The manager runs its pass
list over every function of a module repeatedly until a fixpoint, with a
safety bound.  The standard pipelines used by the compiler driver live
here so the ablation benchmarks can switch them off selectively.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Protocol

from repro.ir import nodes as ir
from repro.observe import remarks as obs_remarks
from repro.observe import trace as obs_trace


class Pass(Protocol):  # pragma: no cover - typing only
    name: str

    def run(self, func: ir.IRFunction) -> bool: ...


def _print_changed(pass_: Pass, func: ir.IRFunction, round_: int) -> None:
    """IR-after-pass dump for the CLI's ``--print-changed``."""
    from repro.ir.printer import format_function
    print(f";; IR after {pass_.name} "
          f"(function {func.name}, round {round_})", file=sys.stderr)
    print(format_function(func), file=sys.stderr)


@dataclass
class PassManager:
    """Runs a pass pipeline to fixpoint over an IR module."""

    passes: list[Pass] = field(default_factory=list)
    max_rounds: int = 8

    def run(self, module: ir.IRModule) -> dict[str, int]:
        """Run all passes; returns per-pass change counts (diagnostics).

        Besides per-pass change counts, the stats record the number of
        fixpoint rounds taken per function under ``rounds[<name>]``
        keys.  When the ``max_rounds`` safety bound is hit before the
        pipeline converges, an ``analysis`` remark is emitted into the
        ambient trace session.
        """
        session = obs_trace.current()
        stats: dict[str, int] = {}
        for func in module.functions:
            rounds = 0
            converged = False
            for _ in range(self.max_rounds):
                rounds += 1
                changed = False
                for pass_ in self.passes:
                    with session.span(pass_.name, "pass",
                                      function=func.name,
                                      round=rounds) as span:
                        did_change = pass_.run(func)
                    session.observe(f"pass.{pass_.name}_s",
                                    span.duration)
                    if did_change:
                        changed = True
                        stats[pass_.name] = stats.get(pass_.name, 0) + 1
                        if session.print_changed:
                            _print_changed(pass_, func, rounds)
                if not changed:
                    converged = True
                    break
            stats[f"rounds[{func.name}]"] = \
                stats.get(f"rounds[{func.name}]", 0) + rounds
            if not converged:
                obs_remarks.analysis(
                    "pass-manager",
                    f"stopped after max_rounds={self.max_rounds} rounds "
                    "without reaching a fixpoint; results may be "
                    "under-optimized",
                    function=func.name)
        return stats


def standard_pipeline() -> PassManager:
    """Pre-vectorization scalar pipeline.

    Deliberately excludes CSE: CSE introduces scalar index temporaries
    inside loop bodies that would hide the store/reduction patterns the
    SIMD vectorizer matches.  CSE belongs in :func:`cleanup_pipeline`,
    which runs after instruction selection.
    """
    from repro.ir.passes.constant_folding import ConstantFolding
    from repro.ir.passes.dce import DeadCodeElimination
    from repro.ir.passes.licm import LoopInvariantCodeMotion
    from repro.ir.passes.loop_fusion import LoopFusion
    from repro.ir.passes.propagation import ConstantPropagation

    return PassManager(passes=[
        ConstantPropagation(),
        ConstantFolding(),
        LoopFusion(),
        LoopInvariantCodeMotion(),
        DeadCodeElimination(),
    ])


def cleanup_pipeline() -> PassManager:
    """Post-vectorization cleanup: folding, CSE, DCE."""
    from repro.ir.passes.constant_folding import ConstantFolding
    from repro.ir.passes.cse import CommonSubexpressionElimination
    from repro.ir.passes.dce import DeadCodeElimination
    from repro.ir.passes.propagation import ConstantPropagation

    return PassManager(passes=[
        ConstantPropagation(),
        ConstantFolding(),
        CommonSubexpressionElimination(),
        DeadCodeElimination(),
    ])


def minimal_pipeline() -> PassManager:
    """Folding only — used by ablation variants."""
    from repro.ir.passes.constant_folding import ConstantFolding

    return PassManager(passes=[ConstantFolding()], max_rounds=2)
