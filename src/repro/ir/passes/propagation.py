"""Forward constant propagation for scalar variables.

A structured-IR dataflow walk: constants assigned to scalar variables are
substituted into later uses until the variable is reassigned, with kills
at loop and branch boundaries (a loop body may run zero or many times, so
anything it assigns is unknown both inside and after it).
"""

from __future__ import annotations

from repro.ir import nodes as ir
from repro.ir.passes.rewrite import assigned_vars, rewrite_stmt_exprs


class ConstantPropagation:
    """Propagate scalar constants through straight-line regions."""

    name = "constant-propagation"

    def __init__(self) -> None:
        self._changed = False

    def run(self, func: ir.IRFunction) -> bool:
        self._changed = False
        self._walk(func.body, {})
        return self._changed

    def _substitute(self, stmt: ir.Stmt, env: dict[str, ir.Const]) -> None:
        if not env:
            return

        def replace(expr: ir.Expr) -> ir.Expr:
            if isinstance(expr, ir.VarRef):
                const = env.get(expr.name)
                if const is not None and const.type == expr.type:
                    self._changed = True
                    return ir.Const(const.type, const.value)
            return expr

        rewrite_stmt_exprs(stmt, replace)

    def _walk(self, body: list[ir.Stmt], env: dict[str, ir.Const]) -> None:
        for stmt in body:
            if isinstance(stmt, ir.While):
                # The condition is re-evaluated every iteration, so any
                # variable the body can change must be killed *before*
                # substituting into it.
                killed = assigned_vars(stmt.body)
                for name in killed:
                    env.pop(name, None)
            self._substitute(stmt, env)
            if isinstance(stmt, ir.AssignVar):
                if isinstance(stmt.value, ir.Const):
                    env[stmt.name] = stmt.value
                else:
                    env.pop(stmt.name, None)
            elif isinstance(stmt, ir.ForRange):
                killed = assigned_vars(stmt.body) | {stmt.var}
                inner = {k: v for k, v in env.items() if k not in killed}
                self._walk(stmt.body, inner)
                for name in killed:
                    env.pop(name, None)
            elif isinstance(stmt, ir.While):
                killed = assigned_vars(stmt.body)
                inner = {k: v for k, v in env.items() if k not in killed}
                self._walk(stmt.body, inner)
                for name in killed:
                    env.pop(name, None)
            elif isinstance(stmt, ir.If):
                then_killed = assigned_vars(stmt.then_body)
                else_killed = assigned_vars(stmt.else_body)
                self._walk(stmt.then_body, dict(env))
                self._walk(stmt.else_body, dict(env))
                for name in then_killed | else_killed:
                    env.pop(name, None)
            elif isinstance(stmt, ir.Call):
                for name in stmt.results:
                    env.pop(name, None)
