"""IR-to-IR optimization passes."""
