"""Constant folding, cast narrowing, and algebraic simplification.

Lowering produces many index expressions of the shape
``cast<i32>(cast<f64>(n) + 1.0) - 1`` because MATLAB indices are doubles.
This pass folds constants, removes round-trip casts, and *narrows*
integer-valued f64 arithmetic back to i32 — after it, index expressions
are plain integer arithmetic, which both reads better in the generated C
and is what the SIMD vectorizer's affine analysis expects.
"""

from __future__ import annotations

import math

from repro.ir import nodes as ir
from repro.ir.passes.rewrite import rewrite_tree
from repro.ir.types import ScalarKind, ScalarType

_I32 = ScalarType(ScalarKind.I32)
_F64 = ScalarType(ScalarKind.F64)

_FOLDABLE_MATH = {
    "abs": abs,
    "sqrt": math.sqrt,
    "floor": math.floor,
    "ceil": math.ceil,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
}


def _is_const(expr: ir.Expr, value=None) -> bool:
    if not isinstance(expr, ir.Const):
        return False
    if value is None:
        return True
    try:
        return expr.value == value and not isinstance(expr.value, bool)
    except TypeError:
        return False


def _const_for(kind: ScalarKind, value) -> ir.Const:
    if kind.is_complex:
        return ir.Const(ScalarType(kind), complex(value))
    if kind is ScalarKind.BOOL:
        return ir.Const(ScalarType(kind), bool(value))
    if kind.is_integer:
        return ir.Const(ScalarType(kind), int(value))
    return ir.Const(ScalarType(kind), float(value))


class ConstantFolding:
    """Fold constants and simplify expressions bottom-up."""

    name = "constant-folding"

    def __init__(self) -> None:
        self._changed = False

    def run(self, func: ir.IRFunction) -> bool:
        self._changed = False
        rewrite_tree(func.body, self._simplify)
        self._simplify_control(func.body)
        return self._changed

    # ------------------------------------------------------------------
    # Expression simplification
    # ------------------------------------------------------------------

    def _simplify(self, expr: ir.Expr) -> ir.Expr:
        if isinstance(expr, ir.BinOp):
            return self._simplify_binop(expr)
        if isinstance(expr, ir.UnOp):
            return self._simplify_unop(expr)
        if isinstance(expr, ir.Cast):
            return self._simplify_cast(expr)
        if isinstance(expr, ir.MathCall):
            return self._simplify_math(expr)
        if isinstance(expr, ir.MakeComplex):
            if _is_const(expr.real) and _is_const(expr.imag):
                self._changed = True
                return ir.Const(expr.type,
                                complex(expr.real.value, expr.imag.value))
        return expr

    def _simplify_binop(self, expr: ir.BinOp) -> ir.Expr:
        left, right = expr.left, expr.right
        kind = expr.type.kind if isinstance(expr.type, ScalarType) else None

        if isinstance(left, ir.Const) and isinstance(right, ir.Const) \
                and kind is not None:
            folded = self._fold_binop(expr.op, left.value, right.value, kind)
            if folded is not None:
                self._changed = True
                return folded

        is_int = kind is not None and kind.is_integer
        # Algebraic identities (float-safe subset only: x+0 and x*1 are
        # exact in IEEE; x*0 is folded only for integers because of NaN).
        if expr.op == "add":
            if _is_const(right, 0):
                self._changed = True
                return left
            if _is_const(left, 0):
                self._changed = True
                return right
        elif expr.op == "sub":
            if _is_const(right, 0):
                self._changed = True
                return left
        elif expr.op == "mul":
            if _is_const(right, 1):
                self._changed = True
                return left
            if _is_const(left, 1):
                self._changed = True
                return right
            if is_int and (_is_const(right, 0) or _is_const(left, 0)):
                self._changed = True
                return ir.Const(expr.type, 0)
        elif expr.op == "div":
            if _is_const(right, 1):
                self._changed = True
                return left

        # Re-associate integer add/sub chains: (x + c1) + c2 -> x + c.
        if is_int and expr.op in ("add", "sub") and \
                isinstance(right, ir.Const):
            inner = left
            if isinstance(inner, ir.BinOp) and inner.op in ("add", "sub") \
                    and isinstance(inner.right, ir.Const) and \
                    isinstance(inner.type, ScalarType) and \
                    inner.type.kind.is_integer:
                c_outer = right.value if expr.op == "add" else -right.value
                c_inner = inner.right.value if inner.op == "add" \
                    else -inner.right.value
                total = c_inner + c_outer
                self._changed = True
                if total == 0:
                    return inner.left
                return ir.BinOp(expr.type, op="add", left=inner.left,
                                right=ir.Const(_I32, total))
        return expr

    def _fold_binop(self, op: str, a, b, kind: ScalarKind) -> ir.Const | None:
        try:
            if op == "add":
                value = a + b
            elif op == "sub":
                value = a - b
            elif op == "mul":
                value = a * b
            elif op == "div":
                if kind.is_integer:
                    return None  # never introduce integer division
                if b == 0:
                    return None
                value = a / b
            elif op == "min":
                value = min(a, b)
            elif op == "max":
                value = max(a, b)
            elif op == "pow":
                value = a ** b
            elif op in ("eq", "ne", "lt", "le", "gt", "ge"):
                value = {"eq": a == b, "ne": a != b, "lt": a < b,
                         "le": a <= b, "gt": a > b, "ge": a >= b}[op]
                return ir.Const(ScalarType(ScalarKind.BOOL), bool(value))
            elif op in ("land", "lor"):
                value = (bool(a) and bool(b)) if op == "land" else \
                    (bool(a) or bool(b))
                return ir.Const(ScalarType(ScalarKind.BOOL), bool(value))
            elif op == "rem":
                if b == 0:
                    return None
                value = math.fmod(a, b)
            else:
                return None
        except (TypeError, ValueError, OverflowError, ZeroDivisionError):
            return None
        try:
            return _const_for(kind, value)
        except (TypeError, ValueError, OverflowError):
            return None

    def _simplify_unop(self, expr: ir.UnOp) -> ir.Expr:
        operand = expr.operand
        if isinstance(operand, ir.Const):
            try:
                if expr.op == "neg":
                    self._changed = True
                    return _const_for(expr.type.kind, -operand.value)
                if expr.op == "lnot":
                    self._changed = True
                    return ir.Const(ScalarType(ScalarKind.BOOL),
                                    not bool(operand.value))
            except TypeError:
                pass
        if expr.op == "neg" and isinstance(operand, ir.UnOp) and \
                operand.op == "neg":
            self._changed = True
            return operand.operand
        return expr

    def _simplify_cast(self, expr: ir.Cast) -> ir.Expr:
        operand = expr.operand
        target = expr.type
        if not isinstance(target, ScalarType):
            return expr
        if isinstance(operand.type, ScalarType) and operand.type == target:
            self._changed = True
            return operand
        if isinstance(operand, ir.Const):
            try:
                folded = _const_for(target.kind, operand.value)
            except (TypeError, ValueError, OverflowError):
                folded = None
            if folded is not None:
                self._changed = True
                return folded
        # i32 <- f64 <- i32 round trip.
        if target.kind is ScalarKind.I32 and isinstance(operand, ir.Cast) \
                and isinstance(operand.operand.type, ScalarType) and \
                operand.operand.type.kind is ScalarKind.I32:
            self._changed = True
            return operand.operand
        # Narrow integer-valued float arithmetic under an i32 cast.
        if target.kind is ScalarKind.I32:
            narrowed = self._narrow_to_i32(operand)
            if narrowed is not None:
                self._changed = True
                return narrowed
        return expr

    def _narrow_to_i32(self, expr: ir.Expr) -> ir.Expr | None:
        """Rewrite an integer-valued f64 expression as i32 arithmetic.

        Sound because every intermediate value is an exact integer well
        inside both f64's exact range and i32 (array extents).
        """
        if isinstance(expr, ir.Cast) and isinstance(expr.operand.type,
                                                    ScalarType) and \
                expr.operand.type.kind is ScalarKind.I32:
            return expr.operand
        if isinstance(expr, ir.Const) and not isinstance(expr.value,
                                                         (complex, bool)):
            if float(expr.value) == int(float(expr.value)):
                return ir.Const(_I32, int(float(expr.value)))
            return None
        if isinstance(expr, ir.BinOp) and expr.op in ("add", "sub", "mul",
                                                      "min", "max"):
            left = self._narrow_to_i32(expr.left)
            if left is None:
                return None
            right = self._narrow_to_i32(expr.right)
            if right is None:
                return None
            return ir.BinOp(_I32, op=expr.op, left=left, right=right)
        if isinstance(expr, ir.UnOp) and expr.op == "neg":
            operand = self._narrow_to_i32(expr.operand)
            if operand is None:
                return None
            return ir.UnOp(_I32, op="neg", operand=operand)
        return None

    def _simplify_math(self, expr: ir.MathCall) -> ir.Expr:
        fn = _FOLDABLE_MATH.get(expr.name)
        if fn is None or len(expr.args) != 1:
            return expr
        arg = expr.args[0]
        if isinstance(arg, ir.Const) and not isinstance(arg.value,
                                                        (complex, bool)):
            try:
                value = fn(float(arg.value))
            except (ValueError, OverflowError):
                return expr
            self._changed = True
            kind = expr.type.kind if isinstance(expr.type, ScalarType) \
                else ScalarKind.F64
            return _const_for(kind, value)
        return expr

    # ------------------------------------------------------------------
    # Control-flow simplification
    # ------------------------------------------------------------------

    def _simplify_control(self, body: list[ir.Stmt]) -> None:
        index = 0
        while index < len(body):
            stmt = body[index]
            for sub in stmt.substatements():
                self._simplify_control(sub)
            replacement = self._simplify_stmt(stmt)
            if replacement is None:
                index += 1
            elif replacement is _REMOVE:
                del body[index]
                self._changed = True
            else:
                body[index:index + 1] = replacement
                self._changed = True
        return

    def _simplify_stmt(self, stmt: ir.Stmt):
        if isinstance(stmt, ir.If) and isinstance(stmt.condition, ir.Const):
            taken = stmt.then_body if stmt.condition.value else stmt.else_body
            return list(taken)
        if isinstance(stmt, ir.While) and \
                isinstance(stmt.condition, ir.Const) and \
                not stmt.condition.value:
            return _REMOVE
        if isinstance(stmt, ir.ForRange) and \
                isinstance(stmt.start, ir.Const) and \
                isinstance(stmt.stop, ir.Const):
            if stmt.step > 0 and stmt.start.value >= stmt.stop.value:
                return _REMOVE
            if stmt.step < 0 and stmt.start.value <= stmt.stop.value:
                return _REMOVE
        return None


_REMOVE = object()
