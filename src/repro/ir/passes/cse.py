"""Statement-local common-subexpression elimination.

Repeated pure, load-free scalar subexpressions *within a single
statement* are computed once into a temporary in front of it.  The
classic beneficiary is the read-modify-write element update
``c[i + j*m] = c[i + j*m] + ...`` produced by matrix-multiply lowering,
where the linear index would otherwise be computed twice per iteration —
a real cycle cost on the modeled scalar datapath.
"""

from __future__ import annotations

from repro.ir import nodes as ir
from repro.ir.passes.rewrite import rewrite_stmt_exprs
from repro.ir.types import ScalarType


def _expr_key(expr: ir.Expr):
    """Structural hash key for pure scalar expressions (None = opaque)."""
    if isinstance(expr, ir.Const):
        return ("const", expr.type.describe(), repr(expr.value))
    if isinstance(expr, ir.VarRef):
        return ("var", expr.type.describe(), expr.name)
    if isinstance(expr, ir.BinOp):
        left = _expr_key(expr.left)
        right = _expr_key(expr.right)
        if left is None or right is None:
            return None
        return ("bin", expr.op, expr.type.describe(), left, right)
    if isinstance(expr, ir.UnOp):
        operand = _expr_key(expr.operand)
        if operand is None:
            return None
        return ("un", expr.op, expr.type.describe(), operand)
    if isinstance(expr, ir.Cast):
        operand = _expr_key(expr.operand)
        if operand is None:
            return None
        return ("cast", expr.type.describe(), operand)
    return None  # loads, calls, intrinsics: not CSE candidates


def _is_nontrivial(expr: ir.Expr) -> bool:
    return isinstance(expr, (ir.BinOp, ir.UnOp, ir.Cast)) and \
        isinstance(expr.type, ScalarType)


class CommonSubexpressionElimination:
    name = "cse"

    def __init__(self) -> None:
        self._counter = 0

    def run(self, func: ir.IRFunction) -> bool:
        return self._walk(func.body, func)

    def _walk(self, body: list[ir.Stmt], func: ir.IRFunction) -> bool:
        changed = False
        index = 0
        while index < len(body):
            stmt = body[index]
            for sub in stmt.substatements():
                changed |= self._walk(sub, func)
            pre = self._cse_statement(stmt, func)
            if pre:
                body[index:index] = pre
                index += len(pre)
                changed = True
            index += 1
        return changed

    def _cse_statement(self, stmt: ir.Stmt,
                       func: ir.IRFunction) -> list[ir.Stmt]:
        if isinstance(stmt, (ir.ForRange, ir.While, ir.If)):
            # Their expressions are bounds/conditions; CSE only inside
            # bodies (handled by recursion).
            return []
        counts: dict[object, int] = {}
        samples: dict[object, ir.Expr] = {}

        def count(expr: ir.Expr) -> None:
            for node in ir.walk_expr(expr):
                if not _is_nontrivial(node):
                    continue
                key = _expr_key(node)
                if key is None:
                    continue
                counts[key] = counts.get(key, 0) + 1
                samples.setdefault(key, node)

        for expr in ir.statement_exprs(stmt):
            count(expr)

        # Pick maximal repeated expressions: drop keys that only repeat
        # as part of a larger repeated expression.
        repeated = {key for key, n in counts.items() if n >= 2}
        if not repeated:
            return []
        maximal = set(repeated)
        for key in repeated:
            sample = samples[key]
            for child in sample.children():
                for node in ir.walk_expr(child):
                    child_key = _expr_key(node)
                    if child_key in maximal and \
                            counts[child_key] == counts[key]:
                        maximal.discard(child_key)

        pre: list[ir.Stmt] = []
        replacements: dict[object, ir.VarRef] = {}
        for key in maximal:
            sample = samples[key]
            self._counter += 1
            name = f"cse{self._counter}"
            func.declare(name, sample.type)
            assign = ir.AssignVar(name, sample)
            assign.line = stmt.line  # attribute cycles to the user line
            pre.append(assign)
            replacements[key] = ir.VarRef(sample.type, name)

        def replace(expr: ir.Expr) -> ir.Expr:
            key = _expr_key(expr)
            if key in replacements:
                ref = replacements[key]
                return ir.VarRef(ref.type, ref.name)
            return expr

        rewrite_stmt_exprs(stmt, replace)
        # The pre-statements themselves must not self-replace their RHS
        # root (it's the definition), but nested occurrences of *other*
        # CSE'd keys should be; simplest correct behavior: leave them.
        return pre


