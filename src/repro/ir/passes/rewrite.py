"""Generic expression/statement rewriting helpers shared by passes."""

from __future__ import annotations

from typing import Callable

from repro.ir import nodes as ir

ExprRewriter = Callable[[ir.Expr], ir.Expr]


def rewrite_expr(expr: ir.Expr, fn: ExprRewriter) -> ir.Expr:
    """Bottom-up rewrite: children first, then ``fn`` on the node."""
    if isinstance(expr, ir.BinOp):
        expr.left = rewrite_expr(expr.left, fn)
        expr.right = rewrite_expr(expr.right, fn)
    elif isinstance(expr, ir.UnOp):
        expr.operand = rewrite_expr(expr.operand, fn)
    elif isinstance(expr, ir.MathCall):
        expr.args = [rewrite_expr(a, fn) for a in expr.args]
    elif isinstance(expr, ir.Cast):
        expr.operand = rewrite_expr(expr.operand, fn)
    elif isinstance(expr, ir.MakeComplex):
        expr.real = rewrite_expr(expr.real, fn)
        expr.imag = rewrite_expr(expr.imag, fn)
    elif isinstance(expr, ir.Load):
        expr.index = rewrite_expr(expr.index, fn)
    elif isinstance(expr, ir.VecLoad):
        expr.base = rewrite_expr(expr.base, fn)
    elif isinstance(expr, ir.VecSplat):
        expr.operand = rewrite_expr(expr.operand, fn)
    elif isinstance(expr, ir.IntrinsicCall):
        expr.args = [rewrite_expr(a, fn) for a in expr.args]
    return fn(expr)


def rewrite_stmt_exprs(stmt: ir.Stmt, fn: ExprRewriter) -> None:
    """Apply ``fn`` bottom-up to every expression directly owned by
    ``stmt`` (not to nested statements)."""
    if isinstance(stmt, ir.AssignVar):
        stmt.value = rewrite_expr(stmt.value, fn)
    elif isinstance(stmt, ir.Store):
        stmt.index = rewrite_expr(stmt.index, fn)
        stmt.value = rewrite_expr(stmt.value, fn)
    elif isinstance(stmt, ir.VecStore):
        stmt.base = rewrite_expr(stmt.base, fn)
        stmt.value = rewrite_expr(stmt.value, fn)
    elif isinstance(stmt, ir.IntrinsicStmt):
        stmt.call = rewrite_expr(stmt.call, fn)
    elif isinstance(stmt, ir.ForRange):
        stmt.start = rewrite_expr(stmt.start, fn)
        stmt.stop = rewrite_expr(stmt.stop, fn)
    elif isinstance(stmt, (ir.While, ir.If)):
        stmt.condition = rewrite_expr(stmt.condition, fn)
    elif isinstance(stmt, ir.Call):
        stmt.args = [rewrite_expr(a, fn) if isinstance(a, ir.Expr) else a
                     for a in stmt.args]
    elif isinstance(stmt, ir.Emit):
        stmt.args = [rewrite_expr(a, fn) for a in stmt.args]


def rewrite_tree(body: list[ir.Stmt], fn: ExprRewriter) -> None:
    """Apply ``fn`` to every expression in a whole statement tree."""
    for stmt in body:
        rewrite_stmt_exprs(stmt, fn)
        for sub in stmt.substatements():
            rewrite_tree(sub, fn)


def assigned_vars(body: list[ir.Stmt]) -> set[str]:
    """All scalar variable names assigned anywhere in ``body``."""
    names: set[str] = set()
    for stmt in ir.walk_statements(body):
        if isinstance(stmt, ir.AssignVar):
            names.add(stmt.name)
        elif isinstance(stmt, ir.ForRange):
            names.add(stmt.var)
        elif isinstance(stmt, ir.Call):
            names.update(stmt.results)
    return names


def stored_arrays(body: list[ir.Stmt]) -> set[str]:
    """All array names written anywhere in ``body``."""
    names: set[str] = set()
    for stmt in ir.walk_statements(body):
        if isinstance(stmt, (ir.Store, ir.VecStore)):
            names.add(stmt.array)
        elif isinstance(stmt, ir.CopyArray):
            names.add(stmt.dst)
        elif isinstance(stmt, ir.Call):
            names.update(stmt.results)
        elif isinstance(stmt, ir.IntrinsicStmt):
            # Store-like intrinsics name their target array as a string
            # argument by convention; be conservative and treat every
            # array-typed VarRef argument as potentially written.
            for arg in stmt.call.args:
                for node in ir.walk_expr(arg):
                    if isinstance(node, (ir.VecLoad, ir.Load)):
                        names.add(node.array)
    return names


def used_vars_expr(expr: ir.Expr, names: set[str]) -> None:
    for node in ir.walk_expr(expr):
        if isinstance(node, ir.VarRef):
            names.add(node.name)


def used_vars(body: list[ir.Stmt]) -> set[str]:
    """All scalar variable names read anywhere in ``body``."""
    names: set[str] = set()
    for stmt in ir.walk_statements(body):
        for expr in ir.statement_exprs(stmt):
            used_vars_expr(expr, names)
    return names


def loaded_arrays(body: list[ir.Stmt]) -> set[str]:
    """All array names read anywhere in ``body``."""
    names: set[str] = set()
    for stmt in ir.walk_statements(body):
        for expr in ir.statement_exprs(stmt):
            for node in ir.walk_expr(expr):
                if isinstance(node, (ir.Load, ir.VecLoad)):
                    names.add(node.array)
        if isinstance(stmt, ir.CopyArray):
            names.add(stmt.src)
        elif isinstance(stmt, ir.Call):
            names.update(a for a in stmt.args if isinstance(a, str))
    return names
