"""IR well-formedness checks.

Run after lowering and after every transformation in tests: catches
compiler bugs (dangling variable references, type mismatches, unknown
arrays, malformed loops) close to where they were introduced instead of
as mysterious simulation or C-compilation failures.
"""

from __future__ import annotations

from repro.ir import nodes as ir
from repro.ir.types import ArrayType, I32, ScalarType, VectorType


class VerificationError(AssertionError):
    """The IR violates a structural invariant."""


def verify_module(module: ir.IRModule) -> None:
    """Raise :class:`VerificationError` on the first problem found."""
    names = [f.name for f in module.functions]
    if len(set(names)) != len(names):
        raise VerificationError("duplicate function names in module")
    if module.function(module.entry) is None:
        raise VerificationError(f"entry {module.entry!r} not in module")
    for func in module.functions:
        _FunctionVerifier(func, module).run()


def verify_function(func: ir.IRFunction,
                    module: ir.IRModule | None = None) -> None:
    _FunctionVerifier(func, module).run()


class _FunctionVerifier:
    def __init__(self, func: ir.IRFunction, module: ir.IRModule | None):
        self.func = func
        self.module = module
        self.scalars: dict[str, ScalarType | VectorType] = {}
        self.arrays: dict[str, ArrayType] = {}

    def fail(self, message: str) -> None:
        raise VerificationError(f"{self.func.name}: {message}")

    def run(self) -> None:
        for param in self.func.params:
            self._declare(param.name, param.type)
        for out in self.func.outputs:
            # A scalar that is both input and output shares one binding.
            existing = self.scalars.get(out.name, self.arrays.get(out.name))
            if existing is not None:
                if existing != out.type:
                    self.fail(f"output {out.name!r} conflicts with a "
                              "parameter of a different type")
            else:
                self._declare(out.name, out.type)
        for name, ir_type in self.func.locals.items():
            self._declare(name, ir_type, allow_dup=True)
        self._check_body(self.func.body, loop_depth=0)

    def _declare(self, name: str, ir_type, allow_dup: bool = False) -> None:
        if not allow_dup and (name in self.scalars or name in self.arrays):
            self.fail(f"duplicate declaration of {name!r}")
        if isinstance(ir_type, ArrayType):
            self.arrays[name] = ir_type
        else:
            self.scalars[name] = ir_type

    # -- statements ---------------------------------------------------

    def _check_body(self, body: list[ir.Stmt], loop_depth: int) -> None:
        for stmt in body:
            self._check_stmt(stmt, loop_depth)

    def _check_stmt(self, stmt: ir.Stmt, loop_depth: int) -> None:
        if isinstance(stmt, ir.AssignVar):
            declared = self.scalars.get(stmt.name)
            if declared is None:
                self.fail(f"assignment to undeclared variable {stmt.name!r}")
            value_type = self._check_expr(stmt.value)
            if declared != value_type:
                self.fail(f"type mismatch assigning {stmt.name!r}: "
                          f"{declared} = {value_type}")
        elif isinstance(stmt, ir.Store):
            array = self.arrays.get(stmt.array)
            if array is None:
                self.fail(f"store to unknown array {stmt.array!r}")
            index_type = self._check_expr(stmt.index)
            if index_type != I32:
                self.fail("store index must be i32")
            value_type = self._check_expr(stmt.value)
            if value_type != ScalarType(array.elem.kind):
                self.fail(f"store element type mismatch into "
                          f"{stmt.array!r}: {value_type}")
        elif isinstance(stmt, ir.VecStore):
            array = self.arrays.get(stmt.array)
            if array is None:
                self.fail(f"vector store to unknown array {stmt.array!r}")
            value_type = self._check_expr(stmt.value)
            if not isinstance(value_type, VectorType):
                self.fail("vector store of a non-vector value")
            if value_type.elem != ScalarType(array.elem.kind):
                self.fail("vector store element kind mismatch")
            if self._check_expr(stmt.base) != I32:
                self.fail("vector store base must be i32")
        elif isinstance(stmt, ir.IntrinsicStmt):
            self._check_expr(stmt.call)
        elif isinstance(stmt, ir.ForRange):
            if stmt.step == 0:
                self.fail("ForRange step must be non-zero")
            var_type = self.scalars.get(stmt.var)
            if var_type != I32:
                self.fail(f"loop variable {stmt.var!r} must be a declared "
                          "i32 scalar")
            if self._check_expr(stmt.start) != I32:
                self.fail("loop start must be i32")
            if self._check_expr(stmt.stop) != I32:
                self.fail("loop stop must be i32")
            self._check_body(stmt.body, loop_depth + 1)
        elif isinstance(stmt, ir.While):
            self._check_expr(stmt.condition)
            self._check_body(stmt.body, loop_depth + 1)
        elif isinstance(stmt, ir.If):
            self._check_expr(stmt.condition)
            self._check_body(stmt.then_body, loop_depth)
            self._check_body(stmt.else_body, loop_depth)
        elif isinstance(stmt, (ir.Break, ir.Continue)):
            if loop_depth == 0:
                self.fail(f"{type(stmt).__name__} outside of a loop")
        elif isinstance(stmt, ir.Return):
            pass
        elif isinstance(stmt, ir.Call):
            self._check_call(stmt)
        elif isinstance(stmt, ir.Emit):
            for argument in stmt.args:
                self._check_expr(argument)
        elif isinstance(stmt, ir.CopyArray):
            src = self.arrays.get(stmt.src)
            dst = self.arrays.get(stmt.dst)
            if src is None or dst is None:
                self.fail(f"copy between unknown arrays "
                          f"{stmt.src!r} -> {stmt.dst!r}")
            if src.numel != dst.numel:
                self.fail("array copy element-count mismatch")
        else:
            self.fail(f"unknown statement {type(stmt).__name__}")

    def _check_call(self, stmt: ir.Call) -> None:
        if self.module is None:
            return
        callee = self.module.function(stmt.callee)
        if callee is None:
            self.fail(f"call to unknown function {stmt.callee!r}")
        if len(stmt.args) != len(callee.params):
            self.fail(f"call to {stmt.callee!r}: argument count mismatch")
        for arg, param in zip(stmt.args, callee.params):
            if isinstance(param.type, ArrayType):
                if not isinstance(arg, str) or arg not in self.arrays:
                    self.fail(f"call to {stmt.callee!r}: expected an array "
                              f"name for parameter {param.name!r}")
            else:
                if isinstance(arg, str):
                    self.fail(f"call to {stmt.callee!r}: scalar parameter "
                              f"{param.name!r} bound to an array")
                self._check_expr(arg)
        if len(stmt.results) != len(callee.outputs):
            self.fail(f"call to {stmt.callee!r}: result count mismatch")
        for name, out in zip(stmt.results, callee.outputs):
            if isinstance(out.type, ArrayType):
                if name not in self.arrays:
                    self.fail(f"call result array {name!r} undeclared")
            elif name not in self.scalars:
                self.fail(f"call result scalar {name!r} undeclared")

    # -- expressions ----------------------------------------------------

    def _check_expr(self, expr: ir.Expr):
        if expr is None:
            self.fail("missing expression operand")
        if isinstance(expr, ir.Const):
            return expr.type
        if isinstance(expr, ir.VarRef):
            declared = self.scalars.get(expr.name)
            if declared is None:
                self.fail(f"reference to undeclared variable {expr.name!r}")
            if declared != expr.type:
                self.fail(f"stale type on reference to {expr.name!r}: "
                          f"{expr.type} (declared {declared})")
            return expr.type
        if isinstance(expr, ir.Load):
            array = self.arrays.get(expr.array)
            if array is None:
                self.fail(f"load from unknown array {expr.array!r}")
            if self._check_expr(expr.index) != I32:
                self.fail(f"load index into {expr.array!r} must be i32")
            if expr.type != ScalarType(array.elem.kind):
                self.fail(f"load element type mismatch from {expr.array!r}")
            return expr.type
        if isinstance(expr, ir.BinOp):
            self._check_expr(expr.left)
            self._check_expr(expr.right)
            return expr.type
        if isinstance(expr, (ir.UnOp, ir.Cast)):
            self._check_expr(expr.operand)
            return expr.type
        if isinstance(expr, ir.MathCall):
            for argument in expr.args:
                self._check_expr(argument)
            return expr.type
        if isinstance(expr, ir.MakeComplex):
            self._check_expr(expr.real)
            self._check_expr(expr.imag)
            if not expr.type.is_complex:
                self.fail("MakeComplex with non-complex result type")
            return expr.type
        if isinstance(expr, ir.VecLoad):
            array = self.arrays.get(expr.array)
            if array is None:
                self.fail(f"vector load from unknown array {expr.array!r}")
            if not isinstance(expr.type, VectorType):
                self.fail("vector load with non-vector type")
            if expr.type.elem != ScalarType(array.elem.kind):
                self.fail("vector load element kind mismatch")
            if self._check_expr(expr.base) != I32:
                self.fail("vector load base must be i32")
            return expr.type
        if isinstance(expr, ir.VecSplat):
            self._check_expr(expr.operand)
            return expr.type
        if isinstance(expr, ir.IntrinsicCall):
            if expr.instruction is None:
                self.fail("intrinsic call without an instruction")
            for argument in expr.args:
                self._check_expr(argument)
            return expr.type
        self.fail(f"unknown expression {type(expr).__name__}")
