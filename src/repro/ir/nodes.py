"""Structured mid-level IR.

The IR sits between the MATLAB AST and C: every array operation has been
scalarized into explicit loop nests over statically-shaped column-major
arrays, all indices are 0-based linear offsets, and types are concrete
machine types.  Control flow stays structured (``ForRange``/``While``/
``If``), which keeps both the C emitter and the loop vectorizer simple —
the vectorizer pattern-matches innermost ``ForRange`` bodies.

After vectorization, loops may additionally contain vector-typed virtual
registers and :class:`IntrinsicCall` expressions referring to the target
processor's custom instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.ir.types import ArrayType, IRType, ScalarType, VectorType

if TYPE_CHECKING:  # pragma: no cover
    from repro.asip.model import Instruction


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass
class Expr:
    """Base class of IR expressions; every expression knows its type."""

    type: IRType

    def children(self) -> list["Expr"]:
        return []


@dataclass
class Const(Expr):
    """A literal scalar (int/float/complex/bool)."""

    value: object = 0

    def __repr__(self) -> str:
        return f"Const({self.value!r}: {self.type.describe()})"


@dataclass
class VarRef(Expr):
    """Read of a scalar or vector virtual register / local variable."""

    name: str = ""

    def __repr__(self) -> str:
        return f"VarRef({self.name}: {self.type.describe()})"


@dataclass
class BinOp(Expr):
    """Binary scalar operation.

    op is one of: add sub mul div pow rem
                  eq ne lt le gt ge land lor
                  min max
    """

    op: str = "add"
    left: Expr = None
    right: Expr = None

    def children(self) -> list[Expr]:
        return [self.left, self.right]


@dataclass
class UnOp(Expr):
    """Unary scalar operation: neg, lnot."""

    op: str = "neg"
    operand: Expr = None

    def children(self) -> list[Expr]:
        return [self.operand]


@dataclass
class MathCall(Expr):
    """Call to a math-library scalar function.

    name is one of: abs sqrt exp log sin cos tan atan atan2 hypot floor
    ceil round fix sign mod rem pow conj real imag arg
    """

    name: str = ""
    args: list[Expr] = field(default_factory=list)

    def children(self) -> list[Expr]:
        return list(self.args)


@dataclass
class Cast(Expr):
    """Numeric conversion to ``type``."""

    operand: Expr = None

    def children(self) -> list[Expr]:
        return [self.operand]


@dataclass
class MakeComplex(Expr):
    """Build a complex scalar from real and imaginary parts."""

    real: Expr = None
    imag: Expr = None

    def children(self) -> list[Expr]:
        return [self.real, self.imag]


@dataclass
class Load(Expr):
    """Element load ``array[index]`` with a 0-based linear index."""

    array: str = ""
    index: Expr = None

    def children(self) -> list[Expr]:
        return [self.index]


# -- vector expressions (introduced by the vectorizer) -------------------


@dataclass
class VecLoad(Expr):
    """Contiguous vector load of ``type.lanes`` elements at linear base.

    ``instruction`` is the target's matched vload custom instruction;
    the C backend prints its intrinsic, the simulator charges its cost.
    When ``reverse`` is set the lanes come out in descending address
    order: lane i holds element ``base + lanes-1-i`` (vloadr).
    """

    array: str = ""
    base: Expr = None  # linear element offset of the lowest-address lane
    instruction: "Instruction" = None
    reverse: bool = False

    def children(self) -> list[Expr]:
        return [self.base]


@dataclass
class VecSplat(Expr):
    """Broadcast a scalar into all lanes."""

    operand: Expr = None

    def children(self) -> list[Expr]:
        return [self.operand]


@dataclass
class IntrinsicCall(Expr):
    """Invocation of a target-specific custom instruction.

    The backend prints it as a call to the instruction's intrinsic
    function; the simulator executes its semantics and charges its
    cycle cost.  ``type`` may be a VectorType, ScalarType, or the
    void-like ScalarType for pure-store intrinsics.
    """

    instruction: "Instruction" = None
    args: list[Expr] = field(default_factory=list)

    def children(self) -> list[Expr]:
        return list(self.args)


def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        if child is not None:
            yield from walk_expr(child)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class of IR statements."""

    #: 1-based MATLAB source line the statement was lowered from
    #: (0 = compiler-generated / unknown).  Deliberately a plain class
    #: attribute, not a dataclass field: every subclass is constructed
    #: positionally, and the line is attached after construction by the
    #: lowerer (copy.deepcopy and pickle preserve it via __dict__).
    line = 0

    def substatements(self) -> list[list["Stmt"]]:
        """Nested statement lists (for generic traversal)."""
        return []


@dataclass
class AssignVar(Stmt):
    """``name = value`` for a scalar or vector virtual register."""

    name: str = ""
    value: Expr = None


@dataclass
class Store(Stmt):
    """``array[index] = value`` with a 0-based linear index."""

    array: str = ""
    index: Expr = None
    value: Expr = None


@dataclass
class VecStore(Stmt):
    """Contiguous vector store of ``value.type.lanes`` elements."""

    array: str = ""
    base: Expr = None
    value: Expr = None
    instruction: "Instruction" = None


@dataclass
class IntrinsicStmt(Stmt):
    """A custom instruction invoked for effect (e.g. a streaming store)."""

    call: IntrinsicCall = None


@dataclass
class ForRange(Stmt):
    """``for (var = start; var < stop; var += step) body`` over i32 var.

    ``step`` is a non-zero compile-time int; a negative step flips the
    continuation test to ``var > stop``.  The trip count may be a
    runtime expression.  MATLAB loops are normalized to this 0-based,
    exclusive-stop form during lowering.
    """

    var: str = ""
    start: Expr = None
    stop: Expr = None
    step: int = 1
    body: list[Stmt] = field(default_factory=list)

    def substatements(self) -> list[list[Stmt]]:
        return [self.body]


@dataclass
class While(Stmt):
    condition: Expr = None
    body: list[Stmt] = field(default_factory=list)

    def substatements(self) -> list[list[Stmt]]:
        return [self.body]


@dataclass
class If(Stmt):
    condition: Expr = None
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)

    def substatements(self) -> list[list[Stmt]]:
        return [self.then_body, self.else_body]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    """Early return; outputs are always written through out-parameters."""


@dataclass
class Call(Stmt):
    """Call of another IR function.

    Array arguments are passed by name (pointer); scalar results are
    written into the named result variables, array results into the
    named arrays.
    """

    callee: str = ""
    args: list[Expr | str] = field(default_factory=list)   # str = array name
    results: list[str] = field(default_factory=list)        # var/array names


@dataclass
class Emit(Stmt):
    """An I/O side effect (disp/fprintf): printf-style format + args."""

    format: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class CopyArray(Stmt):
    """Whole-array copy ``dst[:] = src[:]`` (same element count)."""

    dst: str = ""
    src: str = ""


# ----------------------------------------------------------------------
# Functions and modules
# ----------------------------------------------------------------------


@dataclass
class Param:
    """One function parameter; arrays are pointers, outputs writable."""

    name: str
    type: IRType
    is_output: bool = False


@dataclass
class IRFunction:
    """One lowered function: parameters, typed locals, structured body.

    Calling convention: ``params`` are the inputs in source order;
    ``outputs`` are the MATLAB return values in order.  Array outputs
    are caller-allocated buffers written in place; scalar outputs are
    ordinary locals that the C backend writes back through pointer
    out-parameters.  Array outputs do not appear in ``locals``.
    """

    name: str
    params: list[Param] = field(default_factory=list)
    outputs: list[Param] = field(default_factory=list)
    locals: dict[str, IRType] = field(default_factory=dict)
    body: list[Stmt] = field(default_factory=list)
    source_name: str = ""

    def local_type(self, name: str) -> IRType | None:
        for param in self.params:
            if param.name == name:
                return param.type
        for param in self.outputs:
            if param.name == name:
                return param.type
        return self.locals.get(name)

    def declare(self, name: str, ir_type: IRType) -> None:
        self.locals[name] = ir_type

    def array_names(self) -> list[str]:
        names = [p.name for p in self.params if isinstance(p.type, ArrayType)]
        names.extend(p.name for p in self.outputs if isinstance(p.type, ArrayType))
        names.extend(n for n, t in self.locals.items() if isinstance(t, ArrayType))
        return names


@dataclass
class IRModule:
    """A compilation unit: all specialized functions, entry last."""

    functions: list[IRFunction] = field(default_factory=list)
    entry: str = ""

    def function(self, name: str) -> IRFunction | None:
        for func in self.functions:
            if func.name == name:
                return func
        return None

    @property
    def entry_function(self) -> IRFunction:
        func = self.function(self.entry)
        if func is None:
            raise KeyError(f"entry function {self.entry!r} not in module")
        return func


def walk_statements(body: list[Stmt]) -> Iterator[Stmt]:
    """Pre-order traversal of a statement tree."""
    for stmt in body:
        yield stmt
        for sub in stmt.substatements():
            yield from walk_statements(sub)


def walk_expressions(body: list[Stmt]) -> Iterator[Expr]:
    """All expressions appearing in a statement tree."""
    for stmt in walk_statements(body):
        for expr in statement_exprs(stmt):
            yield from walk_expr(expr)


def statement_exprs(stmt: Stmt) -> list[Expr]:
    """Top-level expressions directly owned by one statement."""
    if isinstance(stmt, AssignVar):
        return [stmt.value]
    if isinstance(stmt, Store):
        return [stmt.index, stmt.value]
    if isinstance(stmt, VecStore):
        return [stmt.base, stmt.value]
    if isinstance(stmt, IntrinsicStmt):
        return [stmt.call]
    if isinstance(stmt, ForRange):
        return [stmt.start, stmt.stop]
    if isinstance(stmt, (While, If)):
        return [stmt.condition]
    if isinstance(stmt, Call):
        return [a for a in stmt.args if isinstance(a, Expr)]
    if isinstance(stmt, Emit):
        return list(stmt.args)
    return []
