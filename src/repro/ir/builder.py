"""AST-to-IR lowering.

Turns a type-inferred :class:`~repro.semantics.inference.SpecializedProgram`
into an :class:`~repro.ir.nodes.IRModule`: every matrix operation becomes
an explicit loop nest over statically-shaped column-major arrays, indices
become 0-based linear offsets, and MATLAB's 1-based ``for`` loops become
canonical counted loops.

Two lowering modes exist, selected by ``mode``:

* ``"fused"`` (the proposed compiler): element-wise expression trees are
  scalarized into a *single* loop whose body evaluates the whole tree,
  with loop-invariant scalar subexpressions hoisted in front.
* ``"naive"`` (the MATLAB-Coder-style baseline): every element-wise
  operation materializes its own temporary array with its own loop —
  the shape of code a retail MATLAB-to-C translator produces when it
  knows nothing about the target.

Both modes share all other lowering rules, so measured differences
between the two pipelines isolate the paper's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LoweringError, UnsupportedFeatureError
from repro.frontend import ast_nodes as ast
from repro.ir import nodes as ir
from repro.ir.types import (
    ArrayType,
    I32,
    IRType,
    ScalarKind,
    ScalarType,
    from_mtype,
    scalar_from_mtype,
)
from repro.semantics.builtins import lookup as lookup_builtin
from repro.semantics.inference import SpecializedFunction, SpecializedProgram
from repro.semantics.types import DType, MType

#: C keywords that must not collide with lowered variable names.
_C_RESERVED = frozenset(
    """auto break case char const continue default do double else enum extern
    float for goto if inline int long register restrict return short signed
    sizeof static struct switch typedef union unsigned void volatile while
    main""".split()
)

_ELEMENTWISE_BINOPS = {
    "+": "add", "-": "sub", ".*": "mul", "./": "div", ".\\": "div",
    ".^": "pow", "==": "eq", "~=": "ne", "<": "lt", "<=": "le",
    ">": "gt", ">=": "ge", "&": "land", "|": "lor",
}

#: Builtins scalarizable inside a fused element-wise loop.
_ELEMENTWISE_MATH = frozenset(
    "abs sqrt exp log sin cos tan atan floor ceil round fix sign conj "
    "real imag angle".split()
)

_CAST_BUILTINS = frozenset("double single int8 int16 int32 logical".split())


def lower_program(sprog: SpecializedProgram, mode: str = "fused") -> ir.IRModule:
    """Lower all specializations; entry function is lowered last."""
    if mode not in ("fused", "naive"):
        raise ValueError(f"unknown lowering mode {mode!r}")
    module = ir.IRModule()
    for spec in sprog.in_call_order():
        lowerer = _FunctionLowerer(sprog, spec, mode)
        module.functions.append(lowerer.lower())
    module.entry = _mangle(sprog.entry.mangled_name)
    return module


def _is_integer_const(value) -> bool:
    """Is ``value`` a compile-time constant with an exact integer value?"""
    if value is None or isinstance(value, (complex, str)):
        return False
    try:
        return float(value) == int(float(value))
    except (TypeError, ValueError, OverflowError):
        return False


def _mangle(name: str) -> str:
    """A C-safe symbol for a specialization key."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sym = "".join(out)
    if sym in _C_RESERVED or sym[0].isdigit():
        sym = "m_" + sym
    return sym


@dataclass
class _LoopContext:
    break_allowed: bool = True


class _FunctionLowerer:
    """Lowers one specialized function to an IRFunction."""

    def __init__(self, sprog: SpecializedProgram, spec: SpecializedFunction,
                 mode: str):
        self.sprog = sprog
        self.spec = spec
        self.mode = mode
        self.fn = ir.IRFunction(name=_mangle(spec.mangled_name),
                                source_name=spec.func.name)
        self._blocks: list[list[ir.Stmt]] = []
        self._temp_counter = 0
        self._name_map: dict[str, str] = {}
        self._narrowed: set[str] = set()
        self._cur_line = 0

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def emit(self, stmt: ir.Stmt) -> None:
        if self._cur_line:
            # Tag the statement (and any nested statements built
            # wholesale, e.g. loop nests) with the MATLAB source line
            # currently being lowered; inner statements emitted earlier
            # already carry their own lines and are left alone.
            for sub in ir.walk_statements([stmt]):
                if sub.line == 0:
                    sub.line = self._cur_line
        self._blocks[-1].append(stmt)

    def push_block(self) -> list[ir.Stmt]:
        block: list[ir.Stmt] = []
        self._blocks.append(block)
        return block

    def pop_block(self) -> list[ir.Stmt]:
        block = self._blocks.pop()
        self._popped = block
        return block

    def _last_popped(self) -> list[ir.Stmt]:
        return self._popped or []

    def temp(self, prefix: str = "t") -> str:
        # The leading underscore keeps generated names out of the source
        # namespace: MATLAB identifiers must start with a letter, so no
        # user variable can ever collide with a compiler temporary.  (A
        # reduction counter named `k4` once shadowed a source loop
        # variable of the same name — found by the differential fuzzer.)
        self._temp_counter += 1
        return f"_{prefix}{self._temp_counter}"

    def fail(self, message: str, node: ast.Node) -> None:
        where = ""
        if self.sprog.source is not None:
            line, col = self.sprog.source.line_col(node.span.start)
            name = self.sprog.source.filename
            where = f"{name}:{line}:{col}: "
        raise LoweringError(where + message)

    def unsupported(self, message: str, node: ast.Node) -> None:
        where = ""
        if self.sprog.source is not None:
            line, col = self.sprog.source.line_col(node.span.start)
            where = f"{self.sprog.source.filename}:{line}:{col}: "
        raise UnsupportedFeatureError(where + message)

    def mtype_of(self, node: ast.Expr) -> MType:
        types = self.spec.node_types.get(id(node))
        if types is None:
            raise LoweringError(
                f"internal: no inferred type for {type(node).__name__} node")
        return types[0]

    def ir_name(self, matlab_name: str) -> str:
        name = self._name_map.get(matlab_name)
        if name is None:
            name = matlab_name if matlab_name not in _C_RESERVED else \
                matlab_name + "_"
            self._name_map[matlab_name] = name
        return name

    def var_ir_type(self, matlab_name: str) -> IRType:
        if matlab_name in self._narrowed:
            return I32
        symbol = self.spec.final_env.lookup(matlab_name)
        if symbol is None:
            raise LoweringError(f"internal: variable {matlab_name!r} missing "
                                "from final environment")
        return from_mtype(symbol.mtype, f"variable {matlab_name!r}")

    # ------------------------------------------------------------------
    # Function skeleton
    # ------------------------------------------------------------------

    def lower(self) -> ir.IRFunction:
        func = self.spec.func
        mutated = self._mutated_names(func.body)
        outputs = [name for name in func.returns if name != "~"]
        self._narrowed = self._int_loop_vars(func, mutated, outputs)

        # Inputs.
        copy_ins: list[tuple[str, str]] = []
        for param, mtype in zip(func.params, self.spec.arg_types):
            if param == "~":
                continue
            ir_type = from_mtype(mtype, f"parameter {param!r}")
            if isinstance(ir_type, ArrayType) and (
                    param in mutated or param in outputs):
                in_name = self.ir_name(param) + "__in"
                self.fn.params.append(ir.Param(in_name, ir_type))
                copy_ins.append((self.ir_name(param), in_name))
            else:
                self.fn.params.append(ir.Param(self.ir_name(param), ir_type))

        # Outputs.
        scalar_output_names: set[str] = set()
        for out, mtype in zip([n for n in func.returns if n != "~"],
                              self.spec.result_types):
            ir_type = from_mtype(mtype, f"output {out!r}")
            self.fn.outputs.append(
                ir.Param(self.ir_name(out), ir_type, is_output=True))
            if isinstance(ir_type, ScalarType):
                scalar_output_names.add(out)

        # Locals: everything in the final environment that is not an
        # input parameter or an array output.
        array_output_names = {p.name for p in self.fn.outputs
                              if isinstance(p.type, ArrayType)}
        param_names = {p.name for p in self.fn.params}
        for name in self.spec.final_env.names():
            symbol = self.spec.final_env.lookup(name)
            ir_name = self.ir_name(name)
            if ir_name in param_names or ir_name in array_output_names:
                continue
            if symbol.mtype.dtype is DType.CHAR:
                continue  # string literals never become real variables
            self.fn.declare(ir_name, self.var_ir_type(name))

        body = self.push_block()
        for local_name, in_name in copy_ins:
            self.emit(ir.CopyArray(dst=local_name, src=in_name))
        self.lower_body(func.body)
        self.pop_block()
        self.fn.body = body
        return self.fn

    def _int_loop_vars(self, func: ast.Function, mutated: set[str],
                       outputs: list[str]) -> set[str]:
        """Loop variables that can be narrowed to i32.

        A variable qualifies when its only definitions are integer-
        stepped ``for`` ranges with constant integer start/step, it is
        never assigned otherwise, and it is neither a parameter nor an
        output.  Narrowed loop variables index arrays without any
        float-to-int conversion in the hot loops.
        """
        candidates: dict[str, bool] = {}
        assigned: set[str] = set()
        for stmt in func.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign) and isinstance(
                        node.target, ast.Identifier):
                    assigned.add(node.target.name)
                elif isinstance(node, ast.MultiAssign):
                    for target in node.targets:
                        if isinstance(target, ast.Identifier):
                            assigned.add(target.name)
                elif isinstance(node, ast.For):
                    ok = False
                    rng = node.iterable
                    if isinstance(rng, ast.Range):
                        types = self.spec.node_types
                        start_t = types.get(id(rng.start), [None])[0]
                        step_ok = rng.step is None
                        if rng.step is not None:
                            step_t = types.get(id(rng.step), [None])[0]
                            step_ok = (step_t is not None and
                                       _is_integer_const(step_t.value))
                        ok = (start_t is not None and step_ok and
                              _is_integer_const(start_t.value))
                    previous = candidates.get(node.var, True)
                    candidates[node.var] = previous and ok
        excluded = assigned | set(func.params) | set(outputs)
        return {name for name, ok in candidates.items()
                if ok and name not in excluded}

    def _mutated_names(self, body: list[ast.Stmt]) -> set[str]:
        """MATLAB names assigned anywhere in the body."""
        mutated: set[str] = set()

        def visit_target(target: ast.Expr) -> None:
            if isinstance(target, ast.Identifier):
                mutated.add(target.name)
            elif isinstance(target, ast.CallIndex) and isinstance(
                    target.target, ast.Identifier):
                mutated.add(target.target.name)

        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    visit_target(node.target)
                elif isinstance(node, ast.MultiAssign):
                    for target in node.targets:
                        visit_target(target)
                elif isinstance(node, ast.For):
                    mutated.add(node.var)
        return mutated

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def lower_body(self, body: list[ast.Stmt]) -> None:
        for stmt in body:
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        prev_line = self._cur_line
        if self.sprog.source is not None:
            self._cur_line = \
                self.sprog.source.line_col(stmt.span.start)[0]
        method = getattr(self, "_stmt_" + type(stmt).__name__, None)
        if method is None:
            self.unsupported(
                f"cannot lower statement {type(stmt).__name__}", stmt)
        # Restore on exit so a compound handler (If/For/While) that
        # lowers a nested body sees its own line again when it emits
        # its outer statement, not the body's last line.
        try:
            method(stmt)
        finally:
            self._cur_line = prev_line

    def _stmt_ExprStmt(self, stmt: ast.ExprStmt) -> None:
        expr = stmt.expr
        if isinstance(expr, ast.CallIndex):
            kind = self.spec.call_kinds.get(id(expr))
            if kind == "call":
                self._emit_user_call(expr, result_names=None)
                return
            if kind == "builtin":
                name = expr.target.name
                builtin = lookup_builtin(name)
                if builtin is not None and builtin.kind == "io":
                    self._emit_io(name, expr)
                    return
        # Pure expression statement: evaluate for effect-free display;
        # nothing observable is generated.

    def _stmt_Assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.Identifier):
            self._assign_variable(target.name, stmt.value, stmt)
        elif isinstance(target, ast.CallIndex):
            self._assign_indexed(target, stmt.value)
        else:
            self.fail("invalid assignment target", stmt)

    def _assign_variable(self, name: str, value: ast.Expr,
                         stmt: ast.Stmt) -> None:
        var_type = self.var_ir_type(name)
        ir_name = self.ir_name(name)
        if isinstance(var_type, ArrayType):
            if self._aliases_unsafely(value, name):
                # The RHS reads the destination through a construct
                # that stores element-by-element in a different order
                # than it reads (matrix literal, transpose, region
                # read, matmul, call...).  MATLAB semantics evaluate
                # the whole RHS first; writing in place would let later
                # elements observe already-overwritten ones, so build
                # into a fresh temporary and copy.
                temp = self.temp("alias")
                self.fn.declare(temp, var_type)
                self._lower_array_into(value, temp, var_type)
                self.emit(ir.CopyArray(dst=ir_name, src=temp))
                return
            self._lower_array_into(value, ir_name, var_type)
        else:
            value_ir = self.lower_scalar(value)
            self.emit(ir.AssignVar(name=ir_name,
                                   value=self.coerce(value_ir, var_type)))

    def _aliases_unsafely(self, value: ast.Expr, name: str) -> bool:
        """True when assigning ``value`` directly into array ``name``
        could read elements the assignment has already overwritten.

        In-place lowering stays safe for the hot paths: a plain
        identifier copy, and element-wise trees (both fused and naive
        modes materialize array subtrees and hoist scalar reads before
        any store, and remaining reads of the destination are at the
        store index itself)."""
        if isinstance(value, ast.Identifier):
            return False
        if isinstance(value, ast.UnaryOp):
            return False
        if isinstance(value, ast.BinaryOp):
            is_matmul = value.op == "*" \
                and not self.mtype_of(value.left).is_scalar \
                and not self.mtype_of(value.right).is_scalar
            if not is_matmul:
                return False
        return self._reads_variable(value, name)

    def _reads_variable(self, node: object, name: str) -> bool:
        if isinstance(node, ast.Identifier):
            return node.name == name
        if isinstance(node, (list, tuple)):
            return any(self._reads_variable(item, name) for item in node)
        if hasattr(node, "__dataclass_fields__"):
            return any(
                self._reads_variable(getattr(node, field), name)
                for field in node.__dataclass_fields__ if field != "span")
        return False

    def _assign_indexed(self, target: ast.CallIndex, value: ast.Expr) -> None:
        array_name = target.target.name
        array_type = self.var_ir_type(array_name)
        if not isinstance(array_type, ArrayType):
            # y(1) = v on a 1x1 value: plain scalar assignment (inference
            # guaranteed the subscript selects the single element).
            value_ir = self.lower_scalar(value)
            self.emit(ir.AssignVar(name=self.ir_name(array_name),
                                   value=self.coerce(value_ir, array_type)))
            return
        ir_array = self.ir_name(array_name)
        region = self.mtype_of(target).shape
        if region.is_scalar and all(
                not isinstance(a, (ast.ColonAll, ast.Range)) and
                self.mtype_of(a).is_scalar
                for a in target.args):
            index = self._linear_index(target, array_type)
            value_ir = self.coerce(self.lower_scalar(value),
                                   ScalarType(array_type.elem.kind))
            self.emit(ir.Store(array=ir_array, index=index, value=value_ir))
            return
        self._store_region(target, ir_array, array_type, value)

    def _stmt_MultiAssign(self, stmt: ast.MultiAssign) -> None:
        value = stmt.value
        kind = self.spec.call_kinds.get(id(value))
        if kind == "call":
            names = self._target_result_names(stmt.targets)
            self._emit_user_call(value, result_names=names)
            return
        if kind == "builtin":
            name = value.target.name
            if name == "size":
                self._multi_size(stmt, value)
                return
            if name in ("min", "max"):
                self._multi_minmax(stmt, value, name)
                return
        self.unsupported(
            "multiple assignment is only supported from user functions, "
            "size(), min() and max()", stmt)

    def _target_result_names(self, targets: list[ast.Expr]) -> list[str]:
        names: list[str] = []
        for target in targets:
            if isinstance(target, ast.Identifier):
                if target.name == "~":
                    mtype = self.mtype_of(target)
                    tmp = self.temp("ignored")
                    self.fn.declare(tmp, from_mtype(mtype))
                    names.append(tmp)
                else:
                    names.append(self.ir_name(target.name))
            else:
                self.unsupported(
                    "indexed targets in multiple assignment are not "
                    "supported", target)
        return names

    def _multi_size(self, stmt: ast.MultiAssign, call: ast.CallIndex) -> None:
        arg_t = self.mtype_of(call.args[0])
        dims = [arg_t.shape.rows, arg_t.shape.cols]
        for target, dim in zip(stmt.targets, dims):
            if not isinstance(target, ast.Identifier) or target.name == "~":
                continue
            if dim is None:
                self.fail("size() of a statically unknown dimension", stmt)
            var_type = self.var_ir_type(target.name)
            self.emit(ir.AssignVar(
                name=self.ir_name(target.name),
                value=self.coerce(ir.Const(ScalarType(ScalarKind.F64),
                                           float(dim)), var_type)))

    def _multi_minmax(self, stmt: ast.MultiAssign, call: ast.CallIndex,
                      which: str) -> None:
        if len(call.args) != 1:
            self.unsupported(
                f"[v, i] = {which}() requires the single-argument form",
                stmt)
        arg = call.args[0]
        arg_t = self.mtype_of(arg)
        if not arg_t.is_vector or arg_t.is_scalar:
            self.unsupported(
                f"[v, i] = {which}() supports vectors only", stmt)
        src = self._materialize(arg)
        src_type = self._array_type_of(arg)
        elem = ScalarType(src_type.elem.kind)
        n = src_type.numel

        value_name = self._target_result_names([stmt.targets[0]])[0]
        index_name = (self._target_result_names([stmt.targets[1]])[0]
                      if len(stmt.targets) > 1 else None)
        best = self.temp("best")
        best_i = self.temp("besti")
        self.fn.declare(best, elem)
        self.fn.declare(best_i, I32)
        self.emit(ir.AssignVar(best, ir.Load(elem, array=src,
                                             index=ir.Const(I32, 0))))
        self.emit(ir.AssignVar(best_i, ir.Const(I32, 0)))
        k = self.temp("k")
        self.fn.declare(k, I32)
        body = self.push_block()
        current = ir.Load(elem, array=src, index=ir.VarRef(I32, k))
        op = "lt" if which == "min" else "gt"
        cond = ir.BinOp(ScalarType(ScalarKind.BOOL), op=op, left=current,
                        right=ir.VarRef(elem, best))
        then = [ir.AssignVar(best, current),
                ir.AssignVar(best_i, ir.VarRef(I32, k))]
        self.emit(ir.If(condition=cond, then_body=then, else_body=[]))
        self.pop_block()
        self.emit(ir.ForRange(var=k, start=ir.Const(I32, 1),
                              stop=ir.Const(I32, n), step=1, body=body))
        value_type = self.var_ir_type(stmt.targets[0].name) \
            if isinstance(stmt.targets[0], ast.Identifier) and \
            stmt.targets[0].name != "~" else elem
        self.emit(ir.AssignVar(value_name,
                               self.coerce(ir.VarRef(elem, best), value_type)))
        if index_name is not None:
            one_based = ir.BinOp(I32, op="add", left=ir.VarRef(I32, best_i),
                                 right=ir.Const(I32, 1))
            target1 = stmt.targets[1]
            index_type = self.var_ir_type(target1.name) \
                if isinstance(target1, ast.Identifier) and \
                target1.name != "~" else I32
            self.emit(ir.AssignVar(index_name,
                                   self.coerce(one_based, index_type)))

    def _stmt_If(self, stmt: ast.If) -> None:
        static = self.spec.static_branches.get(id(stmt))
        if static is not None:
            body = stmt.else_body if static == -1 else stmt.branches[static][1]
            self.lower_body(body)
            return
        self._lower_dynamic_if(stmt, 0)

    def _lower_dynamic_if(self, stmt: ast.If, index: int) -> None:
        cond_expr, body = stmt.branches[index]
        cond_t = self.mtype_of(cond_expr)
        if not cond_t.is_scalar:
            self.unsupported(
                "array-valued if conditions are not supported; reduce with "
                "a scalar test first", cond_expr)
        cond = self.as_bool(self.lower_scalar(cond_expr))
        then_block = self.push_block()
        self.lower_body(body)
        self.pop_block()
        else_block = self.push_block()
        if index + 1 < len(stmt.branches):
            self._lower_dynamic_if(stmt, index + 1)
        else:
            self.lower_body(stmt.else_body)
        self.pop_block()
        self.emit(ir.If(condition=cond, then_body=then_block,
                        else_body=else_block))

    def _stmt_While(self, stmt: ast.While) -> None:
        cond_t = self.mtype_of(stmt.condition)
        if not cond_t.is_scalar:
            self.unsupported("array-valued while conditions are not "
                             "supported", stmt.condition)
        # The condition expression tree is re-evaluated at every loop
        # head, so it must lower without emitting support statements
        # (array reductions etc. would land outside the loop).
        before = len(self._blocks[-1])
        cond = self.as_bool(self.lower_scalar(stmt.condition))
        if len(self._blocks[-1]) != before:
            self.unsupported(
                "while conditions may not contain array operations; "
                "compute the condition into a scalar variable instead",
                stmt.condition)
        body = self.push_block()
        self.lower_body(stmt.body)
        self.pop_block()
        self.emit(ir.While(condition=cond, body=body))

    def _stmt_For(self, stmt: ast.For) -> None:
        iterable = stmt.iterable
        var_name = self.ir_name(stmt.var)
        var_type = self.var_ir_type(stmt.var)
        if isinstance(iterable, ast.Range):
            self._lower_range_for(stmt, iterable, var_name, var_type)
            return
        iter_t = self.mtype_of(iterable)
        if iter_t.is_scalar:
            # for v = scalar runs once.
            value = self.lower_scalar(iterable)
            self.emit(ir.AssignVar(var_name, self.coerce(value, var_type)))
            body = self.push_block()
            self.lower_body(stmt.body)
            self.pop_block()
            for inner in body:
                self.emit(inner)
            return
        if not iter_t.is_vector:
            self.unsupported(
                "iterating over matrix columns is not supported; loop over "
                "an index range instead", iterable)
        src = self._materialize(iterable)
        src_type = self._array_type_of(iterable)
        counter = self.temp("it")
        self.fn.declare(counter, I32)
        body = self.push_block()
        elem = ScalarType(src_type.elem.kind)
        load = ir.Load(elem, array=src, index=ir.VarRef(I32, counter))
        self.emit(ir.AssignVar(var_name, self.coerce(load, var_type)))
        self.lower_body(stmt.body)
        self.pop_block()
        self.emit(ir.ForRange(var=counter, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, src_type.numel), step=1,
                              body=body))

    def _lower_range_for(self, stmt: ast.For, rng: ast.Range, var_name: str,
                         var_type: IRType) -> None:
        start_t = self.mtype_of(rng.start)
        step_t = self.mtype_of(rng.step) if rng.step is not None else None
        step_const = 1.0 if step_t is None else step_t.value

        def is_int_const(value) -> bool:
            return value is not None and not isinstance(value, complex) and \
                float(value) == int(float(value))

        if is_int_const(step_const) and int(float(step_const)) != 0 and (
                is_int_const(start_t.value) or start_t.dtype.is_integer):
            # Integer counted loop directly over the MATLAB values.
            step = int(float(step_const))
            start = self.as_i32(self.lower_scalar(rng.start))
            stop_raw = self.as_i32(self.lower_scalar(rng.stop))
            bump = 1 if step > 0 else -1
            if isinstance(stop_raw, ir.Const):
                stop: ir.Expr = ir.Const(I32, int(stop_raw.value) + bump)
            else:
                # MATLAB evaluates the range bound once; hoist it so the
                # loop body cannot perturb the trip count.
                stop = self._hoist_scalar_value(
                    ir.BinOp(I32, op="add", left=stop_raw,
                             right=ir.Const(I32, bump)), "hi")
            loop_var = var_name if isinstance(var_type, ScalarType) and \
                var_type.kind is ScalarKind.I32 else self.temp("i")
            if loop_var != var_name:
                self.fn.declare(loop_var, I32)
            body = self.push_block()
            if loop_var != var_name:
                self.emit(ir.AssignVar(
                    var_name,
                    self.coerce(ir.VarRef(I32, loop_var), var_type)))
            self.lower_body(stmt.body)
            self.pop_block()
            self.emit(ir.ForRange(var=loop_var, start=start, stop=stop,
                                  step=step, body=body))
            return

        # General (possibly fractional) range: iterate a 0-based counter.
        count = self.mtype_of(rng).shape.numel()
        counter = self.temp("it")
        self.fn.declare(counter, I32)
        start_v = self._hoist_scalar_value(self.lower_scalar(rng.start), "rs")
        step_expr = self.lower_scalar(rng.step) if rng.step is not None \
            else ir.Const(ScalarType(ScalarKind.F64), 1.0)
        step_v = self._hoist_scalar_value(step_expr, "rp")
        if count is None:
            # Runtime trip count: floor((stop - start)/step) + 1, hoisted
            # so the body cannot change the bound.
            stop_v = self._hoist_scalar_value(self.lower_scalar(rng.stop), "re")
            f64 = ScalarType(ScalarKind.F64)
            span = ir.BinOp(f64, op="sub", left=stop_v, right=start_v)
            ratio = ir.BinOp(f64, op="div", left=span, right=step_v)
            trips = ir.BinOp(I32, op="add",
                             left=self.as_i32(ir.MathCall(
                                 f64, name="floor", args=[ratio])),
                             right=ir.Const(I32, 1))
            count_expr: ir.Expr = self._hoist_scalar_value(trips, "hi")
        else:
            count_expr = ir.Const(I32, count)
        body = self.push_block()
        f64 = ScalarType(ScalarKind.F64)
        position = ir.BinOp(
            f64, op="add", left=start_v,
            right=ir.BinOp(f64, op="mul",
                           left=ir.Cast(f64, operand=ir.VarRef(I32, counter)),
                           right=step_v))
        self.emit(ir.AssignVar(var_name, self.coerce(position, var_type)))
        self.lower_body(stmt.body)
        self.pop_block()
        self.emit(ir.ForRange(var=counter, start=ir.Const(I32, 0),
                              stop=count_expr, step=1, body=body))

    def _stmt_Switch(self, stmt: ast.Switch) -> None:
        subject_t = self.mtype_of(stmt.subject)
        if not subject_t.is_scalar:
            self.unsupported("switch on non-scalar values is not supported",
                             stmt.subject)
        subject = self._hoist_scalar_value(self.lower_scalar(stmt.subject),
                                           "sw")

        def build(index: int) -> list[ir.Stmt]:
            if index >= len(stmt.cases):
                block = self.push_block()
                self.lower_body(stmt.otherwise)
                return self.pop_block()
            match, body = stmt.cases[index]
            match_t = self.mtype_of(match)
            if not match_t.is_scalar:
                self.unsupported("switch cases must be scalar", match)
            cond = ir.BinOp(ScalarType(ScalarKind.BOOL), op="eq",
                            left=subject, right=self.lower_scalar(match))
            then_block = self.push_block()
            self.lower_body(body)
            self.pop_block()
            return [ir.If(condition=cond, then_body=then_block,
                          else_body=build(index + 1))]

        for out in build(0):
            self.emit(out)

    def _stmt_Break(self, stmt: ast.Break) -> None:
        self.emit(ir.Break())

    def _stmt_Continue(self, stmt: ast.Continue) -> None:
        self.emit(ir.Continue())

    def _stmt_Return(self, stmt: ast.Return) -> None:
        self.emit(ir.Return())

    # ------------------------------------------------------------------
    # I/O builtins
    # ------------------------------------------------------------------

    def _emit_io(self, name: str, call: ast.CallIndex) -> None:
        if name == "disp":
            arg = call.args[0]
            arg_t = self.mtype_of(arg)
            if arg_t.dtype is DType.CHAR:
                if not isinstance(arg, ast.StringLit):
                    self.unsupported("disp() of computed strings is not "
                                     "supported", arg)
                self.emit(ir.Emit(format=arg.value + "\n", args=[]))
            elif arg_t.is_scalar:
                value = self.lower_scalar(arg)
                if arg_t.is_complex:
                    f64 = ScalarType(ScalarKind.F64)
                    self.emit(ir.Emit(format="%g%+gi\n", args=[
                        ir.MathCall(f64, name="real", args=[value]),
                        ir.MathCall(f64, name="imag", args=[value])]))
                else:
                    self.emit(ir.Emit(format="%g\n", args=[value]))
            else:
                src = self._materialize(arg)
                src_type = self._array_type_of(arg)
                elem = ScalarType(src_type.elem.kind)
                k = self.temp("k")
                self.fn.declare(k, I32)
                body = self.push_block()
                self.emit(ir.Emit(format="%g ", args=[
                    ir.Load(elem, array=src, index=ir.VarRef(I32, k))]))
                self.pop_block()
                self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                                      stop=ir.Const(I32, src_type.numel),
                                      step=1, body=body))
                self.emit(ir.Emit(format="\n", args=[]))
            return
        if name in ("fprintf", "error"):
            fmt_expr = call.args[0]
            if not isinstance(fmt_expr, ast.StringLit):
                self.unsupported(f"{name}() requires a literal format string",
                                 call)
            fmt = (fmt_expr.value.replace("\\n", "\n").replace("\\t", "\t")
                   .replace("%d", "%.0f").replace("%i", "%.0f"))
            args = []
            for arg in call.args[1:]:
                arg_t = self.mtype_of(arg)
                if not arg_t.is_scalar:
                    self.unsupported(f"{name}() arguments must be scalar",
                                     arg)
                value = self.lower_scalar(arg)
                f64 = ScalarType(ScalarKind.F64)
                if arg_t.is_complex:
                    value = ir.MathCall(f64, name="real", args=[value])
                elif not (isinstance(value.type, ScalarType)
                          and value.type.kind is ScalarKind.F64):
                    value = ir.Cast(f64, operand=value)
                args.append(value)
            if name == "error":
                fmt = "error: " + fmt + "\n"
            self.emit(ir.Emit(format=fmt, args=args))
            if name == "error":
                self.emit(ir.Return())
            return
        self.unsupported(f"builtin {name}() is not supported here", call)

    # ------------------------------------------------------------------
    # Scalar expression lowering
    # ------------------------------------------------------------------

    def lower_scalar(self, expr: ast.Expr) -> ir.Expr:
        """Lower a scalar-typed expression; may emit support statements."""
        method = getattr(self, "_scalar_" + type(expr).__name__, None)
        if method is None:
            self.unsupported(
                f"cannot lower expression {type(expr).__name__}", expr)
        return method(expr)

    def _scalar_NumberLit(self, expr: ast.NumberLit) -> ir.Expr:
        return ir.Const(ScalarType(ScalarKind.F64), float(expr.value))

    def _scalar_ImagLit(self, expr: ast.ImagLit) -> ir.Expr:
        return ir.Const(ScalarType(ScalarKind.C128), complex(0.0, expr.value))

    def _scalar_StringLit(self, expr: ast.StringLit) -> ir.Expr:
        self.unsupported("string values cannot be used as numbers", expr)

    def _scalar_Range(self, expr: ast.Range) -> ir.Expr:
        # A range can appear in scalar position only when it has exactly
        # one element (x(1:1)); its value is then the start.
        return self.lower_scalar(expr.start)

    def _scalar_EndMarker(self, expr: ast.EndMarker) -> ir.Expr:
        mtype = self.mtype_of(expr)
        if mtype.value is None:
            self.fail("'end' could not be resolved to a constant extent",
                      expr)
        return ir.Const(I32, int(float(mtype.value)))

    def _scalar_Identifier(self, expr: ast.Identifier) -> ir.Expr:
        symbol = self.spec.final_env.lookup(expr.name)
        if symbol is not None:
            ir_type = self.var_ir_type(expr.name)
            if isinstance(ir_type, ArrayType):
                self.fail(f"array {expr.name!r} used where a scalar is "
                          "required", expr)
            return self._match_point_type(
                ir.VarRef(ir_type, name=self.ir_name(expr.name)), expr)
        mtype = self.mtype_of(expr)
        if mtype.value is not None:
            return self._const_of(mtype)
        # Zero-argument function call written without parentheses; the
        # inferencer recorded the classification under the identifier.
        call = ast.CallIndex(span=expr.span, target=expr, args=[])
        target_key = self.spec.call_targets.get(id(expr))
        if target_key is not None:
            names = self._emit_user_call(call, result_names=None,
                                         target_key=target_key)
            result_type = self.fn.local_type(names[0])
            return ir.VarRef(result_type, name=names[0])
        return self._scalar_call(call, known_kind=None, record=expr)

    def _const_of(self, mtype: MType) -> ir.Expr:
        ir_type = scalar_from_mtype(mtype)
        value = mtype.value
        if isinstance(value, bool):
            value = bool(value)
        return ir.Const(ir_type, value)

    def _scalar_UnaryOp(self, expr: ast.UnaryOp) -> ir.Expr:
        operand = self.lower_scalar(expr.operand)
        result_t = scalar_from_mtype(self.mtype_of(expr))
        if expr.op == "+":
            return operand
        if expr.op == "-":
            return ir.UnOp(result_t, op="neg",
                           operand=self.coerce(operand, result_t))
        return ir.UnOp(result_t, op="lnot", operand=self.as_bool(operand))

    def _scalar_BinaryOp(self, expr: ast.BinaryOp) -> ir.Expr:
        result_t = scalar_from_mtype(self.mtype_of(expr))
        left = self.lower_scalar(expr.left)
        right = self.lower_scalar(expr.right)
        op = expr.op
        if op in ("&&", "&"):
            return ir.BinOp(result_t, op="land", left=self.as_bool(left),
                            right=self.as_bool(right))
        if op in ("||", "|"):
            return ir.BinOp(result_t, op="lor", left=self.as_bool(left),
                            right=self.as_bool(right))
        if op in ("==", "~=", "<", "<=", ">", ">="):
            operand_t = self._comparison_operand_type(left, right)
            return ir.BinOp(result_t, op=_ELEMENTWISE_BINOPS[op],
                            left=self.coerce(left, operand_t),
                            right=self.coerce(right, operand_t))
        ir_op = {"+": "add", "-": "sub", "*": "mul", ".*": "mul",
                 "/": "div", "./": "div", "^": "pow", ".^": "pow",
                 "\\": "div", ".\\": "div"}.get(op)
        if ir_op is None:
            self.unsupported(f"operator {op!r} is not supported on scalars",
                             expr)
        if op in ("\\", ".\\"):
            left, right = right, left
        return ir.BinOp(result_t, op=ir_op,
                        left=self.coerce(left, result_t),
                        right=self.coerce(right, result_t))

    def _comparison_operand_type(self, left: ir.Expr,
                                 right: ir.Expr) -> ScalarType:
        kinds = [left.type.kind, right.type.kind]
        if ScalarKind.C128 in kinds or ScalarKind.C64 in kinds:
            return ScalarType(ScalarKind.C128)
        if ScalarKind.F64 in kinds:
            return ScalarType(ScalarKind.F64)
        if ScalarKind.F32 in kinds:
            return ScalarType(ScalarKind.F32)
        if ScalarKind.I32 in kinds:
            return I32
        return ScalarType(ScalarKind.F64)

    def _scalar_Transpose(self, expr: ast.Transpose) -> ir.Expr:
        operand = self.lower_scalar(expr.operand)
        if expr.conjugate and operand.type.is_complex:
            return ir.MathCall(operand.type, name="conj", args=[operand])
        return operand

    def _scalar_CallIndex(self, expr: ast.CallIndex) -> ir.Expr:
        kind = self.spec.call_kinds.get(id(expr))
        return self._scalar_call(expr, known_kind=kind, record=expr)

    def _scalar_call(self, expr: ast.CallIndex, known_kind: str | None,
                     record: ast.Expr) -> ir.Expr:
        kind = known_kind or self.spec.call_kinds.get(id(expr))
        name = expr.target.name
        if kind == "index":
            return self._scalar_index_load(expr)
        if kind == "call" or (kind is None and
                              self.spec.call_targets.get(id(expr))):
            names = self._emit_user_call(expr, result_names=None)
            if not names:
                self.fail(f"function {name!r} returns no value", expr)
            result_type = self.fn.local_type(names[0])
            return ir.VarRef(result_type, name=names[0])
        builtin = lookup_builtin(name)
        if builtin is None:
            self.fail(f"internal: unresolved call to {name!r}", expr)
        return self._scalar_builtin(builtin, expr, record)

    def _scalar_index_load(self, expr: ast.CallIndex) -> ir.Expr:
        array_name = expr.target.name
        array_type = self.var_ir_type(array_name)
        if isinstance(array_type, ScalarType):
            # Indexing a scalar: x(1) or x(1,1) is the scalar itself.
            return self._match_point_type(
                ir.VarRef(array_type, name=self.ir_name(array_name)), expr)
        index = self._linear_index(expr, array_type)
        return self._match_point_type(
            ir.Load(ScalarType(array_type.elem.kind),
                    array=self.ir_name(array_name), index=index), expr)

    def _match_point_type(self, value: ir.Expr, node: ast.Expr) -> ir.Expr:
        """Demote a storage-typed read to its per-point inferred type.

        Storage is declared once with the *join* of every type a
        variable holds, so a variable that is complex anywhere has
        complex storage everywhere.  At program points where inference
        proved the value real, its imaginary component is zero and
        downstream lowering expects a real operand — extracting the
        real component is exact there.  (Found by the differential
        fuzzer: ``sign(v)`` before a branch that turns ``v`` complex
        received a complex operand and miscompiled.)
        """
        if not (isinstance(value.type, ScalarType)
                and value.type.is_complex):
            return value
        types = self.spec.node_types.get(id(node))
        if types is None or types[0].is_complex:
            return value
        comp = ScalarType(value.type.kind.real_kind)
        return ir.MathCall(comp, name="real", args=[value])

    def _linear_index(self, expr: ast.CallIndex,
                      array_type: ArrayType) -> ir.Expr:
        args = expr.args
        if len(args) == 1:
            sub = self.as_i32(self.lower_scalar(args[0]))
            return ir.BinOp(I32, op="sub", left=sub, right=ir.Const(I32, 1))
        row = self.as_i32(self.lower_scalar(args[0]))
        col = self.as_i32(self.lower_scalar(args[1]))
        row0 = ir.BinOp(I32, op="sub", left=row, right=ir.Const(I32, 1))
        col0 = ir.BinOp(I32, op="sub", left=col, right=ir.Const(I32, 1))
        return ir.BinOp(
            I32, op="add", left=row0,
            right=ir.BinOp(I32, op="mul", left=col0,
                           right=ir.Const(I32, array_type.rows)))

    # -- scalar builtins --------------------------------------------------

    def _scalar_builtin(self, builtin, expr: ast.CallIndex,
                        record: ast.Expr) -> ir.Expr:
        name = builtin.name
        result_mtype = self.mtype_of(record)
        result_t = scalar_from_mtype(result_mtype)

        if builtin.kind == "query":
            if result_mtype.value is None:
                self.fail(
                    f"{name}() could not be resolved at compile time",
                    expr)
            return self._const_of(result_mtype)

        if builtin.kind == "constructor":
            # zeros/ones/eye in scalar position.
            value = {"zeros": 0.0, "ones": 1.0, "eye": 1.0}.get(name)
            if value is None or (expr.args and result_mtype.is_scalar is False):
                self.fail(f"{name}() cannot be used as a scalar here", expr)
            return ir.Const(result_t, value)

        if builtin.kind == "cast":
            arg = self.lower_scalar(expr.args[0])
            return ir.Cast(result_t, operand=arg)

        if name == "complex":
            real = self.lower_scalar(expr.args[0])
            f64 = ScalarType(result_t.kind.real_kind)
            imag = self.lower_scalar(expr.args[1]) if len(expr.args) > 1 \
                else ir.Const(f64, 0.0)
            return ir.MakeComplex(result_t, real=self.coerce(real, f64),
                                  imag=self.coerce(imag, f64))

        if builtin.kind == "elemwise":
            arg = self.lower_scalar(expr.args[0])
            return self._math1(name, arg, result_t)

        if builtin.kind == "binary_elemwise":
            left = self.lower_scalar(expr.args[0])
            right = self.lower_scalar(expr.args[1])
            if name == "power":
                return ir.BinOp(result_t, op="pow",
                                left=self.coerce(left, result_t),
                                right=self.coerce(right, result_t))
            f64 = ScalarType(ScalarKind.F64)
            return ir.MathCall(result_t, name=name,
                               args=[self.coerce(left, f64),
                                     self.coerce(right, f64)])

        if builtin.kind == "minmax" and len(expr.args) == 2:
            left = self.lower_scalar(expr.args[0])
            right = self.lower_scalar(expr.args[1])
            return ir.BinOp(result_t, op="min" if name == "min" else "max",
                            left=self.coerce(left, result_t),
                            right=self.coerce(right, result_t))

        if builtin.kind in ("reduction", "minmax", "dot"):
            return self._scalar_reduction(name, expr, result_t)

        if builtin.kind == "norm":
            return self._lower_norm(expr, result_t)

        if builtin.kind in ("var", "std"):
            return self._lower_variance(expr, result_t,
                                        take_sqrt=builtin.kind == "std")

        if builtin.kind in ("any", "all"):
            return self._lower_any_all(expr, result_t, builtin.kind)

        if builtin.kind in ("sort", "cumsum"):
            # On a scalar (1x1) value these are the identity.
            return self.coerce(self.lower_scalar(expr.args[0]), result_t)

        self.unsupported(f"builtin {name}() is not supported in scalar "
                         "context", expr)

    def _lower_norm(self, expr: ast.CallIndex, result_t: ScalarType) -> ir.Expr:
        """2-norm of a vector: sqrt(sum |x_k|^2).

        For complex input the per-element term is written as
        re*re + im*im so the complex instruction selector can fuse it
        into a single cmag2 custom instruction.
        """
        arg = expr.args[0]
        arg_mtype = self.mtype_of(arg)
        if arg_mtype.is_scalar:
            value = self.lower_scalar(arg)
            return self._math1("abs", value, result_t)
        src = self._materialize(arg)
        src_type = self._array_type_of(arg)
        elem = ScalarType(src_type.elem.kind)
        acc = self.temp("acc")
        self.fn.declare(acc, result_t)
        k = self.temp("k")
        self.fn.declare(k, I32)
        self.emit(ir.AssignVar(acc, ir.Const(result_t, 0.0)))
        body = self.push_block()
        load = ir.Load(elem, array=src, index=ir.VarRef(I32, k))
        if elem.is_complex:
            comp = ScalarType(elem.kind.real_kind)
            re = ir.MathCall(comp, name="real", args=[load])
            im = ir.MathCall(comp, name="imag",
                             args=[ir.Load(elem, array=src,
                                           index=ir.VarRef(I32, k))])
            term: ir.Expr = ir.BinOp(
                comp, op="add",
                left=ir.BinOp(comp, op="mul", left=re,
                              right=ir.MathCall(comp, name="real",
                                                args=[ir.Load(
                                                    elem, array=src,
                                                    index=ir.VarRef(I32,
                                                                    k))])),
                right=ir.BinOp(comp, op="mul", left=im,
                               right=ir.MathCall(comp, name="imag",
                                                 args=[ir.Load(
                                                     elem, array=src,
                                                     index=ir.VarRef(
                                                         I32, k))])))
            term = self.coerce(term, result_t)
        else:
            value = self.coerce(load, result_t)
            term = ir.BinOp(result_t, op="mul", left=value,
                            right=self.coerce(
                                ir.Load(elem, array=src,
                                        index=ir.VarRef(I32, k)), result_t))
        self.emit(ir.AssignVar(acc, ir.BinOp(
            result_t, op="add", left=ir.VarRef(result_t, acc), right=term)))
        self.pop_block()
        self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, src_type.numel), step=1,
                              body=self._last_popped()))
        return ir.MathCall(result_t, name="sqrt",
                           args=[ir.VarRef(result_t, acc)])

    def _lower_variance(self, expr: ast.CallIndex, result_t: ScalarType,
                        take_sqrt: bool) -> ir.Expr:
        """Sample variance (MATLAB's default N-1 normalization)."""
        arg = expr.args[0]
        arg_mtype = self.mtype_of(arg)
        if arg_mtype.is_scalar:
            return ir.Const(result_t, 0.0)  # var of a scalar is 0
        src = self._materialize(arg)
        src_type = self._array_type_of(arg)
        elem = ScalarType(src_type.elem.kind)
        n = src_type.numel
        if n == 1:
            return ir.Const(result_t, 0.0)

        mu = self.temp("mu")
        acc = self.temp("acc")
        k = self.temp("k")
        self.fn.declare(mu, result_t)
        self.fn.declare(acc, result_t)
        self.fn.declare(k, I32)

        self.emit(ir.AssignVar(mu, ir.Const(result_t, 0.0)))
        body = self.push_block()
        load = self.coerce(ir.Load(elem, array=src,
                                   index=ir.VarRef(I32, k)), result_t)
        self.emit(ir.AssignVar(mu, ir.BinOp(result_t, op="add",
                                            left=ir.VarRef(result_t, mu),
                                            right=load)))
        self.pop_block()
        self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, n), step=1,
                              body=self._last_popped()))
        self.emit(ir.AssignVar(mu, ir.BinOp(
            result_t, op="mul", left=ir.VarRef(result_t, mu),
            right=ir.Const(result_t, 1.0 / n))))

        self.emit(ir.AssignVar(acc, ir.Const(result_t, 0.0)))
        body = self.push_block()
        delta = ir.BinOp(result_t, op="sub",
                         left=self.coerce(
                             ir.Load(elem, array=src,
                                     index=ir.VarRef(I32, k)), result_t),
                         right=ir.VarRef(result_t, mu))
        delta2 = ir.BinOp(
            result_t, op="sub",
            left=self.coerce(ir.Load(elem, array=src,
                                     index=ir.VarRef(I32, k)), result_t),
            right=ir.VarRef(result_t, mu))
        self.emit(ir.AssignVar(acc, ir.BinOp(
            result_t, op="add", left=ir.VarRef(result_t, acc),
            right=ir.BinOp(result_t, op="mul", left=delta, right=delta2))))
        self.pop_block()
        self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, n), step=1,
                              body=self._last_popped()))
        variance = ir.BinOp(result_t, op="mul",
                            left=ir.VarRef(result_t, acc),
                            right=ir.Const(result_t, 1.0 / (n - 1)))
        if take_sqrt:
            return ir.MathCall(result_t, name="sqrt", args=[variance])
        return variance

    def _lower_any_all(self, expr: ast.CallIndex, result_t: ScalarType,
                       which: str) -> ir.Expr:
        arg = expr.args[0]
        arg_mtype = self.mtype_of(arg)
        bool_t = ScalarType(ScalarKind.BOOL)
        if arg_mtype.is_scalar:
            return self.as_bool(self.lower_scalar(arg))
        src = self._materialize(arg)
        src_type = self._array_type_of(arg)
        elem = ScalarType(src_type.elem.kind)
        acc = self.temp("acc")
        k = self.temp("k")
        self.fn.declare(acc, bool_t)
        self.fn.declare(k, I32)
        self.emit(ir.AssignVar(acc, ir.Const(bool_t, which == "all")))
        body = self.push_block()
        load = ir.Load(elem, array=src, index=ir.VarRef(I32, k))
        nonzero = self.as_bool(load)
        op = "lor" if which == "any" else "land"
        self.emit(ir.AssignVar(acc, ir.BinOp(
            bool_t, op=op, left=ir.VarRef(bool_t, acc), right=nonzero)))
        self.pop_block()
        self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, src_type.numel), step=1,
                              body=self._last_popped()))
        return ir.VarRef(bool_t, acc)

    def _math1(self, name: str, arg: ir.Expr, result_t: ScalarType) -> ir.Expr:
        if name in ("real", "imag", "conj", "angle", "abs") and \
                arg.type.is_complex:
            mapped = {"angle": "arg"}.get(name, name)
            return ir.MathCall(result_t, name=mapped, args=[arg])
        if name == "real":
            return self.coerce(arg, result_t)
        if name == "imag":
            return ir.Const(result_t, 0.0)
        if name == "conj":
            return self.coerce(arg, result_t)
        if name == "angle":
            # angle(x) for real x: 0 or pi.
            f64 = ScalarType(ScalarKind.F64)
            return ir.MathCall(result_t, name="atan2",
                               args=[ir.Const(f64, 0.0),
                                     self.coerce(arg, f64)])
        operand = arg
        if not operand.type.is_complex and not operand.type.is_float:
            operand = ir.Cast(ScalarType(ScalarKind.F64), operand=operand)
        return ir.MathCall(result_t, name=name, args=[operand])

    def _scalar_reduction(self, name: str, expr: ast.CallIndex,
                          result_t: ScalarType) -> ir.Expr:
        arg = expr.args[0]
        arg_mtype = self.mtype_of(arg)
        if arg_mtype.is_scalar:
            value = self.lower_scalar(arg)
            if name == "dot" and len(expr.args) == 2:
                other = self.lower_scalar(expr.args[1])
                left = value
                if left.type.is_complex:
                    left = ir.MathCall(left.type, name="conj", args=[left])
                return ir.BinOp(result_t, op="mul",
                                left=self.coerce(left, result_t),
                                right=self.coerce(other, result_t))
            return self.coerce(value, result_t)

        src = self._materialize(arg)
        src_type = self._array_type_of(arg)
        elem = ScalarType(src_type.elem.kind)
        n = src_type.numel
        acc = self.temp("acc")
        acc_t = result_t
        self.fn.declare(acc, acc_t)
        k = self.temp("k")
        self.fn.declare(k, I32)

        if name in ("sum", "mean", "prod", "dot"):
            init = 1.0 if name == "prod" else 0.0
            self.emit(ir.AssignVar(acc, ir.Const(acc_t, init)))
            body = self.push_block()
            load = ir.Load(elem, array=src, index=ir.VarRef(I32, k))
            if name == "dot":
                other = self._materialize(expr.args[1])
                other_type = self._array_type_of(expr.args[1])
                lhs = load
                if elem.is_complex:
                    lhs = ir.MathCall(elem, name="conj", args=[lhs])
                rhs = ir.Load(ScalarType(other_type.elem.kind), array=other,
                              index=ir.VarRef(I32, k))
                term = ir.BinOp(acc_t, op="mul",
                                left=self.coerce(lhs, acc_t),
                                right=self.coerce(rhs, acc_t))
            else:
                term = self.coerce(load, acc_t)
            op = "mul" if name == "prod" else "add"
            self.emit(ir.AssignVar(acc, ir.BinOp(
                acc_t, op=op, left=ir.VarRef(acc_t, acc), right=term)))
            self.pop_block()
            self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                                  stop=ir.Const(I32, n), step=1,
                                  body=self._last_popped()))
            result: ir.Expr = ir.VarRef(acc_t, acc)
            if name == "mean":
                result = ir.BinOp(acc_t, op="mul", left=result,
                                  right=ir.Const(
                                      acc_t, self._one_over(n, acc_t)))
            return result

        if name in ("min", "max"):
            self.emit(ir.AssignVar(acc, self.coerce(
                ir.Load(elem, array=src, index=ir.Const(I32, 0)), acc_t)))
            body = self.push_block()
            load = self.coerce(ir.Load(elem, array=src,
                                       index=ir.VarRef(I32, k)), acc_t)
            self.emit(ir.AssignVar(acc, ir.BinOp(
                acc_t, op=name, left=ir.VarRef(acc_t, acc), right=load)))
            self.pop_block()
            self.emit(ir.ForRange(var=k, start=ir.Const(I32, 1),
                                  stop=ir.Const(I32, n), step=1,
                                  body=self._last_popped()))
            return ir.VarRef(acc_t, acc)

        self.unsupported(f"reduction {name}() is not supported", expr)

    def _one_over(self, n: int, acc_t: ScalarType):
        if acc_t.is_complex:
            return complex(1.0 / n, 0.0)
        return 1.0 / n

    _popped: list[ir.Stmt] | None = None

    # ------------------------------------------------------------------
    # Coercions
    # ------------------------------------------------------------------

    def coerce(self, expr: ir.Expr, target: IRType) -> ir.Expr:
        if not isinstance(target, ScalarType):
            raise LoweringError("internal: coerce target must be scalar")
        if isinstance(expr.type, ScalarType) and expr.type == target:
            return expr
        if isinstance(expr, ir.Const):
            return self._coerce_const(expr, target)
        return ir.Cast(target, operand=expr)

    def _coerce_const(self, expr: ir.Const, target: ScalarType) -> ir.Expr:
        value = expr.value
        kind = target.kind
        try:
            if kind.is_complex:
                return ir.Const(target, complex(value))
            if kind is ScalarKind.BOOL:
                return ir.Const(target, bool(value))
            if kind.is_integer:
                return ir.Const(target, int(value))
            return ir.Const(target, float(value))
        except TypeError:
            return ir.Cast(target, operand=expr)

    def as_i32(self, expr: ir.Expr) -> ir.Expr:
        if isinstance(expr.type, ScalarType) and \
                expr.type.kind is ScalarKind.I32:
            return expr
        if isinstance(expr, ir.Const) and not isinstance(expr.value, complex):
            return ir.Const(I32, int(float(expr.value)))
        if isinstance(expr, ir.Cast) and isinstance(expr.operand.type,
                                                    ScalarType) and \
                expr.operand.type.kind is ScalarKind.I32:
            return expr.operand
        return ir.Cast(I32, operand=expr)

    def as_bool(self, expr: ir.Expr) -> ir.Expr:
        if isinstance(expr.type, ScalarType) and \
                expr.type.kind is ScalarKind.BOOL:
            return expr
        zero = ir.Const(expr.type, 0)
        return ir.BinOp(ScalarType(ScalarKind.BOOL), op="ne", left=expr,
                        right=self._coerce_const(zero, expr.type)
                        if isinstance(zero, ir.Const) else zero)

    # ------------------------------------------------------------------
    # Array expression lowering
    # ------------------------------------------------------------------

    def _array_type_of(self, expr: ast.Expr) -> ArrayType:
        ir_type = from_mtype(self.mtype_of(expr))
        if not isinstance(ir_type, ArrayType):
            raise LoweringError("internal: expected an array-typed node")
        if isinstance(expr, ast.Identifier) and \
                self.spec.final_env.lookup(expr.name) is not None:
            # The C buffer is declared at the flow-merged type; a read
            # where the variable is currently real can still sit in
            # complex (or wider) storage because a later branch assigns
            # complex into it.  Loads must carry the storage element
            # type — consumers coerce to the flow type, which for
            # complex storage at a real program point takes the real
            # part (the imaginary part is zero there by construction).
            # The flow shape is kept: loop extents follow the value,
            # not the (maximal) buffer.
            stored = self.var_ir_type(expr.name)
            if isinstance(stored, ArrayType) and stored.elem != ir_type.elem:
                return ArrayType(stored.elem, ir_type.rows, ir_type.cols)
        return ir_type

    def _materialize(self, expr: ast.Expr) -> str:
        """Ensure ``expr``'s array value lives in a named array."""
        if isinstance(expr, ast.Identifier) and \
                self.spec.final_env.lookup(expr.name) is not None:
            return self.ir_name(expr.name)
        array_type = self._array_type_of(expr)
        name = self.temp("arr")
        self.fn.declare(name, array_type)
        self._lower_array_into(expr, name, array_type)
        return name

    def _lower_array_into(self, expr: ast.Expr, dest: str,
                          dest_type: ArrayType | None = None) -> None:
        if dest_type is None:
            declared = self.fn.local_type(dest)
            if not isinstance(declared, ArrayType):
                raise LoweringError(f"internal: {dest!r} is not an array")
            dest_type = declared

        value_mtype = self.mtype_of(expr)
        if value_mtype.is_scalar:
            # Scalar assigned to array variable: only legal when the
            # destination is 1x1 (checked by inference); fill it.
            value = self.coerce(self.lower_scalar(expr),
                                ScalarType(dest_type.elem.kind))
            self.emit(ir.Store(array=dest, index=ir.Const(I32, 0),
                               value=value))
            return

        if isinstance(expr, ast.Identifier):
            src = self.ir_name(expr.name)
            if src != dest:
                self._emit_array_copy(dest, dest_type, src,
                                      self._array_type_of(expr))
            return

        if isinstance(expr, ast.MatrixLit):
            self._lower_matrix_literal(expr, dest, dest_type)
            return

        if isinstance(expr, ast.Range):
            self._lower_range_fill(expr, dest, dest_type)
            return

        if isinstance(expr, ast.Transpose):
            self._lower_transpose(expr, dest, dest_type)
            return

        if isinstance(expr, ast.BinaryOp):
            if expr.op == "*" and not self.mtype_of(expr.left).is_scalar \
                    and not self.mtype_of(expr.right).is_scalar:
                self._lower_matmul(expr, dest, dest_type)
                return
            self._emit_elementwise(expr, dest, dest_type)
            return

        if isinstance(expr, ast.UnaryOp):
            self._emit_elementwise(expr, dest, dest_type)
            return

        if isinstance(expr, ast.CallIndex):
            kind = self.spec.call_kinds.get(id(expr))
            if kind == "index":
                self._lower_region_read(expr, dest, dest_type)
                return
            if kind == "call":
                self._emit_user_call(expr, result_names=[dest])
                return
            if kind == "builtin":
                self._lower_array_builtin(expr, dest, dest_type)
                return

        self.unsupported(
            f"cannot lower array expression {type(expr).__name__}", expr)

    def _emit_array_copy(self, dest: str, dest_type: ArrayType, src: str,
                         src_type: ArrayType) -> None:
        if dest_type.numel != src_type.numel:
            raise LoweringError(
                f"internal: array copy size mismatch {dest_type.numel} vs "
                f"{src_type.numel}")
        if dest_type.elem == src_type.elem:
            self.emit(ir.CopyArray(dst=dest, src=src))
            return
        k = self.temp("k")
        self.fn.declare(k, I32)
        body = self.push_block()
        load = ir.Load(ScalarType(src_type.elem.kind), array=src,
                       index=ir.VarRef(I32, k))
        self.emit(ir.Store(array=dest, index=ir.VarRef(I32, k),
                           value=self.coerce(load,
                                             ScalarType(dest_type.elem.kind))))
        self.pop_block()
        self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, dest_type.numel), step=1,
                              body=self._last_popped()))

    # -- element-wise fusion ------------------------------------------------

    def _emit_elementwise(self, expr: ast.Expr, dest: str,
                          dest_type: ArrayType) -> None:
        if self.mode == "naive":
            self._emit_elementwise_naive(expr, dest, dest_type)
            return
        hoisted: dict[int, ir.Expr] = {}
        self._hoist_scalars(expr, hoisted)
        k = self.temp("k")
        self.fn.declare(k, I32)
        body = self.push_block()
        value = self._scalarize(expr, ir.VarRef(I32, k), hoisted)
        self.emit(ir.Store(array=dest, index=ir.VarRef(I32, k),
                           value=self.coerce(value,
                                             ScalarType(dest_type.elem.kind))))
        self.pop_block()
        self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, dest_type.numel), step=1,
                              body=self._last_popped()))

    def _hoist_scalars(self, expr: ast.Expr, hoisted: dict[int, ir.Expr]) -> None:
        """Pre-compute maximal scalar subtrees before the fused loop."""
        if self.mtype_of(expr).is_scalar:
            value = self.lower_scalar(expr)
            hoisted[id(expr)] = self._hoist_scalar_value(value, "h")
            return
        if isinstance(expr, ast.BinaryOp):
            self._hoist_scalars(expr.left, hoisted)
            self._hoist_scalars(expr.right, hoisted)
        elif isinstance(expr, ast.UnaryOp):
            self._hoist_scalars(expr.operand, hoisted)
        elif isinstance(expr, ast.Transpose):
            self._hoist_scalars(expr.operand, hoisted)
        elif isinstance(expr, ast.CallIndex):
            kind = self.spec.call_kinds.get(id(expr))
            name = expr.target.name if isinstance(expr.target,
                                                  ast.Identifier) else ""
            if kind == "builtin" and (name in _ELEMENTWISE_MATH or
                                      name in _CAST_BUILTINS or
                                      name == "complex"):
                for arg in expr.args:
                    self._hoist_scalars(arg, hoisted)
            # Other array-producing nodes are materialized whole, so
            # their internals need no hoisting here.

    def _hoist_scalar_value(self, value: ir.Expr, prefix: str) -> ir.Expr:
        if isinstance(value, (ir.Const, ir.VarRef)):
            return value
        name = self.temp(prefix)
        self.fn.declare(name, value.type)
        self.emit(ir.AssignVar(name, value))
        return ir.VarRef(value.type, name)

    def _scalarize(self, expr: ast.Expr, k: ir.Expr,
                   hoisted: dict[int, ir.Expr]) -> ir.Expr:
        """Per-element value of ``expr`` at linear position ``k``."""
        pre = hoisted.get(id(expr))
        if pre is not None:
            return pre
        if self.mtype_of(expr).is_scalar:
            # A scalar subtree not pre-hoisted (naive path).
            return self.lower_scalar(expr)

        if isinstance(expr, ast.Identifier):
            array_type = self._array_type_of(expr)
            return ir.Load(ScalarType(array_type.elem.kind),
                           array=self.ir_name(expr.name), index=k)

        if isinstance(expr, ast.BinaryOp):
            op = expr.op
            mapped = _ELEMENTWISE_BINOPS.get(op)
            if mapped is None and op in ("*", "/", "\\", "^"):
                left_scalar = self.mtype_of(expr.left).is_scalar
                right_scalar = self.mtype_of(expr.right).is_scalar
                if op == "*" and (left_scalar or right_scalar):
                    mapped = "mul"
                elif op == "/" and right_scalar:
                    mapped = "div"
                elif op == "\\" and left_scalar:
                    mapped = "div"
                elif op == "^" and (left_scalar or right_scalar):
                    mapped = "pow"
            if mapped is None:
                # Matrix product inside an element-wise tree: materialize.
                return self._scalarize_via_temp(expr, k)
            result_t = scalar_from_mtype(self.mtype_of(expr).element_type())
            left = self._scalarize(expr.left, k, hoisted)
            right = self._scalarize(expr.right, k, hoisted)
            if expr.op in ("\\", ".\\"):
                left, right = right, left
            if mapped in ("eq", "ne", "lt", "le", "gt", "ge"):
                operand_t = self._comparison_operand_type(left, right)
                return ir.BinOp(result_t, op=mapped,
                                left=self.coerce(left, operand_t),
                                right=self.coerce(right, operand_t))
            if mapped in ("land", "lor"):
                return ir.BinOp(result_t, op=mapped,
                                left=self.as_bool(left),
                                right=self.as_bool(right))
            return ir.BinOp(result_t, op=mapped,
                            left=self.coerce(left, result_t),
                            right=self.coerce(right, result_t))

        if isinstance(expr, ast.UnaryOp):
            result_t = scalar_from_mtype(self.mtype_of(expr).element_type())
            operand = self._scalarize(expr.operand, k, hoisted)
            if expr.op == "+":
                return operand
            if expr.op == "-":
                return ir.UnOp(result_t, op="neg",
                               operand=self.coerce(operand, result_t))
            return ir.UnOp(result_t, op="lnot", operand=self.as_bool(operand))

        if isinstance(expr, ast.Transpose):
            operand_mtype = self.mtype_of(expr.operand)
            if operand_mtype.is_vector:
                value = self._scalarize(expr.operand, k, hoisted)
                if expr.conjugate and value.type.is_complex:
                    return ir.MathCall(value.type, name="conj", args=[value])
                return value
            return self._scalarize_via_temp(expr, k)

        if isinstance(expr, ast.CallIndex):
            kind = self.spec.call_kinds.get(id(expr))
            name = expr.target.name if isinstance(expr.target,
                                                  ast.Identifier) else ""
            if kind == "builtin":
                result_t = scalar_from_mtype(
                    self.mtype_of(expr).element_type())
                if name in _ELEMENTWISE_MATH:
                    arg = self._scalarize(expr.args[0], k, hoisted)
                    return self._math1(name, arg, result_t)
                if name in _CAST_BUILTINS:
                    arg = self._scalarize(expr.args[0], k, hoisted)
                    return ir.Cast(result_t, operand=arg)
                if name == "complex":
                    real = self._scalarize(expr.args[0], k, hoisted)
                    comp = ScalarType(result_t.kind.real_kind)
                    if len(expr.args) > 1:
                        imag = self._scalarize(expr.args[1], k, hoisted)
                    else:
                        imag = ir.Const(comp, 0.0)
                    return ir.MakeComplex(result_t,
                                          real=self.coerce(real, comp),
                                          imag=self.coerce(imag, comp))
                if name in ("mod", "rem", "atan2", "hypot", "power", "min",
                            "max") and len(expr.args) == 2:
                    left = self._scalarize(expr.args[0], k, hoisted)
                    right = self._scalarize(expr.args[1], k, hoisted)
                    if name in ("min", "max"):
                        return ir.BinOp(result_t, op=name,
                                        left=self.coerce(left, result_t),
                                        right=self.coerce(right, result_t))
                    if name == "power":
                        return ir.BinOp(result_t, op="pow",
                                        left=self.coerce(left, result_t),
                                        right=self.coerce(right, result_t))
                    f64 = ScalarType(ScalarKind.F64)
                    return ir.MathCall(result_t, name=name,
                                       args=[self.coerce(left, f64),
                                             self.coerce(right, f64)])
            if kind == "index":
                shifted = self._affine_region_index(expr, k)
                if shifted is not None:
                    array_type = self.var_ir_type(expr.target.name)
                    return ir.Load(ScalarType(array_type.elem.kind),
                                   array=self.ir_name(expr.target.name),
                                   index=shifted)
            return self._scalarize_via_temp(expr, k)

        return self._scalarize_via_temp(expr, k)

    def _affine_region_index(self, expr: ast.CallIndex,
                             k: ir.Expr) -> ir.Expr | None:
        """Map fused-loop position k through a simple slice x(a:b)/x(:).

        Returns a linear index expression into the *source* array when
        the subscript is a whole-array colon or a unit-step range with a
        constant start; None otherwise (caller materializes).
        """
        if len(expr.args) != 1:
            return None
        arg = expr.args[0]
        if isinstance(arg, ast.ColonAll):
            return k
        if isinstance(arg, ast.Range):
            start_t = self.mtype_of(arg.start)
            step_value = 1.0
            if arg.step is not None:
                step_t = self.mtype_of(arg.step)
                if step_t.value is None:
                    return None
                step_value = float(step_t.value)
            if step_value != 1.0 or start_t.value is None or \
                    isinstance(start_t.value, complex):
                return None
            offset = int(float(start_t.value)) - 1
            if offset == 0:
                return k
            return ir.BinOp(I32, op="add", left=k,
                            right=ir.Const(I32, offset))
        return None

    def _scalarize_via_temp(self, expr: ast.Expr, k: ir.Expr) -> ir.Expr:
        # Materialization must happen *before* the loop we are inside of;
        # since blocks nest, emit into the enclosing block.
        inner = self._blocks.pop()
        try:
            name = self._materialize(expr)
        finally:
            self._blocks.append(inner)
        array_type = self.fn.local_type(name)
        return ir.Load(ScalarType(array_type.elem.kind), array=name, index=k)

    def _emit_elementwise_naive(self, expr: ast.Expr, dest: str,
                                dest_type: ArrayType) -> None:
        """Baseline lowering: one temporary + one loop per operation."""
        operands: list[ir.Expr | str] = []

        def operand_of(node: ast.Expr) -> tuple[str | None, ir.Expr | None]:
            if self.mtype_of(node).is_scalar:
                return None, self._hoist_scalar_value(
                    self.lower_scalar(node), "h")
            return self._materialize(node), None

        if isinstance(expr, ast.BinaryOp):
            left_name, left_scalar = operand_of(expr.left)
            right_name, right_scalar = operand_of(expr.right)
            k = self.temp("k")
            self.fn.declare(k, I32)
            body = self.push_block()
            kvar = ir.VarRef(I32, k)

            def side(name, scalar, node):
                if name is not None:
                    at = self.fn.local_type(name)
                    return ir.Load(ScalarType(at.elem.kind), array=name,
                                   index=kvar)
                return scalar

            result_t = scalar_from_mtype(self.mtype_of(expr).element_type())
            left = side(left_name, left_scalar, expr.left)
            right = side(right_name, right_scalar, expr.right)
            op = expr.op
            mapped = _ELEMENTWISE_BINOPS.get(op)
            if mapped is None:
                mapped = {"*": "mul", "/": "div", "\\": "div",
                          "^": "pow"}.get(op, "add")
            if op in ("\\", ".\\"):
                left, right = right, left
            if mapped in ("eq", "ne", "lt", "le", "gt", "ge"):
                operand_t = self._comparison_operand_type(left, right)
                value: ir.Expr = ir.BinOp(result_t, op=mapped,
                                          left=self.coerce(left, operand_t),
                                          right=self.coerce(right, operand_t))
            elif mapped in ("land", "lor"):
                value = ir.BinOp(result_t, op=mapped,
                                 left=self.as_bool(left),
                                 right=self.as_bool(right))
            else:
                value = ir.BinOp(result_t, op=mapped,
                                 left=self.coerce(left, result_t),
                                 right=self.coerce(right, result_t))
            self.emit(ir.Store(array=dest, index=kvar,
                               value=self.coerce(
                                   value, ScalarType(dest_type.elem.kind))))
            self.pop_block()
            self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                                  stop=ir.Const(I32, dest_type.numel),
                                  step=1, body=self._last_popped()))
            return

        if isinstance(expr, ast.UnaryOp):
            src_name, src_scalar = operand_of(expr.operand)
            k = self.temp("k")
            self.fn.declare(k, I32)
            body = self.push_block()
            kvar = ir.VarRef(I32, k)
            result_t = scalar_from_mtype(self.mtype_of(expr).element_type())
            if src_name is not None:
                at = self.fn.local_type(src_name)
                operand = ir.Load(ScalarType(at.elem.kind), array=src_name,
                                  index=kvar)
            else:
                operand = src_scalar
            if expr.op == "-":
                value = ir.UnOp(result_t, op="neg",
                                operand=self.coerce(operand, result_t))
            elif expr.op == "~":
                value = ir.UnOp(result_t, op="lnot",
                                operand=self.as_bool(operand))
            else:
                value = self.coerce(operand, result_t)
            self.emit(ir.Store(array=dest, index=kvar,
                               value=self.coerce(
                                   value, ScalarType(dest_type.elem.kind))))
            self.pop_block()
            self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                                  stop=ir.Const(I32, dest_type.numel),
                                  step=1, body=self._last_popped()))
            return

        # Anything else falls back to the fused scalarizer (still one
        # loop, but the baseline only reaches here for builtins).
        hoisted: dict[int, ir.Expr] = {}
        self._hoist_scalars(expr, hoisted)
        k = self.temp("k")
        self.fn.declare(k, I32)
        body = self.push_block()
        value = self._scalarize(expr, ir.VarRef(I32, k), hoisted)
        self.emit(ir.Store(array=dest, index=ir.VarRef(I32, k),
                           value=self.coerce(
                               value, ScalarType(dest_type.elem.kind))))
        self.pop_block()
        self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, dest_type.numel), step=1,
                              body=self._last_popped()))

    # -- specific array forms ----------------------------------------------

    def _lower_matrix_literal(self, expr: ast.MatrixLit, dest: str,
                              dest_type: ArrayType) -> None:
        dest_elem = ScalarType(dest_type.elem.kind)
        all_scalars = all(self.mtype_of(e).is_scalar
                          for row in expr.rows for e in row)
        if all_scalars:
            for r, row in enumerate(expr.rows):
                for c, element in enumerate(row):
                    value = self.coerce(self.lower_scalar(element), dest_elem)
                    index = r + c * dest_type.rows
                    self.emit(ir.Store(array=dest,
                                       index=ir.Const(I32, index),
                                       value=value))
            return
        # General concatenation: copy blocks into their offsets.
        row_offset = 0
        for row in expr.rows:
            col_offset = 0
            row_height = None
            for element in row:
                shape = self.mtype_of(element).shape
                er, ec = shape.rows, shape.cols
                row_height = er if row_height is None else row_height
                if self.mtype_of(element).is_scalar:
                    value = self.coerce(self.lower_scalar(element), dest_elem)
                    index = row_offset + col_offset * dest_type.rows
                    self.emit(ir.Store(array=dest,
                                       index=ir.Const(I32, index),
                                       value=value))
                else:
                    src = self._materialize(element)
                    src_type = self._array_type_of(element)
                    self._copy_block(dest, dest_type, src, src_type,
                                     row_offset, col_offset)
                col_offset += ec
            row_offset += row_height or 1

    def _copy_block(self, dest: str, dest_type: ArrayType, src: str,
                    src_type: ArrayType, row_offset: int,
                    col_offset: int) -> None:
        dest_elem = ScalarType(dest_type.elem.kind)
        src_elem = ScalarType(src_type.elem.kind)
        jc = self.temp("j")
        ic = self.temp("i")
        self.fn.declare(jc, I32)
        self.fn.declare(ic, I32)
        inner = self.push_block()
        src_index = ir.BinOp(
            I32, op="add", left=ir.VarRef(I32, ic),
            right=ir.BinOp(I32, op="mul", left=ir.VarRef(I32, jc),
                           right=ir.Const(I32, src_type.rows)))
        dest_row = ir.BinOp(I32, op="add", left=ir.VarRef(I32, ic),
                            right=ir.Const(I32, row_offset))
        dest_col = ir.BinOp(I32, op="add", left=ir.VarRef(I32, jc),
                            right=ir.Const(I32, col_offset))
        dest_index = ir.BinOp(
            I32, op="add", left=dest_row,
            right=ir.BinOp(I32, op="mul", left=dest_col,
                           right=ir.Const(I32, dest_type.rows)))
        load = ir.Load(src_elem, array=src, index=src_index)
        self.emit(ir.Store(array=dest, index=dest_index,
                           value=self.coerce(load, dest_elem)))
        self.pop_block()
        inner_loop = ir.ForRange(var=ic, start=ir.Const(I32, 0),
                                 stop=ir.Const(I32, src_type.rows), step=1,
                                 body=self._last_popped())
        self.emit(ir.ForRange(var=jc, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, src_type.cols), step=1,
                              body=[inner_loop]))

    def _lower_range_fill(self, expr: ast.Range, dest: str,
                          dest_type: ArrayType) -> None:
        dest_elem = ScalarType(dest_type.elem.kind)
        f64 = ScalarType(ScalarKind.F64)
        start = self._hoist_scalar_value(
            self.coerce(self.lower_scalar(expr.start), f64), "rs")
        step = self._hoist_scalar_value(
            self.coerce(self.lower_scalar(expr.step), f64), "rp") \
            if expr.step is not None else ir.Const(f64, 1.0)
        k = self.temp("k")
        self.fn.declare(k, I32)
        body = self.push_block()
        value = ir.BinOp(f64, op="add", left=start,
                         right=ir.BinOp(f64, op="mul",
                                        left=ir.Cast(f64,
                                                     operand=ir.VarRef(I32, k)),
                                        right=step))
        self.emit(ir.Store(array=dest, index=ir.VarRef(I32, k),
                           value=self.coerce(value, dest_elem)))
        self.pop_block()
        self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, dest_type.numel), step=1,
                              body=self._last_popped()))

    def _lower_transpose(self, expr: ast.Transpose, dest: str,
                         dest_type: ArrayType) -> None:
        operand_mtype = self.mtype_of(expr.operand)
        src = self._materialize(expr.operand)
        src_type = self._array_type_of(expr.operand)
        src_elem = ScalarType(src_type.elem.kind)
        dest_elem = ScalarType(dest_type.elem.kind)
        conj = expr.conjugate and src_elem.is_complex

        if operand_mtype.is_vector:
            k = self.temp("k")
            self.fn.declare(k, I32)
            body = self.push_block()
            load: ir.Expr = ir.Load(src_elem, array=src,
                                    index=ir.VarRef(I32, k))
            if conj:
                load = ir.MathCall(src_elem, name="conj", args=[load])
            self.emit(ir.Store(array=dest, index=ir.VarRef(I32, k),
                               value=self.coerce(load, dest_elem)))
            self.pop_block()
            self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                                  stop=ir.Const(I32, dest_type.numel),
                                  step=1, body=self._last_popped()))
            return

        jc = self.temp("j")
        ic = self.temp("i")
        self.fn.declare(jc, I32)
        self.fn.declare(ic, I32)
        inner = self.push_block()
        src_index = ir.BinOp(
            I32, op="add", left=ir.VarRef(I32, ic),
            right=ir.BinOp(I32, op="mul", left=ir.VarRef(I32, jc),
                           right=ir.Const(I32, src_type.rows)))
        dest_index = ir.BinOp(
            I32, op="add", left=ir.VarRef(I32, jc),
            right=ir.BinOp(I32, op="mul", left=ir.VarRef(I32, ic),
                           right=ir.Const(I32, dest_type.rows)))
        load = ir.Load(src_elem, array=src, index=src_index)
        if conj:
            load = ir.MathCall(src_elem, name="conj", args=[load])
        self.emit(ir.Store(array=dest, index=dest_index,
                           value=self.coerce(load, dest_elem)))
        self.pop_block()
        inner_loop = ir.ForRange(var=ic, start=ir.Const(I32, 0),
                                 stop=ir.Const(I32, src_type.rows), step=1,
                                 body=self._last_popped())
        self.emit(ir.ForRange(var=jc, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, src_type.cols), step=1,
                              body=[inner_loop]))

    def _lower_matmul(self, expr: ast.BinaryOp, dest: str,
                      dest_type: ArrayType) -> None:
        a = self._materialize(expr.left)
        b = self._materialize(expr.right)
        a_type = self._array_type_of(expr.left)
        b_type = self._array_type_of(expr.right)
        dest_elem = ScalarType(dest_type.elem.kind)
        m, kdim, n = a_type.rows, a_type.cols, b_type.cols

        j = self.temp("j")
        kk = self.temp("p")
        i = self.temp("i")
        for name in (j, kk, i):
            self.fn.declare(name, I32)
        bkj = self.temp("bkj")
        self.fn.declare(bkj, dest_elem)

        # Zero the destination column, then accumulate rank-1 updates
        # (jki order: the innermost loop runs down contiguous columns of
        # `a` and `dest` — stride-1, exactly what the vectorizer wants).
        zero_body = self.push_block()
        dest_idx = ir.BinOp(
            I32, op="add", left=ir.VarRef(I32, i),
            right=ir.BinOp(I32, op="mul", left=ir.VarRef(I32, j),
                           right=ir.Const(I32, m)))
        self.emit(ir.Store(array=dest, index=dest_idx,
                           value=self._coerce_const(
                               ir.Const(dest_elem, 0), dest_elem)))
        self.pop_block()
        zero_loop = ir.ForRange(var=i, start=ir.Const(I32, 0),
                                stop=ir.Const(I32, m), step=1,
                                body=self._last_popped())

        acc_body = self.push_block()
        a_idx = ir.BinOp(
            I32, op="add", left=ir.VarRef(I32, i),
            right=ir.BinOp(I32, op="mul", left=ir.VarRef(I32, kk),
                           right=ir.Const(I32, m)))
        a_load = self.coerce(
            ir.Load(ScalarType(a_type.elem.kind), array=a, index=a_idx),
            dest_elem)
        prod = ir.BinOp(dest_elem, op="mul", left=a_load,
                        right=ir.VarRef(dest_elem, bkj))
        dest_idx2 = ir.BinOp(
            I32, op="add", left=ir.VarRef(I32, i),
            right=ir.BinOp(I32, op="mul", left=ir.VarRef(I32, j),
                           right=ir.Const(I32, m)))
        old = ir.Load(dest_elem, array=dest, index=dest_idx2)
        self.emit(ir.Store(array=dest, index=dest_idx2,
                           value=ir.BinOp(dest_elem, op="add", left=old,
                                          right=prod)))
        self.pop_block()
        acc_inner = ir.ForRange(var=i, start=ir.Const(I32, 0),
                                stop=ir.Const(I32, m), step=1,
                                body=self._last_popped())

        b_idx = ir.BinOp(
            I32, op="add", left=ir.VarRef(I32, kk),
            right=ir.BinOp(I32, op="mul", left=ir.VarRef(I32, j),
                           right=ir.Const(I32, b_type.rows)))
        b_load = self.coerce(
            ir.Load(ScalarType(b_type.elem.kind), array=b, index=b_idx),
            dest_elem)
        k_loop = ir.ForRange(
            var=kk, start=ir.Const(I32, 0), stop=ir.Const(I32, kdim), step=1,
            body=[ir.AssignVar(bkj, b_load), acc_inner])
        self.emit(ir.ForRange(var=j, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, n), step=1,
                              body=[zero_loop, k_loop]))

    # -- regions ------------------------------------------------------------

    def _subscript_generator(self, arg: ast.Expr, dim_size: int,
                             counter: ir.Expr) -> tuple[ir.Expr, int]:
        """(0-based index expr for position ``counter``, trip count)."""
        if isinstance(arg, ast.ColonAll):
            return counter, dim_size
        mtype = self.mtype_of(arg)
        if mtype.is_scalar:
            idx = self.as_i32(self.lower_scalar(arg))
            return ir.BinOp(I32, op="sub", left=idx,
                            right=ir.Const(I32, 1)), 1
        count = mtype.shape.numel()
        if count is None:
            self.fail("subscript extent is not known at compile time", arg)
        if isinstance(arg, ast.Range):
            step_value = 1.0
            if arg.step is not None:
                step_t = self.mtype_of(arg.step)
                if step_t.value is None:
                    self.fail("range-subscript step must be a compile-time "
                              "constant", arg)
                step_value = float(step_t.value)
            start = self.as_i32(self.lower_scalar(arg.start))
            base = ir.BinOp(I32, op="sub", left=start, right=ir.Const(I32, 1))
            if step_value == 1.0:
                offset = ir.BinOp(I32, op="add", left=base, right=counter)
            else:
                scaled = ir.BinOp(I32, op="mul", left=counter,
                                  right=ir.Const(I32, int(step_value)))
                offset = ir.BinOp(I32, op="add", left=base, right=scaled)
            return offset, count
        # General vector subscript: gather through the index array.
        src = self._materialize(arg)
        src_type = self._array_type_of(arg)
        idx_load = ir.Load(ScalarType(src_type.elem.kind), array=src,
                           index=counter)
        return ir.BinOp(I32, op="sub", left=self.as_i32(idx_load),
                        right=ir.Const(I32, 1)), count

    def _lower_region_read(self, expr: ast.CallIndex, dest: str,
                           dest_type: ArrayType) -> None:
        array_name = expr.target.name
        array_type = self.var_ir_type(array_name)
        if not isinstance(array_type, ArrayType):
            self.fail("cannot slice a scalar", expr)
        src = self.ir_name(array_name)
        src_elem = ScalarType(array_type.elem.kind)
        dest_elem = ScalarType(dest_type.elem.kind)

        if len(expr.args) == 1:
            k = self.temp("k")
            self.fn.declare(k, I32)
            body = self.push_block()
            index, count = self._subscript_generator(
                expr.args[0], array_type.numel, ir.VarRef(I32, k))
            load = ir.Load(src_elem, array=src, index=index)
            self.emit(ir.Store(array=dest, index=ir.VarRef(I32, k),
                               value=self.coerce(load, dest_elem)))
            self.pop_block()
            self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                                  stop=ir.Const(I32, count), step=1,
                                  body=self._last_popped()))
            return

        jc = self.temp("j")
        ic = self.temp("i")
        self.fn.declare(jc, I32)
        self.fn.declare(ic, I32)
        inner = self.push_block()
        row_idx, row_count = self._subscript_generator(
            expr.args[0], array_type.rows, ir.VarRef(I32, ic))
        col_idx, col_count = self._subscript_generator(
            expr.args[1], array_type.cols, ir.VarRef(I32, jc))
        src_index = ir.BinOp(
            I32, op="add", left=row_idx,
            right=ir.BinOp(I32, op="mul", left=col_idx,
                           right=ir.Const(I32, array_type.rows)))
        dest_index = ir.BinOp(
            I32, op="add", left=ir.VarRef(I32, ic),
            right=ir.BinOp(I32, op="mul", left=ir.VarRef(I32, jc),
                           right=ir.Const(I32, dest_type.rows)))
        load = ir.Load(src_elem, array=src, index=src_index)
        self.emit(ir.Store(array=dest, index=dest_index,
                           value=self.coerce(load, dest_elem)))
        self.pop_block()
        inner_loop = ir.ForRange(var=ic, start=ir.Const(I32, 0),
                                 stop=ir.Const(I32, row_count), step=1,
                                 body=self._last_popped())
        self.emit(ir.ForRange(var=jc, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, col_count), step=1,
                              body=[inner_loop]))

    def _store_region(self, target: ast.CallIndex, dest: str,
                      dest_type: ArrayType, value: ast.Expr) -> None:
        value_mtype = self.mtype_of(value)
        dest_elem = ScalarType(dest_type.elem.kind)
        value_is_scalar = value_mtype.is_scalar
        if value_is_scalar:
            scalar = self._hoist_scalar_value(
                self.coerce(self.lower_scalar(value), dest_elem), "sv")
            src = None
            src_type = None
        else:
            src = self._materialize(value)
            src_type = self._array_type_of(value)

        def value_at(position: ir.Expr) -> ir.Expr:
            if value_is_scalar:
                return scalar
            load = ir.Load(ScalarType(src_type.elem.kind), array=src,
                           index=position)
            return self.coerce(load, dest_elem)

        if len(target.args) == 1:
            k = self.temp("k")
            self.fn.declare(k, I32)
            body = self.push_block()
            index, count = self._subscript_generator(
                target.args[0], dest_type.numel, ir.VarRef(I32, k))
            self.emit(ir.Store(array=dest, index=index,
                               value=value_at(ir.VarRef(I32, k))))
            self.pop_block()
            self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                                  stop=ir.Const(I32, count), step=1,
                                  body=self._last_popped()))
            return

        jc = self.temp("j")
        ic = self.temp("i")
        self.fn.declare(jc, I32)
        self.fn.declare(ic, I32)
        inner = self.push_block()
        row_idx, row_count = self._subscript_generator(
            target.args[0], dest_type.rows, ir.VarRef(I32, ic))
        col_idx, col_count = self._subscript_generator(
            target.args[1], dest_type.cols, ir.VarRef(I32, jc))
        dest_index = ir.BinOp(
            I32, op="add", left=row_idx,
            right=ir.BinOp(I32, op="mul", left=col_idx,
                           right=ir.Const(I32, dest_type.rows)))
        src_position = ir.BinOp(
            I32, op="add", left=ir.VarRef(I32, ic),
            right=ir.BinOp(I32, op="mul", left=ir.VarRef(I32, jc),
                           right=ir.Const(I32, row_count)))
        self.emit(ir.Store(array=dest, index=dest_index,
                           value=value_at(src_position)))
        self.pop_block()
        inner_loop = ir.ForRange(var=ic, start=ir.Const(I32, 0),
                                 stop=ir.Const(I32, row_count), step=1,
                                 body=self._last_popped())
        self.emit(ir.ForRange(var=jc, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, col_count), step=1,
                              body=[inner_loop]))

    # -- array builtins -------------------------------------------------------

    def _lower_array_builtin(self, expr: ast.CallIndex, dest: str,
                             dest_type: ArrayType) -> None:
        name = expr.target.name
        dest_elem = ScalarType(dest_type.elem.kind)

        if name in ("zeros", "ones"):
            fill = 0.0 if name == "zeros" else 1.0
            self._fill(dest, dest_type, ir.Const(dest_elem, fill))
            return
        if name == "eye":
            self._fill(dest, dest_type, ir.Const(dest_elem, 0.0))
            diag = min(dest_type.rows, dest_type.cols)
            k = self.temp("k")
            self.fn.declare(k, I32)
            body = self.push_block()
            index = ir.BinOp(
                I32, op="mul", left=ir.VarRef(I32, k),
                right=ir.Const(I32, dest_type.rows + 1))
            self.emit(ir.Store(array=dest, index=index,
                               value=self._coerce_const(
                                   ir.Const(dest_elem, 1), dest_elem)))
            self.pop_block()
            self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                                  stop=ir.Const(I32, diag), step=1,
                                  body=self._last_popped()))
            return
        if name == "linspace":
            self._lower_linspace(expr, dest, dest_type)
            return
        if name == "reshape":
            src = self._materialize(expr.args[0])
            self._emit_array_copy(dest, dest_type, src,
                                  self._array_type_of(expr.args[0]))
            return
        if name in ("fliplr", "flipud"):
            self._lower_flip(expr, dest, dest_type, name)
            return
        if name in ("transpose", "ctranspose"):
            synthetic = ast.Transpose(span=expr.span, operand=expr.args[0],
                                      conjugate=name == "ctranspose")
            self.spec.node_types[id(synthetic)] = \
                self.spec.node_types[id(expr)]
            self._lower_transpose(synthetic, dest, dest_type)
            return
        if name in _ELEMENTWISE_MATH or name in _CAST_BUILTINS or \
                name == "complex" or name in ("mod", "rem", "atan2", "hypot",
                                              "power"):
            self._emit_elementwise(expr, dest, dest_type)
            return
        if name in ("min", "max") and len(expr.args) == 2:
            self._emit_elementwise(expr, dest, dest_type)
            return
        if name in ("sum", "prod", "mean", "min", "max"):
            self._lower_matrix_reduction(expr, dest, dest_type, name)
            return
        if name == "cumsum":
            self._lower_cumsum(expr, dest, dest_type)
            return
        if name == "sort":
            self._lower_sort(expr, dest, dest_type)
            return
        self.unsupported(
            f"builtin {name}() is not supported in array context", expr)

    def _lower_cumsum(self, expr: ast.CallIndex, dest: str,
                      dest_type: ArrayType) -> None:
        src = self._materialize(expr.args[0])
        src_type = self._array_type_of(expr.args[0])
        elem = ScalarType(dest_type.elem.kind)
        run = self.temp("run")
        k = self.temp("k")
        self.fn.declare(run, elem)
        self.fn.declare(k, I32)
        zero = complex(0) if elem.is_complex else 0.0
        self.emit(ir.AssignVar(run, ir.Const(elem, zero)))
        body = self.push_block()
        load = self.coerce(ir.Load(ScalarType(src_type.elem.kind),
                                   array=src, index=ir.VarRef(I32, k)),
                           elem)
        self.emit(ir.AssignVar(run, ir.BinOp(elem, op="add",
                                             left=ir.VarRef(elem, run),
                                             right=load)))
        self.emit(ir.Store(array=dest, index=ir.VarRef(I32, k),
                           value=ir.VarRef(elem, run)))
        self.pop_block()
        self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, dest_type.numel), step=1,
                              body=self._last_popped()))

    def _lower_sort(self, expr: ast.CallIndex, dest: str,
                    dest_type: ArrayType) -> None:
        """Ascending insertion sort, in place on a copy of the input."""
        src = self._materialize(expr.args[0])
        src_type = self._array_type_of(expr.args[0])
        self._emit_array_copy(dest, dest_type, src, src_type)
        elem = ScalarType(dest_type.elem.kind)
        n = dest_type.numel
        if n <= 1:
            return
        i = self.temp("i")
        j = self.temp("j")
        key = self.temp("key")
        self.fn.declare(i, I32)
        self.fn.declare(j, I32)
        self.fn.declare(key, elem)

        # while j >= 0 && dest[j] > key: dest[j+1] = dest[j]; j--
        j_ref = ir.VarRef(I32, j)
        cond = ir.BinOp(
            ScalarType(ScalarKind.BOOL), op="land",
            left=ir.BinOp(ScalarType(ScalarKind.BOOL), op="ge",
                          left=j_ref, right=ir.Const(I32, 0)),
            right=ir.BinOp(ScalarType(ScalarKind.BOOL), op="gt",
                           left=ir.Load(elem, array=dest, index=j_ref),
                           right=ir.VarRef(elem, key)))
        shift = [
            ir.Store(array=dest,
                     index=ir.BinOp(I32, op="add", left=ir.VarRef(I32, j),
                                    right=ir.Const(I32, 1)),
                     value=ir.Load(elem, array=dest,
                                   index=ir.VarRef(I32, j))),
            ir.AssignVar(j, ir.BinOp(I32, op="sub",
                                     left=ir.VarRef(I32, j),
                                     right=ir.Const(I32, 1))),
        ]
        outer_body = [
            ir.AssignVar(key, ir.Load(elem, array=dest,
                                      index=ir.VarRef(I32, i))),
            ir.AssignVar(j, ir.BinOp(I32, op="sub",
                                     left=ir.VarRef(I32, i),
                                     right=ir.Const(I32, 1))),
            ir.While(condition=cond, body=shift),
            ir.Store(array=dest,
                     index=ir.BinOp(I32, op="add", left=ir.VarRef(I32, j),
                                    right=ir.Const(I32, 1)),
                     value=ir.VarRef(elem, key)),
        ]
        self.emit(ir.ForRange(var=i, start=ir.Const(I32, 1),
                              stop=ir.Const(I32, n), step=1,
                              body=outer_body))

    def _fill(self, dest: str, dest_type: ArrayType, value: ir.Const) -> None:
        k = self.temp("k")
        self.fn.declare(k, I32)
        dest_elem = ScalarType(dest_type.elem.kind)
        body = self.push_block()
        self.emit(ir.Store(array=dest, index=ir.VarRef(I32, k),
                           value=self._coerce_const(value, dest_elem)))
        self.pop_block()
        self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, dest_type.numel), step=1,
                              body=self._last_popped()))

    def _lower_linspace(self, expr: ast.CallIndex, dest: str,
                        dest_type: ArrayType) -> None:
        f64 = ScalarType(ScalarKind.F64)
        dest_elem = ScalarType(dest_type.elem.kind)
        n = dest_type.numel
        start = self._hoist_scalar_value(
            self.coerce(self.lower_scalar(expr.args[0]), f64), "ls")
        stop = self._hoist_scalar_value(
            self.coerce(self.lower_scalar(expr.args[1]), f64), "le")
        denom = max(n - 1, 1)
        step = self._hoist_scalar_value(
            ir.BinOp(f64, op="div",
                     left=ir.BinOp(f64, op="sub", left=stop, right=start),
                     right=ir.Const(f64, float(denom))), "lp")
        k = self.temp("k")
        self.fn.declare(k, I32)
        body = self.push_block()
        value = ir.BinOp(f64, op="add", left=start,
                         right=ir.BinOp(f64, op="mul",
                                        left=ir.Cast(
                                            f64, operand=ir.VarRef(I32, k)),
                                        right=step))
        self.emit(ir.Store(array=dest, index=ir.VarRef(I32, k),
                           value=self.coerce(value, dest_elem)))
        self.pop_block()
        self.emit(ir.ForRange(var=k, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, n), step=1,
                              body=self._last_popped()))

    def _lower_flip(self, expr: ast.CallIndex, dest: str,
                    dest_type: ArrayType, which: str) -> None:
        src = self._materialize(expr.args[0])
        src_type = self._array_type_of(expr.args[0])
        src_elem = ScalarType(src_type.elem.kind)
        dest_elem = ScalarType(dest_type.elem.kind)
        jc = self.temp("j")
        ic = self.temp("i")
        self.fn.declare(jc, I32)
        self.fn.declare(ic, I32)
        inner = self.push_block()
        if which == "fliplr":
            src_col = ir.BinOp(I32, op="sub",
                               left=ir.Const(I32, src_type.cols - 1),
                               right=ir.VarRef(I32, jc))
            src_row: ir.Expr = ir.VarRef(I32, ic)
        else:
            src_col = ir.VarRef(I32, jc)
            src_row = ir.BinOp(I32, op="sub",
                               left=ir.Const(I32, src_type.rows - 1),
                               right=ir.VarRef(I32, ic))
        src_index = ir.BinOp(
            I32, op="add", left=src_row,
            right=ir.BinOp(I32, op="mul", left=src_col,
                           right=ir.Const(I32, src_type.rows)))
        dest_index = ir.BinOp(
            I32, op="add", left=ir.VarRef(I32, ic),
            right=ir.BinOp(I32, op="mul", left=ir.VarRef(I32, jc),
                           right=ir.Const(I32, dest_type.rows)))
        load = ir.Load(src_elem, array=src, index=src_index)
        self.emit(ir.Store(array=dest, index=dest_index,
                           value=self.coerce(load, dest_elem)))
        self.pop_block()
        inner_loop = ir.ForRange(var=ic, start=ir.Const(I32, 0),
                                 stop=ir.Const(I32, src_type.rows), step=1,
                                 body=self._last_popped())
        self.emit(ir.ForRange(var=jc, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, src_type.cols), step=1,
                              body=[inner_loop]))

    def _lower_matrix_reduction(self, expr: ast.CallIndex, dest: str,
                                dest_type: ArrayType, name: str) -> None:
        src = self._materialize(expr.args[0])
        src_type = self._array_type_of(expr.args[0])
        src_elem = ScalarType(src_type.elem.kind)
        dest_elem = ScalarType(dest_type.elem.kind)
        # Reduce along rows (dim=1, the default for matrices): one output
        # per column; or along columns for dim=2.
        dim = 1
        if len(expr.args) == 2:
            dim_t = self.mtype_of(expr.args[1])
            dim = int(float(dim_t.value))
        outer_n = src_type.cols if dim == 1 else src_type.rows
        inner_n = src_type.rows if dim == 1 else src_type.cols
        jc = self.temp("j")
        ic = self.temp("i")
        acc = self.temp("acc")
        self.fn.declare(jc, I32)
        self.fn.declare(ic, I32)
        self.fn.declare(acc, dest_elem)

        inner = self.push_block()
        if dim == 1:
            src_index = ir.BinOp(
                I32, op="add", left=ir.VarRef(I32, ic),
                right=ir.BinOp(I32, op="mul", left=ir.VarRef(I32, jc),
                               right=ir.Const(I32, src_type.rows)))
        else:
            src_index = ir.BinOp(
                I32, op="add", left=ir.VarRef(I32, jc),
                right=ir.BinOp(I32, op="mul", left=ir.VarRef(I32, ic),
                               right=ir.Const(I32, src_type.rows)))
        load = self.coerce(ir.Load(src_elem, array=src, index=src_index),
                           dest_elem)
        if name in ("sum", "mean"):
            update = ir.BinOp(dest_elem, op="add",
                              left=ir.VarRef(dest_elem, acc), right=load)
        elif name == "prod":
            update = ir.BinOp(dest_elem, op="mul",
                              left=ir.VarRef(dest_elem, acc), right=load)
        else:
            update = ir.BinOp(dest_elem, op=name,
                              left=ir.VarRef(dest_elem, acc), right=load)
        self.emit(ir.AssignVar(acc, update))
        self.pop_block()
        inner_body = self._last_popped()

        init: ir.Expr
        start_i = 0
        if name in ("sum", "mean"):
            init = self._coerce_const(ir.Const(dest_elem, 0), dest_elem)
        elif name == "prod":
            init = self._coerce_const(ir.Const(dest_elem, 1), dest_elem)
        else:
            first_index = ir.BinOp(
                I32, op="mul", left=ir.VarRef(I32, jc),
                right=ir.Const(I32, src_type.rows)) if dim == 1 else \
                ir.VarRef(I32, jc)
            init = self.coerce(ir.Load(src_elem, array=src,
                                       index=first_index), dest_elem)
            start_i = 1
        result: ir.Expr = ir.VarRef(dest_elem, acc)
        if name == "mean":
            result = ir.BinOp(dest_elem, op="mul", left=result,
                              right=ir.Const(dest_elem,
                                             self._one_over(inner_n,
                                                            dest_elem)))
        outer_body = [
            ir.AssignVar(acc, init),
            ir.ForRange(var=ic, start=ir.Const(I32, start_i),
                        stop=ir.Const(I32, inner_n), step=1,
                        body=inner_body),
            ir.Store(array=dest, index=ir.VarRef(I32, jc), value=result),
        ]
        self.emit(ir.ForRange(var=jc, start=ir.Const(I32, 0),
                              stop=ir.Const(I32, outer_n), step=1,
                              body=outer_body))

    # ------------------------------------------------------------------
    # User calls
    # ------------------------------------------------------------------

    def _emit_user_call(self, expr: ast.CallIndex,
                        result_names: list[str] | None,
                        target_key: str | None = None) -> list[str]:
        if target_key is None:
            target_key = self.spec.call_targets[id(expr)]
        callee_spec = self.sprog.functions[target_key]
        callee_name = _mangle(target_key)

        result_types = callee_spec.result_types
        if result_names is None:
            result_names = []
            for rt in result_types:
                tmp = self.temp("ret")
                self.fn.declare(tmp, from_mtype(rt))
                result_names.append(tmp)
        results = list(result_names[:len(result_types)])
        # nargout < number of returns (``v = f(...)`` on a multi-return
        # function): the call still carries every output so the callee's
        # calling convention is uniform — unused outputs get throwaway
        # caller buffers and die in DCE when the callee is inlined.
        for rt in result_types[len(results):]:
            tmp = self.temp("unused")
            self.fn.declare(tmp, from_mtype(rt))
            results.append(tmp)
        result_set = set(results)

        args: list[ir.Expr | str] = []
        for arg, arg_spec_t in zip(expr.args, callee_spec.arg_types):
            arg_mtype = self.mtype_of(arg)
            if arg_mtype.is_scalar:
                value = self.lower_scalar(arg)
                args.append(self.coerce(value, scalar_from_mtype(arg_spec_t)))
                continue
            name = self._materialize(arg)
            if name in result_set:
                # x = f(x): the C calling convention passes pointers, so
                # an argument aliasing a result buffer must be snapshot
                # before the callee starts writing its outputs.
                array_type = self.fn.local_type(name)
                snapshot = self.temp("alias")
                self.fn.declare(snapshot, array_type)
                self.emit(ir.CopyArray(dst=snapshot, src=name))
                name = snapshot
            args.append(name)

        self.emit(ir.Call(callee=callee_name, args=args, results=results))
        return results
