"""Human-readable IR dump, used by tests and ``repro-mc --dump-ir``."""

from __future__ import annotations

from repro.ir import nodes as ir
from repro.ir.types import ArrayType


def format_expr(expr: ir.Expr) -> str:
    if isinstance(expr, ir.Const):
        return repr(expr.value)
    if isinstance(expr, ir.VarRef):
        return expr.name
    if isinstance(expr, ir.BinOp):
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    if isinstance(expr, ir.UnOp):
        return f"{expr.op}({format_expr(expr.operand)})"
    if isinstance(expr, ir.MathCall):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ir.Cast):
        return f"cast<{expr.type.describe()}>({format_expr(expr.operand)})"
    if isinstance(expr, ir.MakeComplex):
        return f"complex({format_expr(expr.real)}, {format_expr(expr.imag)})"
    if isinstance(expr, ir.Load):
        return f"{expr.array}[{format_expr(expr.index)}]"
    if isinstance(expr, ir.VecLoad):
        return f"vload.{expr.type.describe()} {expr.array}[{format_expr(expr.base)}]"
    if isinstance(expr, ir.VecSplat):
        return f"splat.{expr.type.describe()}({format_expr(expr.operand)})"
    if isinstance(expr, ir.IntrinsicCall):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"@{expr.instruction.name}({args})"
    return f"<{type(expr).__name__}>"


def _format_stmt(stmt: ir.Stmt, indent: int, out: list[str]) -> None:
    pad = "  " * indent
    if isinstance(stmt, ir.AssignVar):
        out.append(f"{pad}{stmt.name} = {format_expr(stmt.value)}")
    elif isinstance(stmt, ir.Store):
        out.append(f"{pad}{stmt.array}[{format_expr(stmt.index)}] = "
                   f"{format_expr(stmt.value)}")
    elif isinstance(stmt, ir.VecStore):
        out.append(f"{pad}vstore {stmt.array}[{format_expr(stmt.base)}] = "
                   f"{format_expr(stmt.value)}")
    elif isinstance(stmt, ir.IntrinsicStmt):
        out.append(f"{pad}{format_expr(stmt.call)}")
    elif isinstance(stmt, ir.ForRange):
        out.append(f"{pad}for {stmt.var} = {format_expr(stmt.start)} .. "
                   f"{format_expr(stmt.stop)} step {stmt.step}:")
        for sub in stmt.body:
            _format_stmt(sub, indent + 1, out)
    elif isinstance(stmt, ir.While):
        out.append(f"{pad}while {format_expr(stmt.condition)}:")
        for sub in stmt.body:
            _format_stmt(sub, indent + 1, out)
    elif isinstance(stmt, ir.If):
        out.append(f"{pad}if {format_expr(stmt.condition)}:")
        for sub in stmt.then_body:
            _format_stmt(sub, indent + 1, out)
        if stmt.else_body:
            out.append(f"{pad}else:")
            for sub in stmt.else_body:
                _format_stmt(sub, indent + 1, out)
    elif isinstance(stmt, ir.Break):
        out.append(f"{pad}break")
    elif isinstance(stmt, ir.Continue):
        out.append(f"{pad}continue")
    elif isinstance(stmt, ir.Return):
        out.append(f"{pad}return")
    elif isinstance(stmt, ir.Call):
        args = ", ".join(a if isinstance(a, str) else format_expr(a)
                         for a in stmt.args)
        results = ", ".join(stmt.results)
        prefix = f"{results} = " if results else ""
        out.append(f"{pad}{prefix}call {stmt.callee}({args})")
    elif isinstance(stmt, ir.Emit):
        args = ", ".join(format_expr(a) for a in stmt.args)
        out.append(f"{pad}emit {stmt.format!r} {args}".rstrip())
    elif isinstance(stmt, ir.CopyArray):
        out.append(f"{pad}{stmt.dst}[:] = {stmt.src}[:]")
    else:
        out.append(f"{pad}<{type(stmt).__name__}>")


def format_function(func: ir.IRFunction) -> str:
    lines: list[str] = []
    params = ", ".join(f"{p.name}: {p.type.describe()}" for p in func.params)
    outs = ", ".join(f"{p.name}: {p.type.describe()}" for p in func.outputs)
    lines.append(f"func {func.name}({params}) -> ({outs})")
    for name, ir_type in sorted(func.locals.items()):
        if isinstance(ir_type, ArrayType):
            lines.append(f"  local {name}: {ir_type.describe()}")
    for stmt in func.body:
        _format_stmt(stmt, 1, lines)
    return "\n".join(lines)


def format_module(module: ir.IRModule) -> str:
    return "\n\n".join(format_function(f) for f in module.functions)
