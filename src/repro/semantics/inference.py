"""Forward type/shape inference with per-call-site function specialization.

The entry point is :func:`specialize_program`: given a parsed program, an
entry function name, and concrete argument types (the analogue of MATLAB
Coder's ``-args``), it produces a :class:`SpecializedProgram` containing
one :class:`SpecializedFunction` per (function, argument-signature) pair
reached from the entry point.

Inference is a forward abstract interpretation over the AST:

* every expression node gets an :class:`~repro.semantics.types.MType`;
* scalar compile-time constants are propagated (literals, shape queries
  of concretely-shaped arrays, arithmetic on constants) so allocation
  sizes and FFT lengths become static;
* loops run to a type fixpoint (bounded; widening drops constants);
* each ``CallIndex`` is classified as array indexing, builtin call, or
  user call — MATLAB's famous ``f(x)`` ambiguity — and the verdict is
  recorded for the IR builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import numeric
from repro.errors import SemanticError, UnsupportedFeatureError
from repro.frontend import ast_nodes as ast
from repro.frontend.source import SourceFile, Span
from repro.semantics import builtins, library
from repro.semantics.shapes import SCALAR, Shape
from repro.semantics.symbols import Environment, FunctionRegistry
from repro.semantics.types import DType, MType, promote_binary

_MAX_LOOP_ITERATIONS = 16


@dataclass
class SpecializedFunction:
    """One function body analyzed under concrete argument types."""

    func: ast.Function
    mangled_name: str
    arg_types: list[MType]
    result_types: list[MType] = field(default_factory=list)
    final_env: Environment = field(default_factory=Environment)
    node_types: dict[int, list[MType]] = field(default_factory=dict)
    call_kinds: dict[int, str] = field(default_factory=dict)
    call_targets: dict[int, str] = field(default_factory=dict)
    #: id(If stmt) -> statically selected branch index (-1 = else body).
    static_branches: dict[int, int] = field(default_factory=dict)

    def type_of(self, node: ast.Expr) -> MType:
        """The single inferred type of an expression node."""
        types = self.node_types[id(node)]
        return types[0]


@dataclass
class SpecializedProgram:
    """All specializations reached from the entry point."""

    entry: SpecializedFunction
    functions: dict[str, SpecializedFunction] = field(default_factory=dict)
    source: SourceFile | None = None

    def in_call_order(self) -> list[SpecializedFunction]:
        """Callees first, entry last (stable for deterministic output)."""
        order = [f for key, f in self.functions.items() if f is not self.entry]
        order.append(self.entry)
        return order


def _signature_key(name: str, arg_types: list[MType]) -> str:
    parts = [name]
    for t in arg_types:
        tag = t.dtype.short_name + ("c" if t.is_complex else "")
        shape = t.shape
        tag += f"_{shape.rows}x{shape.cols}"
        if t.value is not None and t.is_scalar:
            tag += f"_v{t.value}"
        parts.append(tag)
    return "$".join(parts)


class _IndexContext:
    """Tracks the array being indexed so ``end`` can be resolved."""

    def __init__(self, array_type: MType, nargs: int):
        self.array_type = array_type
        self.nargs = nargs
        self.position = 0


class Inferencer:
    """Specializes user functions over concrete argument types."""

    def __init__(self, program: ast.Program, source: SourceFile | None = None):
        self.program = program
        self.source = source
        self.registry = FunctionRegistry.from_program(program)
        self.specialized: dict[str, SpecializedFunction] = {}
        self._in_progress: set[str] = set()

    # ------------------------------------------------------------------
    # Errors
    # ------------------------------------------------------------------

    def _where(self, span: Span) -> str:
        if self.source is None:
            return ""
        line, col = self.source.line_col(span.start)
        return f"{self.source.filename}:{line}:{col}: "

    def error(self, message: str, span: Span) -> None:
        raise SemanticError(self._where(span) + message)

    def unsupported(self, message: str, span: Span) -> None:
        raise UnsupportedFeatureError(self._where(span) + message)

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------

    def specialize(self, name: str, arg_types: list[MType]) -> SpecializedFunction:
        """Analyze function ``name`` under ``arg_types`` (memoized).

        User-defined functions take precedence over the compiler's
        MATLAB-source library kernels (fft/ifft/conv/filter).
        """
        func = self.registry.lookup(name)
        if func is None:
            func = library.lookup(name)
            if func is not None:
                problem = library.check_precondition(name, arg_types)
                if problem is not None:
                    self.error(problem, func.span)
        if func is None:
            defined = ", ".join(sorted(self.registry.functions))
            hint = f" (defined functions: {defined})" if defined else ""
            raise SemanticError(f"unknown function {name!r}{hint}")
        key = _signature_key(name, arg_types)
        if key in self.specialized:
            return self.specialized[key]
        if key in self._in_progress:
            self.unsupported(
                f"recursive call to {name!r} is not supported", func.span)
        if len(arg_types) != len(func.params):
            self.error(
                f"function {name!r} expects {len(func.params)} argument(s), "
                f"got {len(arg_types)}", func.span)
        self._in_progress.add(key)
        try:
            spec = SpecializedFunction(func=func, mangled_name=key, arg_types=list(arg_types))
            env = Environment()
            for param, mtype in zip(func.params, arg_types):
                if param != "~":
                    env.define(param, mtype, func.span, is_param=True)
            analyzer = _FunctionAnalyzer(self, spec)
            env = analyzer.infer_body(func.body, env)
            spec.final_env = env
            for out in func.returns:
                symbol = env.lookup(out)
                if symbol is None:
                    self.error(
                        f"output variable {out!r} of function {name!r} "
                        "is never assigned", func.span)
                spec.result_types.append(symbol.mtype.without_value())
            self.specialized[key] = spec
        finally:
            self._in_progress.discard(key)
        return spec


class _FunctionAnalyzer:
    """Infers one function body; records node types into the spec."""

    def __init__(self, owner: Inferencer, spec: SpecializedFunction):
        self.owner = owner
        self.spec = spec
        self._index_stack: list[_IndexContext] = []

    # -- plumbing ---------------------------------------------------------

    def error(self, message: str, span: Span) -> None:
        self.owner.error(message, span)

    def unsupported(self, message: str, span: Span) -> None:
        self.owner.unsupported(message, span)

    def _record(self, node: ast.Expr, types: list[MType]) -> MType:
        self.spec.node_types[id(node)] = types
        return types[0]

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def infer_body(self, body: list[ast.Stmt], env: Environment) -> Environment:
        for stmt in body:
            env = self.infer_stmt(stmt, env)
        return env

    def infer_stmt(self, stmt: ast.Stmt, env: Environment) -> Environment:
        method = getattr(self, "_stmt_" + type(stmt).__name__, None)
        if method is None:
            self.unsupported(f"statement {type(stmt).__name__} is not supported",
                             stmt.span)
        return method(stmt, env)

    def _stmt_ExprStmt(self, stmt: ast.ExprStmt, env: Environment) -> Environment:
        self.infer_expr(stmt.expr, env)
        return env

    def _stmt_Assign(self, stmt: ast.Assign, env: Environment) -> Environment:
        value_t = self.infer_expr(stmt.value, env)
        target = stmt.target
        if isinstance(target, ast.Identifier):
            value_t = self._sticky_complex(target.name, value_t, env)
            self._shape_stable(target.name, value_t, env, target.span)
            env.define(target.name, value_t, target.span)
            self._record(target, [value_t])
            return env
        if isinstance(target, ast.CallIndex):
            return self._indexed_store(target, value_t, env)
        self.error("invalid assignment target", target.span)
        return env

    def _sticky_complex(self, name: str, value_t: MType,
                        env: Environment) -> MType:
        """Once complex, a variable stays complex across reassignment.

        The variable's storage is declared once with the *join* of all
        its per-point types, so a complex variable reassigned with a
        real value keeps complex storage (the value is stored with a
        zero imaginary part).  Recording the widened type here keeps
        the per-point record in sync with the storage the builder will
        declare; the reverse direction (real storage, complex value)
        widens the storage instead, and loads at real-typed program
        points extract the real component."""
        prior = env.lookup(name)
        if prior is None or not prior.mtype.is_complex \
                or value_t.is_complex:
            return value_t
        return MType(value_t.dtype, True, value_t.shape, value_t.value)

    def _shape_stable(self, name: str, value_t: MType, env: Environment,
                      span: Span) -> None:
        """Reject array reassignment that changes the array's shape.

        Storage is laid out once from the variable's final type; an
        intermediate value with different dimensions (``a = a'`` on a
        non-square matrix) would be linearized with the wrong leading
        dimension and silently permute elements.  Scalar reassignment
        and same-shape arrays are unaffected."""
        prior = env.lookup(name)
        if prior is None:
            return
        old_shape, new_shape = prior.mtype.shape, value_t.shape
        if old_shape.is_scalar or new_shape.is_scalar:
            return
        old_dims = (old_shape.rows, old_shape.cols)
        new_dims = (new_shape.rows, new_shape.cols)
        if None in old_dims or None in new_dims or old_dims == new_dims:
            return
        self.unsupported(
            f"reassignment changes the shape of {name!r} from "
            f"{old_shape.describe()} to {new_shape.describe()}; array "
            "shapes are fixed at the first assignment", span)

    def _indexed_store(self, target: ast.CallIndex, value_t: MType,
                       env: Environment) -> Environment:
        if not isinstance(target.target, ast.Identifier):
            self.error("indexed assignment target must be a variable",
                       target.span)
        name = target.target.name
        symbol = env.lookup(name)
        if symbol is None:
            self.error(
                f"indexed assignment to undefined variable {name!r}; "
                "preallocate it first (e.g. with zeros)", target.span)
        array_t = symbol.mtype
        if array_t.is_scalar:
            # y(1) = v on a 1x1 value is a plain assignment.  A constant
            # subscript other than 1 would grow the array — rejected.
            self.spec.call_kinds[id(target)] = "index"
            region = self._infer_subscripts(target, array_t, env)
            if not region.is_scalar or not value_t.is_scalar:
                self.unsupported(
                    f"indexed assignment would grow scalar variable "
                    f"{name!r}; preallocate the array first", target.span)
            for sub in target.args:
                sub_t = self.spec.node_types.get(id(sub))
                if sub_t and sub_t[0].value is not None and \
                        not isinstance(sub_t[0].value, (str, complex)) and \
                        float(sub_t[0].value) != 1.0:
                    self.unsupported(
                        f"indexed assignment would grow scalar variable "
                        f"{name!r}; preallocate the array first",
                        target.span)
            new_t = MType(array_t.dtype.join(value_t.dtype),
                          array_t.is_complex or value_t.is_complex,
                          SCALAR)
            if new_t.dtype is DType.LOGICAL:
                new_t = MType(DType.DOUBLE, new_t.is_complex, SCALAR)
            env.define(name, new_t, target.span)
            self._record(target.target, [new_t])
            self._record(target, [new_t])
            return env
        self.spec.call_kinds[id(target)] = "index"
        region = self._infer_subscripts(target, array_t, env)
        # MATLAB accepts any value orientation in an indexed store as
        # long as the element counts agree (y(:) = row is legal).
        region_n = region.numel()
        value_n = value_t.shape.numel()
        if not value_t.is_scalar and region_n is not None and \
                value_n is not None and region_n != value_n:
            self.error(
                f"shape mismatch in indexed assignment to {name!r}: "
                f"selected {region.describe()} ({region_n} elements), "
                f"value is {value_t.shape.describe()} ({value_n} "
                "elements)", target.span)
        # Element class may widen (e.g. storing a complex into a real array).
        new_dtype = array_t.dtype.join(value_t.dtype)
        if new_dtype is DType.LOGICAL:
            new_dtype = DType.DOUBLE
        new_t = MType(new_dtype, array_t.is_complex or value_t.is_complex,
                      array_t.shape)
        env.define(name, new_t, target.span)
        self._record(target.target, [new_t])
        self._record(target, [MType(new_t.dtype, new_t.is_complex, region)])
        return env

    def _stmt_MultiAssign(self, stmt: ast.MultiAssign, env: Environment) -> Environment:
        value = stmt.value
        if not isinstance(value, ast.CallIndex) or not isinstance(
                value.target, ast.Identifier):
            self.error("multiple assignment requires a function call on the "
                       "right-hand side", stmt.span)
        result_types = self._infer_call_multi(value, env, nargout=len(stmt.targets))
        if len(result_types) < len(stmt.targets):
            self.error(
                f"function returns {len(result_types)} value(s), "
                f"{len(stmt.targets)} requested", stmt.span)
        for target, mtype in zip(stmt.targets, result_types):
            if isinstance(target, ast.Identifier):
                if target.name != "~":
                    env.define(target.name, mtype, target.span)
                self._record(target, [mtype])
            elif isinstance(target, ast.CallIndex):
                env = self._indexed_store(target, mtype, env)
            else:
                self.error("invalid assignment target", target.span)
        return env

    def _stmt_If(self, stmt: ast.If, env: Environment) -> Environment:
        # Compile-time branch pruning: when conditions are constants (as
        # with shape tests over concretely-shaped inputs), only the live
        # branch is analyzed — dead branches with conflicting shapes must
        # not pollute the type join.  The builder replays the decision.
        selected: int | None = None
        dynamic = False
        for idx, (cond, _body) in enumerate(stmt.branches):
            cond_t = self.infer_expr(cond, env)
            if cond_t.value is None or not cond_t.is_scalar:
                dynamic = True
                break
            if bool(cond_t.value):
                selected = idx
                break
        if not dynamic:
            if selected is None:
                selected = -1  # all conditions statically false -> else
            self.spec.static_branches[id(stmt)] = selected
            body = stmt.else_body if selected == -1 else stmt.branches[selected][1]
            return self.infer_body(body, env)

        # Dynamic: analyze every branch and join.  Drop any stale verdict
        # from an earlier (pre-fixpoint) pass in which the condition was
        # still constant.
        self.spec.static_branches.pop(id(stmt), None)
        branch_envs: list[Environment] = []
        for cond, body in stmt.branches:
            self.infer_expr(cond, env)
            branch_env = self.infer_body(body, env.copy())
            branch_envs.append(branch_env)
        else_env = self.infer_body(stmt.else_body, env.copy())
        branch_envs.append(else_env)
        merged = branch_envs[0]
        for other in branch_envs[1:]:
            merged = _merge_union(merged, other)
        return merged

    def _stmt_For(self, stmt: ast.For, env: Environment) -> Environment:
        iterable_t = self.infer_expr(stmt.iterable, env)
        loop_var_t = self._loop_var_type(iterable_t)
        for _ in range(_MAX_LOOP_ITERATIONS):
            body_env = env.copy()
            body_env.define(stmt.var, loop_var_t, stmt.span, is_loop_var=True)
            body_env = self.infer_body(stmt.body, body_env)
            merged = _merge_union(env, body_env)
            if merged.same_types(env):
                break
            env = merged
        else:
            self.error(
                f"types in loop over {stmt.var!r} did not stabilize "
                f"(array growing inside the loop?)", stmt.span)
        # Re-run once on the stable env so node types reflect the fixpoint.
        final = env.copy()
        final.define(stmt.var, loop_var_t, stmt.span, is_loop_var=True)
        self.infer_body(stmt.body, final)
        return _merge_union(env, final)

    def _loop_var_type(self, iterable_t: MType) -> MType:
        if iterable_t.shape.is_row or iterable_t.is_scalar:
            return MType(iterable_t.dtype, iterable_t.is_complex, SCALAR)
        # Iterating a matrix yields its columns; a column vector yields
        # itself once (MATLAB semantics).
        return MType(iterable_t.dtype, iterable_t.is_complex,
                     Shape(iterable_t.shape.rows, 1))

    def _stmt_While(self, stmt: ast.While, env: Environment) -> Environment:
        for _ in range(_MAX_LOOP_ITERATIONS):
            self.infer_expr(stmt.condition, env)
            body_env = self.infer_body(stmt.body, env.copy())
            merged = _merge_union(env, body_env)
            if merged.same_types(env):
                break
            env = merged
        else:
            self.error("types in while loop did not stabilize", stmt.span)
        self.infer_expr(stmt.condition, env)
        final = self.infer_body(stmt.body, env.copy())
        return _merge_union(env, final)

    def _stmt_Switch(self, stmt: ast.Switch, env: Environment) -> Environment:
        self.infer_expr(stmt.subject, env)
        branch_envs = []
        for match, body in stmt.cases:
            self.infer_expr(match, env)
            branch_envs.append(self.infer_body(body, env.copy()))
        branch_envs.append(self.infer_body(stmt.otherwise, env.copy()))
        merged = branch_envs[0]
        for other in branch_envs[1:]:
            merged = _merge_union(merged, other)
        return merged

    def _stmt_Break(self, stmt: ast.Break, env: Environment) -> Environment:
        return env

    def _stmt_Continue(self, stmt: ast.Continue, env: Environment) -> Environment:
        return env

    def _stmt_Return(self, stmt: ast.Return, env: Environment) -> Environment:
        return env

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def infer_expr(self, expr: ast.Expr, env: Environment) -> MType:
        method = getattr(self, "_expr_" + type(expr).__name__, None)
        if method is None:
            self.unsupported(
                f"expression {type(expr).__name__} is not supported for "
                "code generation", expr.span)
        return method(expr, env)

    def _expr_NumberLit(self, expr: ast.NumberLit, env: Environment) -> MType:
        return self._record(expr, [MType.double(expr.value)])

    def _expr_ImagLit(self, expr: ast.ImagLit, env: Environment) -> MType:
        return self._record(
            expr, [MType.scalar(DType.DOUBLE, is_complex=True,
                                value=complex(0.0, expr.value))])

    def _expr_StringLit(self, expr: ast.StringLit, env: Environment) -> MType:
        mtype = MType(DType.CHAR, False, Shape(1, len(expr.value)), expr.value)
        return self._record(expr, [mtype])

    def _expr_Identifier(self, expr: ast.Identifier, env: Environment) -> MType:
        symbol = env.lookup(expr.name)
        if symbol is not None:
            return self._record(expr, [symbol.mtype])
        constant = builtins.CONSTANTS.get(expr.name)
        if constant is not None:
            return self._record(expr, [constant])
        if expr.name in self.owner.registry or builtins.is_builtin(expr.name) \
                or library.is_library_function(expr.name):
            # Zero-argument call written without parentheses.  Record
            # classification under the identifier node: the builder
            # rebuilds its own synthetic call node.
            call = ast.CallIndex(span=expr.span, target=expr, args=[])
            result = self._infer_call_multi(call, env, nargout=1,
                                            record_node=expr)
            if id(call) in self.spec.call_targets:
                self.spec.call_targets[id(expr)] = \
                    self.spec.call_targets[id(call)]
            return result[0]
        self.error(f"undefined variable or function {expr.name!r}", expr.span)

    def _expr_EndMarker(self, expr: ast.EndMarker, env: Environment) -> MType:
        if not self._index_stack:
            self.error("'end' outside of an index expression", expr.span)
        ctx = self._index_stack[-1]
        shape = ctx.array_type.shape
        if ctx.nargs == 1:
            n = shape.numel()
        else:
            n = shape.dim(ctx.position + 1)
        return self._record(expr, [MType.double(None if n is None else float(n))])

    def _expr_ColonAll(self, expr: ast.ColonAll, env: Environment) -> MType:
        # Only meaningful as a subscript; handled by _infer_subscripts.
        return self._record(expr, [MType.double()])

    def _expr_UnaryOp(self, expr: ast.UnaryOp, env: Environment) -> MType:
        operand = self.infer_expr(expr.operand, env)
        if expr.op == "~":
            result = MType(DType.LOGICAL, False, operand.shape,
                           _fold_unary("~", operand.value))
        else:
            dtype = operand.dtype if operand.dtype.is_float or \
                operand.dtype.is_integer else DType.DOUBLE
            result = MType(dtype, operand.is_complex, operand.shape,
                           _fold_unary(expr.op, operand.value))
        return self._record(expr, [result])

    _COMPARISONS = frozenset({"==", "~=", "<", "<=", ">", ">="})
    _LOGICAL = frozenset({"&", "|", "&&", "||"})
    _MATRIX_OPS = frozenset({"*", "/", "\\", "^"})

    def _expr_BinaryOp(self, expr: ast.BinaryOp, env: Environment) -> MType:
        left = self.infer_expr(expr.left, env)
        right = self.infer_expr(expr.right, env)
        op = expr.op
        if op in self._COMPARISONS:
            result = self._compare_type(op, left, right, expr.span)
        elif op in self._LOGICAL:
            result = self._logical_type(op, left, right, expr.span)
        elif op in self._MATRIX_OPS and not (left.is_scalar and right.is_scalar):
            result = self._matrix_op_type(op, left, right, expr.span)
        else:
            result = self._elementwise_type(op, left, right, expr.span)
        return self._record(expr, [result])

    def _compare_type(self, op: str, left: MType, right: MType,
                      span: Span) -> MType:
        shape = left.shape.elementwise(right.shape)
        if shape is None:
            self.error(
                f"comparison {op!r}: shapes {left.shape.describe()} and "
                f"{right.shape.describe()} do not conform", span)
        value = _fold_binop(op, left.value, right.value)
        return MType(DType.LOGICAL, False, shape, value)

    def _logical_type(self, op: str, left: MType, right: MType,
                      span: Span) -> MType:
        if op in ("&&", "||") and not (left.is_scalar and right.is_scalar):
            self.error(f"operands of {op!r} must be scalar", span)
        shape = left.shape.elementwise(right.shape)
        if shape is None:
            self.error(
                f"logical {op!r}: shapes {left.shape.describe()} and "
                f"{right.shape.describe()} do not conform", span)
        value = _fold_binop(op, left.value, right.value)
        return MType(DType.LOGICAL, False, shape, value)

    def _matrix_op_type(self, op: str, left: MType, right: MType,
                        span: Span) -> MType:
        dtype, is_complex = promote_binary(left, right)
        # A true matrix product accumulates, so it is computed in float;
        # scalar scaling (one side 1x1) keeps the integer class, like
        # MATLAB.
        if not dtype.is_float and not (left.is_scalar or right.is_scalar):
            dtype = DType.DOUBLE
        if op == "*":
            shape = left.shape.matmul(right.shape)
            if shape is None:
                self.error(
                    f"matrix product: inner dimensions of "
                    f"{left.shape.describe()} and {right.shape.describe()} "
                    "disagree", span)
            return MType(dtype, is_complex, shape)
        if op == "/" and right.is_scalar:
            return MType(dtype, is_complex, left.shape)
        if op == "\\" and left.is_scalar:
            return MType(dtype, is_complex, right.shape)
        if op == "^":
            self.unsupported(
                "matrix power is not supported; use .^ for element-wise "
                "power", span)
        self.unsupported(
            f"matrix {op!r} (linear solve) is not supported in this subset",
            span)

    def _elementwise_type(self, op: str, left: MType, right: MType,
                          span: Span) -> MType:
        shape = left.shape.elementwise(right.shape)
        if shape is None:
            self.error(
                f"element-wise {op!r}: shapes {left.shape.describe()} and "
                f"{right.shape.describe()} do not conform", span)
        dtype, is_complex = promote_binary(left, right)
        if op in ("/", "./", "\\", ".\\", "^", ".^") and not dtype.is_float:
            dtype = DType.DOUBLE
        value = _fold_binop(op, left.value, right.value)
        if isinstance(value, complex):
            is_complex = True
        return MType(dtype, is_complex, shape, value)

    def _expr_Transpose(self, expr: ast.Transpose, env: Environment) -> MType:
        operand = self.infer_expr(expr.operand, env)
        result = MType(operand.dtype, operand.is_complex,
                       operand.shape.transpose(),
                       operand.value if operand.is_scalar and not (
                           expr.conjugate and operand.is_complex) else None)
        return self._record(expr, [result])

    def _expr_Range(self, expr: ast.Range, env: Environment) -> MType:
        start = self.infer_expr(expr.start, env)
        stop = self.infer_expr(expr.stop, env)
        step = self.infer_expr(expr.step, env) if expr.step is not None else None
        for part, what in ((start, "start"), (stop, "stop"), (step, "step")):
            if part is not None and not part.is_scalar:
                self.error(f"range {what} must be scalar", expr.span)
        count = _range_count(
            start.value, stop.value,
            1.0 if step is None else step.value)
        dtype = start.dtype.join(stop.dtype)
        if step is not None:
            dtype = dtype.join(step.dtype)
        if not (dtype.is_float or dtype.is_integer):
            dtype = DType.DOUBLE
        result = MType(dtype, False, Shape(1, count))
        return self._record(expr, [result])

    def _expr_MatrixLit(self, expr: ast.MatrixLit, env: Environment) -> MType:
        if not expr.rows:
            return self._record(expr, [MType(DType.DOUBLE, False, Shape(0, 0))])
        row_types: list[MType] = []
        dtype = DType.LOGICAL
        is_complex = False
        for row in expr.rows:
            row_shape: Shape | None = None
            for element in row:
                elem_t = self.infer_expr(element, env)
                dtype = dtype.join(elem_t.dtype)
                is_complex = is_complex or elem_t.is_complex
                row_shape = elem_t.shape if row_shape is None else \
                    row_shape.hcat(elem_t.shape)
                if row_shape is None:
                    self.error("inconsistent row heights in matrix literal",
                               element.span)
            row_types.append(MType(dtype, is_complex, row_shape))
        shape = row_types[0].shape
        for row_t in row_types[1:]:
            merged = shape.vcat(row_t.shape)
            if merged is None:
                self.error("inconsistent column counts in matrix literal",
                           expr.span)
            shape = merged
        if not dtype.is_float and not dtype.is_integer:
            dtype = DType.DOUBLE
        result = MType(dtype, is_complex, shape)
        if shape.is_scalar and len(expr.rows) == 1 and len(expr.rows[0]) == 1:
            inner = self.spec.node_types[id(expr.rows[0][0])][0]
            result = MType(dtype, is_complex, shape, inner.value)
        return self._record(expr, [result])

    def _expr_CallIndex(self, expr: ast.CallIndex, env: Environment) -> MType:
        return self._infer_call_multi(expr, env, nargout=1)[0]

    def _expr_AnonFunc(self, expr: ast.AnonFunc, env: Environment) -> MType:
        self.unsupported(
            "anonymous functions are not supported for code generation",
            expr.span)

    def _expr_FuncHandle(self, expr: ast.FuncHandle, env: Environment) -> MType:
        self.unsupported(
            "function handles are not supported for code generation",
            expr.span)

    # ------------------------------------------------------------------
    # Calls and indexing
    # ------------------------------------------------------------------

    def _infer_call_multi(self, expr: ast.CallIndex, env: Environment,
                          nargout: int,
                          record_node: ast.Expr | None = None) -> list[MType]:
        record_node = record_node or expr
        if not isinstance(expr.target, ast.Identifier):
            self.unsupported(
                "indexing the result of an expression is not supported; "
                "assign it to a variable first", expr.span)
        name = expr.target.name

        symbol = env.lookup(name)
        if symbol is not None:
            # Array (or scalar) indexing.
            self.spec.call_kinds[id(expr)] = "index"
            self._record(expr.target, [symbol.mtype])
            region = self._infer_subscripts(expr, symbol.mtype, env)
            result = MType(symbol.mtype.dtype, symbol.mtype.is_complex, region)
            self._record(record_node, [result])
            if record_node is not expr:
                self._record(expr, [result])
            return [result]

        func = self.owner.registry.lookup(name) or library.lookup(name)
        if func is not None:
            arg_types = []
            for arg in expr.args:
                arg_t = self.infer_expr(arg, env)
                # Keep compile-time-constant scalars across the call
                # boundary: callees value-specialize on them, which is
                # how sizes like hann_window(length(y)) stay static.
                if not (arg_t.is_scalar and arg_t.value is not None):
                    arg_t = arg_t.without_value()
                arg_types.append(arg_t)
            spec = self.owner.specialize(name, arg_types)
            self.spec.call_kinds[id(expr)] = "call"
            self.spec.call_targets[id(expr)] = spec.mangled_name
            results = spec.result_types or [MType.double()]
            self._record(record_node, results)
            if record_node is not expr:
                self._record(expr, results)
            return results

        builtin = builtins.lookup(name)
        if builtin is not None:
            if not builtin.min_args <= len(expr.args) <= builtin.max_args:
                self.error(
                    f"{name}() takes {builtin.min_args}..{builtin.max_args} "
                    f"argument(s), got {len(expr.args)}", expr.span)
            arg_types = [self.infer_expr(arg, env) for arg in expr.args]
            results = builtin.infer(arg_types, expr, self)
            self.spec.call_kinds[id(expr)] = "builtin"
            self._record(record_node, results or [MType.double()])
            if record_node is not expr:
                self._record(expr, results or [MType.double()])
            return results or [MType.double()]

        self.error(f"undefined variable or function {name!r}", expr.span)

    def _infer_subscripts(self, expr: ast.CallIndex, array_t: MType,
                          env: Environment) -> Shape:
        """Shape selected by the subscripts of ``expr`` into ``array_t``."""
        nargs = len(expr.args)
        if nargs == 0:
            return array_t.shape
        if nargs > 2:
            self.error("at most two subscripts are supported", expr.span)
        ctx = _IndexContext(array_t, nargs)
        self._index_stack.append(ctx)
        try:
            counts: list[tuple[int | None, bool]] = []  # (count, is_colon)
            for position, arg in enumerate(expr.args):
                ctx.position = position
                if isinstance(arg, ast.ColonAll):
                    self._record(arg, [MType.double()])
                    counts.append((None, True))
                    continue
                sub_t = self.infer_expr(arg, env)
                if sub_t.dtype is DType.LOGICAL and not sub_t.is_scalar:
                    self.unsupported(
                        "logical indexing is not supported for code "
                        "generation", arg.span)
                if sub_t.is_scalar:
                    counts.append((1, False))
                elif sub_t.is_vector:
                    counts.append((sub_t.shape.numel(), False))
                else:
                    self.error("subscript must be a scalar or vector",
                               arg.span)
        finally:
            self._index_stack.pop()

        shape = array_t.shape
        if nargs == 1:
            count, is_colon = counts[0]
            if is_colon:  # x(:) -> column of all elements
                return Shape(shape.numel(), 1)
            if count == 1:
                return SCALAR
            # Linear indexing with a vector keeps the subscript's
            # orientation; we get that from the recorded node type.
            sub_t = self.spec.node_types[id(expr.args[0])][0]
            return sub_t.shape
        row_count = shape.rows if counts[0][1] else counts[0][0]
        col_count = shape.cols if counts[1][1] else counts[1][0]
        return Shape(row_count, col_count)


# ----------------------------------------------------------------------
# Constant folding helpers
# ----------------------------------------------------------------------


def _fold_unary(op: str, value):
    if value is None or isinstance(value, str):
        return None
    try:
        if op == "-":
            return -value
        if op == "+":
            return value
        if op == "~":
            return not bool(value)
    except TypeError:
        return None
    return None


def _fold_binop(op: str, a, b):
    if a is None or b is None or isinstance(a, str) or isinstance(b, str):
        return None
    try:
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op in ("*", ".*"):
            return a * b
        if op in ("/", "./"):
            return a / b if b != 0 else None
        if op in ("\\", ".\\"):
            return b / a if a != 0 else None
        if op in ("^", ".^"):
            result = a ** b
            return result if not isinstance(result, complex) or \
                isinstance(a, complex) or isinstance(b, complex) else result
        if op == "==":
            return a == b
        if op == "~=":
            return a != b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        if op in ("&", "&&"):
            return bool(a) and bool(b)
        if op in ("|", "||"):
            return bool(a) or bool(b)
    except (TypeError, ValueError, OverflowError, ZeroDivisionError):
        return None
    return None


def _range_count(start, stop, step) -> int | None:
    """Number of elements of start:step:stop when all are constants.

    Delegates to the shared fencepost rule in :mod:`repro.numeric` —
    the same one the golden interpreter evaluates at run time — so a
    compiled range can never differ in length from an interpreted one.
    """
    for v in (start, stop, step):
        if v is None or isinstance(v, (complex, str)):
            return None
    try:
        return numeric.range_count(float(start), float(step), float(stop))
    except OverflowError:
        return None


def _merge_union(a: Environment, b: Environment) -> Environment:
    """Union-join of two environments.

    Names present in both are type-joined; names present in only one
    survive unchanged (the C backend declares every local up front, so a
    variable assigned in a single branch is still declarable).
    """
    merged = a.copy()
    for name in b.names():
        sym_b = b.lookup(name)
        sym_a = a.lookup(name)
        if sym_a is None:
            merged.define(name, sym_b.mtype, sym_b.span,
                          is_param=sym_b.is_param, is_loop_var=sym_b.is_loop_var)
        elif sym_a.mtype != sym_b.mtype:
            merged.define(name, sym_a.mtype.join(sym_b.mtype), sym_a.span,
                          is_param=sym_a.is_param, is_loop_var=sym_a.is_loop_var)
    return merged


def specialize_program(program: ast.Program, entry: str,
                       arg_types: list[MType],
                       source: SourceFile | None = None) -> SpecializedProgram:
    """Analyze ``program`` starting from ``entry`` with ``arg_types``."""
    inferencer = Inferencer(program, source)
    entry_spec = inferencer.specialize(entry, arg_types)
    return SpecializedProgram(
        entry=entry_spec,
        functions=dict(inferencer.specialized),
        source=source,
    )
