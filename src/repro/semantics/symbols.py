"""Symbol tables and function registry for semantic analysis."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import ast_nodes as ast
from repro.frontend.source import Span
from repro.semantics.types import MType


@dataclass
class Symbol:
    """A local variable binding inside one function specialization."""

    name: str
    mtype: MType
    span: Span
    is_param: bool = False
    is_loop_var: bool = False


class Environment:
    """A flat (function-scope) mapping from names to symbols.

    MATLAB has no block scoping: a variable assigned anywhere in the
    function is function-scoped, so a single flat table per function
    suffices.  Copy/join support control-flow merges during inference.
    """

    def __init__(self, symbols: dict[str, Symbol] | None = None):
        self._symbols: dict[str, Symbol] = dict(symbols or {})

    def define(self, name: str, mtype: MType, span: Span, *, is_param: bool = False,
               is_loop_var: bool = False) -> Symbol:
        symbol = Symbol(name, mtype, span, is_param=is_param, is_loop_var=is_loop_var)
        self._symbols[name] = symbol
        return symbol

    def lookup(self, name: str) -> Symbol | None:
        return self._symbols.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def names(self) -> list[str]:
        return list(self._symbols)

    def copy(self) -> "Environment":
        return Environment({k: Symbol(v.name, v.mtype, v.span, is_param=v.is_param,
                                      is_loop_var=v.is_loop_var)
                            for k, v in self._symbols.items()})

    def join(self, other: "Environment") -> "Environment":
        """Merge two branch environments; only common names survive."""
        merged: dict[str, Symbol] = {}
        for name, sym in self._symbols.items():
            other_sym = other._symbols.get(name)
            if other_sym is None:
                continue
            merged[name] = Symbol(
                name,
                sym.mtype.join(other_sym.mtype),
                sym.span,
                is_param=sym.is_param,
                is_loop_var=sym.is_loop_var,
            )
        return Environment(merged)

    def same_types(self, other: "Environment") -> bool:
        if set(self._symbols) != set(other._symbols):
            return False
        return all(self._symbols[n].mtype == other._symbols[n].mtype for n in self._symbols)


@dataclass
class FunctionRegistry:
    """All user-defined functions of one compilation unit, by name."""

    functions: dict[str, ast.Function] = field(default_factory=dict)

    @staticmethod
    def from_program(program: ast.Program) -> "FunctionRegistry":
        registry = FunctionRegistry()
        for func in program.functions:
            registry.functions[func.name] = func
        return registry

    def lookup(self, name: str) -> ast.Function | None:
        return self.functions.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self.functions
