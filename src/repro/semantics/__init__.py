"""Semantic analysis: types, shapes, builtins, inference."""
