"""MATLAB type lattice.

A value's static type is an :class:`MType`: a numeric class
(:class:`DType`), a complex flag, a 2-D :class:`~repro.semantics.shapes.Shape`,
and optionally a compile-time constant value.  Constant tracking is what
lets ``y = zeros(1, N)`` with ``N = length(x)`` produce a statically sized
C array when the entry point's argument shapes are concrete (the same
mechanism MATLAB Coder's ``-args`` specification relies on).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.semantics.shapes import SCALAR, Shape


class DType(enum.Enum):
    """Numeric classes, ordered by promotion rank."""

    CHAR = -1
    LOGICAL = 0
    INT8 = 1
    INT16 = 2
    INT32 = 3
    SINGLE = 4
    DOUBLE = 5

    @property
    def is_integer(self) -> bool:
        return self in (DType.INT8, DType.INT16, DType.INT32)

    @property
    def is_float(self) -> bool:
        return self in (DType.SINGLE, DType.DOUBLE)

    def join(self, other: "DType") -> "DType":
        """MATLAB class combination.

        Mostly the promotion-rank upper bound, with MATLAB's twists that
        the *narrower* class dominates mixed expressions: ``single``
        beats ``double``, and integer classes beat floats (an int16
        array times a double literal stays int16).  Two different
        integer classes (an error in MATLAB) join to the wider one.
        """
        pair = {self, other}
        if pair == {DType.SINGLE, DType.DOUBLE}:
            return DType.SINGLE
        if self.is_integer and other.is_float:
            return self
        if other.is_integer and self.is_float:
            return other
        return self if self.value >= other.value else other

    @property
    def c_name(self) -> str:
        return _C_NAMES[self]

    @property
    def short_name(self) -> str:
        return _SHORT_NAMES[self]


_C_NAMES = {
    DType.CHAR: "char",
    DType.LOGICAL: "int",
    DType.INT8: "signed char",
    DType.INT16: "short",
    DType.INT32: "int",
    DType.SINGLE: "float",
    DType.DOUBLE: "double",
}

_SHORT_NAMES = {
    DType.CHAR: "char",
    DType.LOGICAL: "logical",
    DType.INT8: "int8",
    DType.INT16: "int16",
    DType.INT32: "int32",
    DType.SINGLE: "single",
    DType.DOUBLE: "double",
}

_BY_SHORT_NAME = {v: k for k, v in _SHORT_NAMES.items()}


def dtype_from_name(name: str) -> DType | None:
    """Map a MATLAB class name ('double', 'int16', ...) to a DType."""
    return _BY_SHORT_NAME.get(name)


@dataclass(frozen=True)
class MType:
    """Static type of a MATLAB value.

    Attributes:
        dtype: numeric class.
        is_complex: True for complex values.
        shape: 2-D shape (scalars are (1, 1)).
        value: compile-time constant value when known (int/float/complex
            for scalars; used for shape propagation and loop analysis).
    """

    dtype: DType = DType.DOUBLE
    is_complex: bool = False
    shape: Shape = SCALAR
    value: object = None

    # -- constructors ---------------------------------------------------

    @staticmethod
    def scalar(dtype: DType = DType.DOUBLE, is_complex: bool = False,
               value: object = None) -> "MType":
        return MType(dtype=dtype, is_complex=is_complex, shape=SCALAR, value=value)

    @staticmethod
    def double(value: float | None = None) -> "MType":
        return MType.scalar(DType.DOUBLE, value=value)

    @staticmethod
    def logical(value: bool | None = None) -> "MType":
        return MType.scalar(DType.LOGICAL, value=value)

    @staticmethod
    def array(dtype: DType, rows, cols, is_complex: bool = False) -> "MType":
        return MType(dtype=dtype, is_complex=is_complex, shape=Shape(rows, cols))

    # -- queries --------------------------------------------------------

    @property
    def is_scalar(self) -> bool:
        return self.shape.is_scalar

    @property
    def is_vector(self) -> bool:
        return self.shape.is_vector

    @property
    def is_constant(self) -> bool:
        return self.value is not None

    # -- derived types ---------------------------------------------------

    def with_shape(self, shape: Shape) -> "MType":
        return replace(self, shape=shape, value=None if not shape.is_scalar else self.value)

    def without_value(self) -> "MType":
        return replace(self, value=None) if self.value is not None else self

    def as_real(self) -> "MType":
        return replace(self, is_complex=False, value=None)

    def as_complex(self) -> "MType":
        return replace(self, is_complex=True, value=None)

    def element_type(self) -> "MType":
        """The type of a single element of this value."""
        return MType(dtype=self.dtype, is_complex=self.is_complex, shape=SCALAR)

    def join(self, other: "MType") -> "MType":
        """Least upper bound, used at control-flow merges."""
        shape = self.shape.join(other.shape)
        value = self.value if self.value == other.value else None
        # Mixed int/float joins to float in this compiler's model.
        dtype = self.dtype.join(other.dtype)
        return MType(
            dtype=dtype,
            is_complex=self.is_complex or other.is_complex,
            shape=shape,
            value=value,
        )

    def describe(self) -> str:
        base = self.dtype.short_name
        if self.is_complex:
            base = "complex " + base
        if self.shape.is_scalar:
            text = base
        else:
            text = f"{base} {self.shape.describe()}"
        if self.value is not None:
            text += f" (= {self.value!r})"
        return text


#: Convenient shared instances.
DOUBLE = MType.double()
LOGICAL = MType.logical()
INT32 = MType.scalar(DType.INT32)


def promote_binary(a: MType, b: MType) -> tuple[DType, bool]:
    """Numeric promotion for a binary arithmetic op: (dtype, is_complex)."""
    dtype = a.dtype.join(b.dtype)
    # Logical operands participate in arithmetic as doubles, like MATLAB.
    if dtype is DType.LOGICAL:
        dtype = DType.DOUBLE
    return dtype, a.is_complex or b.is_complex
