"""Compiler-library functions written in MATLAB.

``fft``/``ifft``/``conv``/``filter`` are lowered not by hand-written IR
templates but by *MATLAB source shipped with the compiler*: when user
code calls one of them, the inferencer specializes the library source
exactly like a user function (value-specializing on lengths), and every
later stage — optimization, vectorization, instruction selection — sees
plain loops it already knows how to handle.  This mirrors how production
MATLAB-to-C flows bootstrap their runtime, and means the SIMD vectorizer
applies to library kernels for free.

The sources below use only the supported subset.  Orientation-generic
code (row vs column results) relies on compile-time branch pruning: with
concrete input shapes, ``size(x, 1) > 1`` is a constant and the dead
branch is discarded before it can confuse shape inference.
"""

from __future__ import annotations

from functools import lru_cache

from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse

#: MATLAB sources of the library kernels, keyed by the public name.
LIBRARY_SOURCES: dict[str, str] = {
    "fft": """
function y = fft(x)
% Iterative radix-2 DIT FFT.  Each stage fills a twiddle table and then
% runs butterflies over contiguous index ranges, so the hot loops are
% unit-stride and SIMD-vectorizable on complex-capable targets.
n = length(x);
if size(x, 1) > 1
    y = complex(zeros(n, 1), zeros(n, 1));
else
    y = complex(zeros(1, n), zeros(1, n));
end
W = complex(zeros(1, n), zeros(1, n));
% Bit-reversed copy via the classic j-update walk (O(1) amortized per
% element; no per-bit mod/floor arithmetic in the hot path).
jj = 1;
for i = 1:n
    y(jj) = x(i);
    m = floor(n / 2);
    while m >= 1 && jj > m
        jj = jj - m;
        m = floor(m / 2);
    end
    jj = jj + m;
end
len = 2;
while len <= n
    half = len / 2;
    ang = -2 * pi / len;
    for s = 1:half
        W(s) = complex(cos(ang * (s - 1)), sin(ang * (s - 1)));
    end
    base = 0;
    while base < n
        for s = 1:half
            a = y(base + s);
            bb = y(base + half + s) * W(s);
            y(base + s) = a + bb;
            y(base + half + s) = a - bb;
        end
        base = base + len;
    end
    len = len * 2;
end
end
""",
    "ifft": """
function y = ifft(x)
% Inverse radix-2 FFT: conjugate twiddles plus a 1/n scaling pass.
n = length(x);
if size(x, 1) > 1
    y = complex(zeros(n, 1), zeros(n, 1));
else
    y = complex(zeros(1, n), zeros(1, n));
end
W = complex(zeros(1, n), zeros(1, n));
% Bit-reversed copy via the classic j-update walk (O(1) amortized per
% element; no per-bit mod/floor arithmetic in the hot path).
jj = 1;
for i = 1:n
    y(jj) = x(i);
    m = floor(n / 2);
    while m >= 1 && jj > m
        jj = jj - m;
        m = floor(m / 2);
    end
    jj = jj + m;
end
len = 2;
while len <= n
    half = len / 2;
    ang = 2 * pi / len;
    for s = 1:half
        W(s) = complex(cos(ang * (s - 1)), sin(ang * (s - 1)));
    end
    base = 0;
    while base < n
        for s = 1:half
            a = y(base + s);
            bb = y(base + half + s) * W(s);
            y(base + s) = a + bb;
            y(base + half + s) = a - bb;
        end
        base = base + len;
    end
    len = len * 2;
end
scale = 1 / n;
for i = 1:n
    y(i) = y(i) * scale;
end
end
""",
    "conv": """
function y = conv(x, h)
n = length(x);
m = length(h);
L = n + m - 1;
if size(x, 1) > 1 && size(h, 1) > 1
    y = zeros(L, 1);
else
    y = zeros(1, L);
end
for k = 1:L
    acc = 0;
    jlo = max(1, k - m + 1);
    jhi = min(k, n);
    for jj = jlo:jhi
        acc = acc + x(jj) * h(k - jj + 1);
    end
    y(k) = acc;
end
end
""",
    "filter": """
function y = filter(b, a, x)
n = length(x);
nb = length(b);
na = length(a);
if size(x, 1) > 1
    y = zeros(n, 1);
else
    y = zeros(1, n);
end
a0 = a(1);
for i = 1:n
    acc = 0;
    kmax = min(i, nb);
    for k = 1:kmax
        acc = acc + b(k) * x(i - k + 1);
    end
    jmax = min(i - 1, na - 1);
    for jj = 1:jmax
        acc = acc - a(jj + 1) * y(i - jj);
    end
    y(i) = acc / a0;
end
end
""",
}


def check_precondition(name: str, arg_types) -> str | None:
    """Compile-time preconditions of library kernels.

    Returns an error message when ``name`` cannot be specialized on
    ``arg_types`` (e.g. the radix-2 FFT needs a power-of-two length).
    """
    if name in ("fft", "ifft") and arg_types:
        n = arg_types[0].shape.numel()
        if n is not None and n > 1 and n & (n - 1):
            return (f"{name}(): length {n} is not a power of two "
                    "(radix-2 implementation)")
    if name == "filter" and len(arg_types) == 3:
        if arg_types[1].shape.numel() == 0:
            return "filter(): denominator coefficient vector is empty"
    return None


@lru_cache(maxsize=None)
def _parse_library_function(name: str) -> ast.Function:
    program = parse(LIBRARY_SOURCES[name], filename=f"<library:{name}>")
    return program.functions[0]


def lookup(name: str) -> ast.Function | None:
    """The library implementation of ``name``, or None."""
    if name not in LIBRARY_SOURCES:
        return None
    return _parse_library_function(name)


def is_library_function(name: str) -> bool:
    return name in LIBRARY_SOURCES
