"""2-D shape algebra for MATLAB values.

Every MATLAB value in the supported subset is a 2-D array; scalars are
(1, 1).  A dimension is either a concrete non-negative ``int`` or ``None``
meaning statically unknown.  The backend requires concrete shapes, so
``None`` dims surviving to codegen produce a diagnostic pointing at the
allocation that lost the information.
"""

from __future__ import annotations

from dataclasses import dataclass

Dim = int | None


def dims_equal(a: Dim, b: Dim) -> bool | None:
    """Three-valued dim comparison: True/False when decidable, else None."""
    if a is None or b is None:
        return None
    return a == b


def dim_join(a: Dim, b: Dim) -> Dim:
    return a if a == b else None


@dataclass(frozen=True)
class Shape:
    """A (rows, cols) shape; either dim may be statically unknown."""

    rows: Dim = 1
    cols: Dim = 1

    # -- queries --------------------------------------------------------

    @property
    def is_scalar(self) -> bool:
        return self.rows == 1 and self.cols == 1

    @property
    def is_row(self) -> bool:
        return self.rows == 1

    @property
    def is_col(self) -> bool:
        return self.cols == 1

    @property
    def is_vector(self) -> bool:
        return self.rows == 1 or self.cols == 1

    @property
    def is_concrete(self) -> bool:
        return self.rows is not None and self.cols is not None

    def numel(self) -> Dim:
        if self.rows is None or self.cols is None:
            return None
        return self.rows * self.cols

    def length(self) -> Dim:
        """MATLAB length(): max dimension (0 for empty)."""
        if self.rows is None or self.cols is None:
            return None
        if self.rows == 0 or self.cols == 0:
            return 0
        return max(self.rows, self.cols)

    def dim(self, d: int) -> Dim:
        """size(x, d) with 1-based d."""
        if d == 1:
            return self.rows
        if d == 2:
            return self.cols
        return 1

    # -- algebra ----------------------------------------------------------

    def transpose(self) -> "Shape":
        return Shape(self.cols, self.rows)

    def join(self, other: "Shape") -> "Shape":
        return Shape(dim_join(self.rows, other.rows), dim_join(self.cols, other.cols))

    def elementwise(self, other: "Shape") -> "Shape | None":
        """Result shape of an element-wise op with scalar expansion.

        Returns None when the shapes provably conflict.  (Implicit
        broadcasting of non-scalar dims — a post-R2016b feature — is
        deliberately not implemented, matching the paper's era.)
        """
        if self.is_scalar:
            return other
        if other.is_scalar:
            return self
        rows = dims_equal(self.rows, other.rows)
        cols = dims_equal(self.cols, other.cols)
        if rows is False or cols is False:
            return None
        return Shape(
            self.rows if self.rows is not None else other.rows,
            self.cols if self.cols is not None else other.cols,
        )

    def matmul(self, other: "Shape") -> "Shape | None":
        """Result shape of ``self * other`` (matrix product rules)."""
        if self.is_scalar:
            return other
        if other.is_scalar:
            return self
        inner = dims_equal(self.cols, other.rows)
        if inner is False:
            return None
        return Shape(self.rows, other.cols)

    def hcat(self, other: "Shape") -> "Shape | None":
        rows = dims_equal(self.rows, other.rows)
        if rows is False:
            return None
        if self.cols is None or other.cols is None:
            cols: Dim = None
        else:
            cols = self.cols + other.cols
        return Shape(self.rows if self.rows is not None else other.rows, cols)

    def vcat(self, other: "Shape") -> "Shape | None":
        cols = dims_equal(self.cols, other.cols)
        if cols is False:
            return None
        if self.rows is None or other.rows is None:
            rows: Dim = None
        else:
            rows = self.rows + other.rows
        return Shape(rows, self.cols if self.cols is not None else other.cols)

    def describe(self) -> str:
        def show(d: Dim) -> str:
            return "?" if d is None else str(d)

        return f"[{show(self.rows)}x{show(self.cols)}]"


#: Shared shapes.
SCALAR = Shape(1, 1)
EMPTY = Shape(0, 0)


def row(n: Dim) -> Shape:
    return Shape(1, n)


def col(n: Dim) -> Shape:
    return Shape(n, 1)
