"""Builtin-function signature registry.

Each supported MATLAB builtin is described by a :class:`Builtin` record:
its arity, a *lowering kind* consumed by the IR builder, and an ``infer``
callback computing result types (with compile-time constants where
derivable, e.g. ``length(x)`` of a concretely shaped ``x``).

The inference context passed to the callbacks only needs an
``error(message, span)`` method; the real one is the type inferencer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.frontend import ast_nodes as ast
from repro.semantics.shapes import SCALAR, Shape
from repro.semantics.types import DType, MType, dtype_from_name, promote_binary

InferFn = Callable[[list[MType], ast.CallIndex, object], list[MType]]


@dataclass(frozen=True)
class Builtin:
    """Signature and lowering metadata of one builtin."""

    name: str
    min_args: int
    max_args: int
    kind: str  # lowering strategy tag (see repro.ir.builder)
    infer: InferFn
    nargout: int = 1


REGISTRY: dict[str, Builtin] = {}


def register(name: str, min_args: int, max_args: int, kind: str, nargout: int = 1):
    """Decorator registering a builtin's inference rule."""

    def wrap(fn: InferFn) -> InferFn:
        REGISTRY[name] = Builtin(name, min_args, max_args, kind, fn, nargout)
        return fn

    return wrap


def lookup(name: str) -> Builtin | None:
    return REGISTRY.get(name)


def is_builtin(name: str) -> bool:
    return name in REGISTRY


# ----------------------------------------------------------------------
# Constants (zero-argument "functions" usable without parentheses)
# ----------------------------------------------------------------------

CONSTANTS: dict[str, MType] = {
    "pi": MType.double(math.pi),
    "eps": MType.double(2.220446049250313e-16),
    "Inf": MType.double(math.inf),
    "inf": MType.double(math.inf),
    "NaN": MType.double(math.nan),
    "nan": MType.double(math.nan),
    "true": MType.logical(True),
    "false": MType.logical(False),
    "i": MType.scalar(DType.DOUBLE, is_complex=True, value=1j),
    "j": MType.scalar(DType.DOUBLE, is_complex=True, value=1j),
    "1i": MType.scalar(DType.DOUBLE, is_complex=True, value=1j),
}


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _const_dim(t: MType) -> int | None:
    """Extract a non-negative int dimension from a constant scalar type."""
    if t.value is None or isinstance(t.value, complex):
        return None
    try:
        value = float(t.value)
    except (TypeError, ValueError):
        return None
    if value < 0 or value != int(value):
        return None
    return int(value)


def _constructor_shape(args: list[MType]) -> Shape:
    """Shape rules shared by zeros/ones/rand: (), (n) -> n x n, (m, n)."""
    if not args:
        return SCALAR
    if len(args) == 1:
        n = _const_dim(args[0])
        return Shape(n, n)
    return Shape(_const_dim(args[0]), _const_dim(args[1]))


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------


@register("zeros", 0, 2, "constructor")
def _infer_zeros(args, call, ctx):
    return [MType(DType.DOUBLE, False, _constructor_shape(args))]


@register("ones", 0, 2, "constructor")
def _infer_ones(args, call, ctx):
    return [MType(DType.DOUBLE, False, _constructor_shape(args))]


@register("eye", 0, 2, "constructor")
def _infer_eye(args, call, ctx):
    return [MType(DType.DOUBLE, False, _constructor_shape(args))]


@register("linspace", 2, 3, "constructor")
def _infer_linspace(args, call, ctx):
    n = 100 if len(args) < 3 else _const_dim(args[2])
    return [MType(DType.DOUBLE, False, Shape(1, n))]


@register("complex", 1, 2, "elemwise")
def _infer_complex(args, call, ctx):
    shape = args[0].shape
    if len(args) == 2:
        combined = shape.elementwise(args[1].shape)
        if combined is None:
            ctx.error(
                f"complex(): shapes {args[0].shape.describe()} and "
                f"{args[1].shape.describe()} do not conform", call.span)
            combined = shape
        shape = combined
    dtype = args[0].dtype if len(args) == 1 else args[0].dtype.join(args[1].dtype)
    return [MType(dtype if dtype.is_float else DType.DOUBLE, True, shape)]


# ----------------------------------------------------------------------
# Shape queries (resolved at compile time whenever shapes are concrete)
# ----------------------------------------------------------------------


@register("length", 1, 1, "query")
def _infer_length(args, call, ctx):
    return [MType.double(None if (n := args[0].shape.length()) is None else float(n))]


@register("numel", 1, 1, "query")
def _infer_numel(args, call, ctx):
    return [MType.double(None if (n := args[0].shape.numel()) is None else float(n))]


@register("size", 1, 2, "query", nargout=2)
def _infer_size(args, call, ctx):
    shape = args[0].shape
    if len(args) == 2:
        d = _const_dim(args[1])
        if d is None:
            ctx.error("size(x, d): dimension must be a compile-time constant", call.span)
            return [MType.double()]
        dim = shape.dim(d)
        return [MType.double(None if dim is None else float(dim))]
    rows = MType.double(None if shape.rows is None else float(shape.rows))
    cols = MType.double(None if shape.cols is None else float(shape.cols))
    return [rows, cols]


@register("isreal", 1, 1, "query")
def _infer_isreal(args, call, ctx):
    return [MType.logical(not args[0].is_complex)]


@register("isempty", 1, 1, "query")
def _infer_isempty(args, call, ctx):
    n = args[0].shape.numel()
    return [MType.logical(None if n is None else n == 0)]


# ----------------------------------------------------------------------
# Element-wise math
# ----------------------------------------------------------------------


#: Compile-time evaluation of element-wise builtins on constant scalars
#: (keeps sizes like floor(n/2) statically known).
_CONST_FOLDERS = {
    "abs": abs,
    "floor": lambda v: float(math.floor(v)),
    "ceil": lambda v: float(math.ceil(v)),
    "round": lambda v: float(math.floor(v + 0.5)) if v >= 0
    else float(math.ceil(v - 0.5)),
    "fix": lambda v: float(math.trunc(v)),
    "sign": lambda v: float((v > 0) - (v < 0)),
    "sqrt": lambda v: math.sqrt(v) if v >= 0 else None,
    "exp": math.exp,
    "log": lambda v: math.log(v) if v > 0 else None,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "atan": math.atan,
    "real": lambda v: v,
    "conj": lambda v: v,
    "imag": lambda v: 0.0,
}


def _fold_const(fn_name: str, arg: MType):
    folder = _CONST_FOLDERS.get(fn_name)
    if folder is None or arg.value is None or \
            isinstance(arg.value, (complex, str)):
        return None
    try:
        return folder(float(arg.value))
    except (TypeError, ValueError, OverflowError):
        return None


def _elemwise_real(fn_name: str, complex_ok: bool = True):
    def infer(args, call, ctx):
        arg = args[0]
        if arg.is_complex and not complex_ok:
            ctx.error(f"{fn_name}() does not accept complex input", call.span)
        dtype = arg.dtype if arg.dtype.is_float else DType.DOUBLE
        return [MType(dtype, False, arg.shape, _fold_const(fn_name, arg))]

    return infer


def _elemwise_keep(fn_name: str):
    def infer(args, call, ctx):
        arg = args[0]
        dtype = arg.dtype if arg.dtype.is_float else DType.DOUBLE
        value = None if arg.is_complex else _fold_const(fn_name, arg)
        return [MType(dtype, arg.is_complex, arg.shape, value)]

    return infer


register("abs", 1, 1, "elemwise")(_elemwise_real("abs"))
register("real", 1, 1, "elemwise")(_elemwise_real("real"))
register("imag", 1, 1, "elemwise")(_elemwise_real("imag"))
register("angle", 1, 1, "elemwise")(_elemwise_real("angle"))
register("conj", 1, 1, "elemwise")(_elemwise_keep("conj"))
register("exp", 1, 1, "elemwise")(_elemwise_keep("exp"))
register("log", 1, 1, "elemwise")(_elemwise_keep("log"))
register("sin", 1, 1, "elemwise")(_elemwise_keep("sin"))
register("cos", 1, 1, "elemwise")(_elemwise_keep("cos"))
register("tan", 1, 1, "elemwise")(_elemwise_keep("tan"))
register("atan", 1, 1, "elemwise")(_elemwise_keep("atan"))
register("floor", 1, 1, "elemwise")(_elemwise_real("floor", complex_ok=False))
register("ceil", 1, 1, "elemwise")(_elemwise_real("ceil", complex_ok=False))
register("round", 1, 1, "elemwise")(_elemwise_real("round", complex_ok=False))
register("fix", 1, 1, "elemwise")(_elemwise_real("fix", complex_ok=False))
register("sign", 1, 1, "elemwise")(_elemwise_real("sign", complex_ok=False))


@register("sqrt", 1, 1, "elemwise")
def _infer_sqrt(args, call, ctx):
    arg = args[0]
    dtype = arg.dtype if arg.dtype.is_float else DType.DOUBLE
    # sqrt of a (possibly negative) real stays real in this subset;
    # a negative-argument sqrt is a user error the interpreter flags.
    return [MType(dtype, arg.is_complex, arg.shape)]


def _binary_elemwise(fn_name: str):
    def infer(args, call, ctx):
        a, b = args
        shape = a.shape.elementwise(b.shape)
        if shape is None:
            ctx.error(
                f"{fn_name}(): shapes {a.shape.describe()} and "
                f"{b.shape.describe()} do not conform", call.span)
            shape = a.shape
        dtype, is_complex = promote_binary(a, b)
        return [MType(dtype, is_complex, shape)]

    return infer


register("mod", 2, 2, "binary_elemwise")(_binary_elemwise("mod"))
register("rem", 2, 2, "binary_elemwise")(_binary_elemwise("rem"))
register("atan2", 2, 2, "binary_elemwise")(_binary_elemwise("atan2"))
register("hypot", 2, 2, "binary_elemwise")(_binary_elemwise("hypot"))
register("power", 2, 2, "binary_elemwise")(_binary_elemwise("power"))


# ----------------------------------------------------------------------
# Class casts
# ----------------------------------------------------------------------


def _cast(to_name: str):
    dtype = dtype_from_name(to_name)

    def infer(args, call, ctx):
        arg = args[0]
        return [MType(dtype, arg.is_complex and dtype.is_float, arg.shape)]

    return infer


for _name in ("double", "single", "int8", "int16", "int32", "logical"):
    register(_name, 1, 1, "cast")(_cast(_name))


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------


def _reduction_shape(shape: Shape, dim: int | None) -> Shape:
    """Shape of sum/prod/mean along ``dim`` (MATLAB default-dim rules)."""
    if dim is None:
        dim = 1 if not shape.is_row and not shape.is_scalar else 2
        if shape.is_vector:
            return SCALAR
    if dim == 1:
        return Shape(1, shape.cols)
    return Shape(shape.rows, 1)


def _reduce(fn_name: str):
    def infer(args, call, ctx):
        arg = args[0]
        dim = _const_dim(args[1]) if len(args) == 2 else None
        if len(args) == 2 and dim is None:
            ctx.error(f"{fn_name}(x, dim): dim must be a compile-time constant",
                      call.span)
            dim = 1
        dtype = arg.dtype if arg.dtype.is_float else DType.DOUBLE
        return [MType(dtype, arg.is_complex, _reduction_shape(arg.shape, dim))]

    return infer


register("sum", 1, 2, "reduction")(_reduce("sum"))
register("prod", 1, 2, "reduction")(_reduce("prod"))
register("mean", 1, 2, "reduction")(_reduce("mean"))


@register("min", 1, 2, "minmax", nargout=2)
def _infer_min(args, call, ctx):
    return _minmax(args, call, ctx, "min")


@register("max", 1, 2, "minmax", nargout=2)
def _infer_max(args, call, ctx):
    return _minmax(args, call, ctx, "max")


def _minmax(args, call, ctx, fn_name):
    if len(args) == 2:
        # Element-wise two-argument form.
        a, b = args
        shape = a.shape.elementwise(b.shape)
        if shape is None:
            ctx.error(
                f"{fn_name}(): shapes {a.shape.describe()} and "
                f"{b.shape.describe()} do not conform", call.span)
            shape = a.shape
        dtype, _ = promote_binary(a, b)
        if a.is_complex or b.is_complex:
            ctx.error(f"{fn_name}() on complex values is not supported", call.span)
        return [MType(dtype, False, shape)]
    arg = args[0]
    if arg.is_complex:
        ctx.error(f"{fn_name}() on complex values is not supported", call.span)
    dtype = arg.dtype if arg.dtype.is_float else DType.DOUBLE
    value = MType(dtype, False, _reduction_shape(arg.shape, None))
    index = MType(DType.DOUBLE, False, value.shape)
    return [value, index]


@register("norm", 1, 1, "norm")
def _infer_norm(args, call, ctx):
    a = args[0]
    if not a.is_vector:
        ctx.error("norm() supports vectors only in this subset", call.span)
    dtype = a.dtype if a.dtype.is_float else DType.DOUBLE
    return [MType(dtype, False, SCALAR)]


def _infer_var_like(fn_name):
    def infer(args, call, ctx):
        a = args[0]
        if not a.is_vector:
            ctx.error(f"{fn_name}() supports vectors only in this subset",
                      call.span)
        if a.is_complex:
            ctx.error(f"{fn_name}() on complex values is not supported",
                      call.span)
        dtype = a.dtype if a.dtype.is_float else DType.DOUBLE
        return [MType(dtype, False, SCALAR)]

    return infer


register("var", 1, 1, "var")(_infer_var_like("var"))
register("std", 1, 1, "std")(_infer_var_like("std"))


def _infer_any_all(fn_name):
    def infer(args, call, ctx):
        a = args[0]
        if not a.is_vector:
            ctx.error(f"{fn_name}() supports vectors only in this subset",
                      call.span)
        return [MType(DType.LOGICAL, False, SCALAR)]

    return infer


register("any", 1, 1, "any")(_infer_any_all("any"))
register("all", 1, 1, "all")(_infer_any_all("all"))


@register("cumsum", 1, 1, "cumsum")
def _infer_cumsum(args, call, ctx):
    a = args[0]
    if not a.is_vector:
        ctx.error("cumsum() supports vectors only in this subset",
                  call.span)
    dtype = a.dtype if a.dtype.is_float else DType.DOUBLE
    return [MType(dtype, a.is_complex, a.shape)]


@register("sort", 1, 1, "sort")
def _infer_sort(args, call, ctx):
    a = args[0]
    if not a.is_vector:
        ctx.error("sort() supports vectors only in this subset", call.span)
    if a.is_complex:
        ctx.error("sort() on complex values is not supported", call.span)
    dtype = a.dtype if a.dtype.is_float else DType.DOUBLE
    return [MType(dtype, False, a.shape)]


@register("dot", 2, 2, "dot")
def _infer_dot(args, call, ctx):
    a, b = args
    if not (a.is_vector and b.is_vector):
        ctx.error("dot() requires vector arguments", call.span)
    la, lb = a.shape.numel(), b.shape.numel()
    if la is not None and lb is not None and la != lb:
        ctx.error(f"dot(): vector lengths {la} and {lb} differ", call.span)
    dtype, is_complex = promote_binary(a, b)
    return [MType(dtype, is_complex, SCALAR)]


# ----------------------------------------------------------------------
# Matrix manipulation
# ----------------------------------------------------------------------


@register("transpose", 1, 1, "transpose")
def _infer_transpose(args, call, ctx):
    return [args[0].with_shape(args[0].shape.transpose())]


@register("ctranspose", 1, 1, "ctranspose")
def _infer_ctranspose(args, call, ctx):
    return [args[0].with_shape(args[0].shape.transpose())]


@register("reshape", 3, 3, "reshape")
def _infer_reshape(args, call, ctx):
    arg = args[0]
    rows, cols = _const_dim(args[1]), _const_dim(args[2])
    if rows is None or cols is None:
        ctx.error("reshape(): target dims must be compile-time constants", call.span)
        return [arg.with_shape(Shape(None, None))]
    n = arg.shape.numel()
    if n is not None and n != rows * cols:
        ctx.error(f"reshape(): cannot reshape {arg.shape.describe()} "
                  f"({n} elements) to [{rows}x{cols}]", call.span)
    return [arg.with_shape(Shape(rows, cols))]


@register("fliplr", 1, 1, "flip")
def _infer_fliplr(args, call, ctx):
    return [args[0].without_value()]


@register("flipud", 1, 1, "flip")
def _infer_flipud(args, call, ctx):
    return [args[0].without_value()]


# ----------------------------------------------------------------------
# DSP kernels
# ----------------------------------------------------------------------


@register("filter", 3, 3, "filter")
def _infer_filter(args, call, ctx):
    b, a, x = args
    if not (b.is_vector and a.is_vector):
        ctx.error("filter(): coefficient arguments must be vectors", call.span)
    dtype = x.dtype if x.dtype.is_float else DType.DOUBLE
    is_complex = b.is_complex or a.is_complex or x.is_complex
    return [MType(dtype, is_complex, x.shape)]


@register("conv", 2, 2, "conv")
def _infer_conv(args, call, ctx):
    a, b = args
    if not (a.is_vector and b.is_vector):
        ctx.error("conv(): arguments must be vectors", call.span)
    la, lb = a.shape.numel(), b.shape.numel()
    n = None if la is None or lb is None else max(la + lb - 1, 0)
    dtype, is_complex = promote_binary(a, b)
    # Result is a column only when both inputs are columns.
    if a.shape.is_col and b.shape.is_col and not a.is_scalar and not b.is_scalar:
        shape = Shape(n, 1)
    else:
        shape = Shape(1, n)
    return [MType(dtype if dtype.is_float else DType.DOUBLE, is_complex, shape)]


@register("fft", 1, 2, "fft")
def _infer_fft(args, call, ctx):
    return [_fft_type(args, call, ctx, "fft")]


@register("ifft", 1, 2, "fft")
def _infer_ifft(args, call, ctx):
    return [_fft_type(args, call, ctx, "ifft")]


def _fft_type(args, call, ctx, fn_name):
    arg = args[0]
    if not arg.is_vector:
        ctx.error(f"{fn_name}() supports vectors only in this subset", call.span)
    shape = arg.shape
    if len(args) == 2:
        n = _const_dim(args[1])
        if n is None:
            ctx.error(f"{fn_name}(x, n): n must be a compile-time constant", call.span)
        shape = Shape(1, n) if shape.is_row else Shape(n, 1)
    n = shape.numel()
    if n is not None and n > 1 and n & (n - 1):
        ctx.error(f"{fn_name}(): length {n} is not a power of two "
                  "(radix-2 implementation)", call.span)
    dtype = arg.dtype if arg.dtype.is_float else DType.DOUBLE
    return MType(dtype, True, shape)


# ----------------------------------------------------------------------
# I/O (side effects only)
# ----------------------------------------------------------------------


@register("disp", 1, 1, "io", nargout=0)
def _infer_disp(args, call, ctx):
    return []


@register("fprintf", 1, 16, "io", nargout=0)
def _infer_fprintf(args, call, ctx):
    return []


@register("error", 1, 16, "io", nargout=0)
def _infer_error(args, call, ctx):
    return []
