"""Dominance and Pareto-front computation over (speedup, cost) scores.

Semantics (pinned by the hypothesis tier in
``tests/property/test_dse_props.py``):

* a point **dominates** another when it is at least as fast AND at
  least as cheap, and strictly better on at least one axis;
* the **front** is the set of evaluated points no evaluated point
  dominates.  Ties (identical speedup and cost) are kept — neither
  dominates the other — so equivalent designs are all reported;
* the front is a pure function of the score *set*: it is invariant
  under permutation of the evaluation order, and its output order is
  canonical (cheapest first, then fastest, then id) rather than
  arrival order.

Dominance is antisymmetric and transitive, which is what makes the
front well-defined.
"""

from __future__ import annotations


def dominates(a, b) -> bool:
    """True when score ``a`` Pareto-dominates score ``b``.

    ``a`` and ``b`` expose ``speedup`` (maximized) and ``cost``
    (minimized) attributes or items.
    """
    a_speed, a_cost = _score(a)
    b_speed, b_cost = _score(b)
    if a_speed < b_speed or a_cost > b_cost:
        return False
    return a_speed > b_speed or a_cost < b_cost


def _score(point) -> "tuple[float, float]":
    if isinstance(point, dict):
        return point["speedup"], point["cost"]
    if isinstance(point, tuple):
        return point[0], point[1]
    return point.speedup, point.cost


def pareto_front(points: list) -> list:
    """Non-dominated subset, in canonical order.

    O(n log n): sweep by ascending cost (ties: descending speedup);
    a point joins the front iff its speedup strictly exceeds the best
    speedup seen at lower-or-equal cost — except exact score ties with
    a front member, which join too.
    """
    def key(point):
        speed, cost = _score(point)
        return (cost, -speed, _tiebreak(point))

    ordered = sorted(points, key=key)
    front = []
    best_speed: "float | None" = None
    best_score: "tuple[float, float] | None" = None
    for point in ordered:
        speed, cost = _score(point)
        if best_speed is None or speed > best_speed:
            front.append(point)
            best_speed = speed
            best_score = (speed, cost)
        elif best_score == (speed, cost):
            # Exact tie with the current frontier point: neither
            # dominates the other, keep both.
            front.append(point)
    return front


def _tiebreak(point):
    if isinstance(point, dict):
        return str(point.get("id", ""))
    if isinstance(point, tuple):
        return str(point[2]) if len(point) > 2 else ""
    return str(getattr(point, "point_id", ""))
