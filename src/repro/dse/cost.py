"""Hardware-cost model for design-space candidates.

Scores the *area/complexity* side of the Pareto trade-off.  The model
is a deliberately simple additive gate-count proxy in the style of the
custom-instruction-selection literature: each optional unit charges a
fixed cost, datapath width scales linearly (a w-lane SIMD ALU is ~w
scalar ALUs plus wiring), and faster per-op cycle counts charge extra
(a 1-cycle MAC is a bigger multiplier array than a 2-cycle one).

All constants are integers and the total is an exact integer sum, so
cost never introduces float noise into the Pareto front — half of the
merge-exactness contract (the other half is integer cycle counts).

The absolute scale is arbitrary (think "equivalent scalar-ALU gate
units"); only relative order matters to dominance.
"""

from __future__ import annotations

#: Fixed cost of the scalar core every candidate includes.
BASE_CORE = 1000
#: Per architectural register (register-file ports dominate).
PER_REGISTER = 6
#: Per f32 SIMD lane: lane ALU + load/store path + shuffle wiring.
#: Charged once for the widest datapath; sub-widths reuse the lanes.
PER_SIMD_LANE = 180
#: Scalar complex-arithmetic unit (4 multipliers + adders, shared by
#: the SIMD complex groups which reuse its lane hardware).
COMPLEX_UNIT = 340
#: Scalar fused multiply-accumulate unit.
MAC_UNIT = 90
#: Saturating clip unit.
CLIP_UNIT = 40
#: Premium for a single-cycle MAC over the 2-cycle baseline array.
FAST_MAC = 70
#: Premium for single-cycle SIMD multiplies.
FAST_MUL = 60


def hardware_cost(point) -> int:
    """Exact integer cost of one :class:`~repro.dse.space.DesignPoint`."""
    cost = BASE_CORE
    cost += PER_REGISTER * point.registers
    if point.simd_f32_lanes > 1:
        cost += PER_SIMD_LANE * point.simd_f32_lanes
    if point.complex_unit:
        cost += COMPLEX_UNIT
    if point.scalar_mac:
        cost += MAC_UNIT
    if point.clip_unit:
        cost += CLIP_UNIT
    has_mac_hardware = point.scalar_mac or point.simd_f32_lanes > 1
    if has_mac_hardware and point.mac_cycles == 1:
        cost += FAST_MAC
    if point.simd_f32_lanes > 1 and point.mul_cycles == 1:
        cost += FAST_MUL
    return cost
