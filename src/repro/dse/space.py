"""Parameterized ISA design spaces and their candidate points.

A :class:`DesignSpace` is the cross product of a few ISA parameter
axes; a :class:`DesignPoint` is one assignment.  Points materialize to
full :class:`~repro.asip.model.ProcessorDescription` tables through
:func:`repro.asip.isa_library.design_processor`, and travel to service
workers *by value* as ``dse:{...}`` processor specs (sorted-key JSON),
so candidate evaluation needs no shared state beyond the job record.

Space descriptions are plain JSON documents::

    {
      "name": "my-space",
      "simd_f32_lanes": [1, 4, 8, 16],
      "complex_unit": [true, false],
      "scalar_mac": [true, false],
      "registers": [16, 32, 64]
    }

Every axis is optional and defaults to a singleton; every value is
validated on load, and a malformed value (SIMD width 0, negative
cycle cost, ...) raises :class:`~repro.errors.SpaceError` with a
sourced diagnostic — ``repro-dse`` reports it as a usage error
(``EXIT_USAGE``), never a traceback.

Enumeration order is canonical (axis order below, values in the order
the space lists them), which is half of the seed-determinism
contract: the same space text always yields the same candidate
sequence, and budget sampling draws from that sequence with
``random.Random(seed)``.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass

from repro.asip.isa_library import (design_processor, validate_cycle_cost,
                                    validate_simd_width)
from repro.errors import IsaError, SpaceError

#: Axis order is the enumeration order and the candidate-id field
#: order; changing it changes every candidate sequence, so it is part
#: of the determinism contract.
AXES = ("simd_f32_lanes", "complex_unit", "scalar_mac", "clip_unit",
        "mac_cycles", "mul_cycles", "registers")

_AXIS_DEFAULTS = {
    "simd_f32_lanes": [1],
    "complex_unit": [False],
    "scalar_mac": [False],
    "clip_unit": [False],
    "mac_cycles": [1],
    "mul_cycles": [1],
    "registers": [16],
}

_BOOL_AXES = ("complex_unit", "scalar_mac", "clip_unit")
_CYCLE_AXES = ("mac_cycles", "mul_cycles")

#: The shipped default space: 4 widths x complex x MAC x 3 register
#: files = 48 candidates, the scale the E1-corpus smoke search runs.
DEFAULT_SPACE_DOC = {
    "name": "default",
    "simd_f32_lanes": [1, 4, 8, 16],
    "complex_unit": [True, False],
    "scalar_mac": [True, False],
    "registers": [16, 32, 64],
}


@dataclass(frozen=True)
class DesignPoint:
    """One candidate: a full assignment of every axis."""

    simd_f32_lanes: int
    complex_unit: bool
    scalar_mac: bool
    clip_unit: bool
    mac_cycles: int
    mul_cycles: int
    registers: int

    @property
    def point_id(self) -> str:
        """Human-readable stable id (doubles as the processor name)."""
        return (f"w{self.simd_f32_lanes}"
                f"-cx{int(self.complex_unit)}"
                f"-mac{int(self.scalar_mac)}"
                f"-clip{int(self.clip_unit)}"
                f"-mc{self.mac_cycles}"
                f"-ml{self.mul_cycles}"
                f"-r{self.registers}")

    def to_spec(self) -> str:
        """``dse:{...}`` processor spec for :class:`CompileJob`."""
        return "dse:" + json.dumps(asdict(self), sort_keys=True,
                                   separators=(",", ":"))

    @classmethod
    def from_spec(cls, spec: str) -> "DesignPoint":
        if spec.startswith("dse:"):
            spec = spec[4:]
        try:
            fields = json.loads(spec)
        except ValueError:
            raise IsaError(f"processor spec dse:{spec!r}: not valid "
                           "JSON") from None
        if not isinstance(fields, dict) or set(fields) != set(AXES):
            raise IsaError(f"processor spec dse:{spec!r}: expected an "
                           f"object with exactly the keys {AXES}")
        return cls(**fields)

    def to_dict(self) -> dict:
        return {axis: getattr(self, axis) for axis in AXES}

    def processor(self):
        """Materialize the full processor description (validated)."""
        return design_processor(
            f"dse_{self.point_id}",
            f32_lanes=self.simd_f32_lanes,
            complex_unit=self.complex_unit,
            scalar_mac=self.scalar_mac,
            clip_unit=self.clip_unit,
            mac_cycles=self.mac_cycles,
            mul_cycles=self.mul_cycles,
            registers=self.registers,
            source=f"design point {self.point_id}")


class DesignSpace:
    """A validated cross product of ISA parameter axes."""

    def __init__(self, doc: dict, source: str = "<space>"):
        self.source = source
        self.doc = doc
        self.name = doc.get("name", "unnamed")
        self.axes: dict[str, list] = {}
        self._validate(doc)

    # -- validation -----------------------------------------------------

    def _fail(self, field: str, message: str) -> None:
        raise SpaceError(f"{self.source}: {field}: {message}")

    def _validate(self, doc: dict) -> None:
        if not isinstance(doc, dict):
            raise SpaceError(f"{self.source}: a space description must "
                             "be a JSON object")
        unknown = set(doc) - set(AXES) - {"name", "description"}
        if unknown:
            self._fail(sorted(unknown)[0],
                       f"unknown axis; known axes are {', '.join(AXES)}")
        if not isinstance(self.name, str) or not self.name:
            self._fail("name", "must be a non-empty string")
        for axis in AXES:
            values = doc.get(axis, _AXIS_DEFAULTS[axis])
            if not isinstance(values, list) or not values:
                self._fail(axis, "must be a non-empty list of values")
            if len(set(map(repr, values))) != len(values):
                self._fail(axis, f"duplicate values in {values!r}")
            for value in values:
                self._validate_value(axis, value)
            self.axes[axis] = list(values)

    def _validate_value(self, axis: str, value) -> None:
        label = f"{self.source}: {axis}"
        if axis == "simd_f32_lanes":
            try:
                validate_simd_width(value, source=label)
            except IsaError as exc:
                raise SpaceError(str(exc)) from None
        elif axis in _BOOL_AXES:
            if not isinstance(value, bool):
                self._fail(axis, f"must be true or false, got {value!r}")
        elif axis in _CYCLE_AXES:
            try:
                validate_cycle_cost(value, what=axis, source=label)
            except IsaError as exc:
                raise SpaceError(str(exc)) from None
        elif axis == "registers":
            if isinstance(value, bool) or not isinstance(value, int) \
                    or not 4 <= value <= 1024:
                self._fail(axis, "register count must be an integer "
                                 f"in [4, 1024], got {value!r}")

    # -- enumeration ----------------------------------------------------

    def __len__(self) -> int:
        size = 1
        for axis in AXES:
            size *= len(self.axes[axis])
        return size

    def enumerate(self) -> "list[DesignPoint]":
        """Every point, in canonical (axis-major) order."""
        return [DesignPoint(**dict(zip(AXES, values)))
                for values in itertools.product(
                    *(self.axes[axis] for axis in AXES))]

    def sample(self, budget: int, seed: int) -> "list[DesignPoint]":
        """At most ``budget`` points, deterministically.

        A seeded ``random.Random`` draws from the canonical
        enumeration; the sample is re-sorted into enumeration order so
        the evaluation sequence stays canonical regardless of draw
        order.
        """
        points = self.enumerate()
        if budget <= 0 or budget >= len(points):
            return points
        import random

        picked = random.Random(seed).sample(range(len(points)), budget)
        return [points[index] for index in sorted(picked)]

    def to_dict(self) -> dict:
        doc = {"name": self.name}
        if self.doc.get("description"):
            doc["description"] = self.doc["description"]
        doc.update({axis: list(self.axes[axis]) for axis in AXES})
        return doc


#: The shipped default space, validated at import time.
DEFAULT_SPACE = DesignSpace(DEFAULT_SPACE_DOC, source="<default-space>")


def load_space(path_or_name: str) -> DesignSpace:
    """Load a space: the name ``default`` or a JSON file path.

    File errors surface as :class:`SpaceError` so the CLI reports
    them with the file as the source.
    """
    if path_or_name == "default":
        return DEFAULT_SPACE
    try:
        with open(path_or_name) as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise SpaceError(f"{path_or_name}: cannot read space "
                         f"description: {exc}") from None
    except ValueError as exc:
        raise SpaceError(f"{path_or_name}: not valid JSON: {exc}") \
            from None
    return DesignSpace(doc, source=path_or_name)
