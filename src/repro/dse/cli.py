"""``repro-dse`` — automatic ISA design-space exploration.

Examples::

    # Search the default 48-candidate space over the E1 corpus with
    # 8 workers and write the Pareto front
    repro-dse --corpus examples/mlab --jobs 8 --out front.json

    # A custom space, budget-capped to 12 seeded-sampled candidates
    repro-dse --corpus examples/mlab --space space.json \\
        --budget 12 --seed 7 --out front.json

The front document is **seed-deterministic**: the same corpus, space,
seed and budget produce a byte-identical ``--out`` file at any
``--jobs`` count (CI diffs ``--jobs 1`` against ``--jobs 8``).

Exit codes follow the pinned contract in :mod:`repro.errors`: 0
success, 1 operational failure (unreadable corpus, failed reference
run, unwritable output), 2 usage error — including malformed ISA
parameter values in the space description (SIMD width 0, negative
cycle cost), reported with a sourced diagnostic — and 3 internal
error.
"""

from __future__ import annotations

import argparse
import sys
import traceback

from repro.errors import (EXIT_FAILURE, EXIT_INTERNAL, EXIT_OK,
                          EXIT_USAGE, IsaError, ReproError, SpaceError)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dse",
        description="Search a parameterized ISA design space for "
                    "Pareto-optimal speedup-vs-cost processor designs "
                    "over a kernel corpus")
    parser.add_argument("--corpus", required=True, metavar="PATH",
                        help="kernel corpus: a manifest.json file or a "
                             "directory containing one (repro-batch "
                             "manifest format)")
    parser.add_argument("--space", default="default", metavar="SPACE",
                        help="design space: 'default' (the shipped "
                             "48-candidate space) or a JSON space "
                             "description file")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for candidate "
                             "evaluation (default 1; the front is "
                             "identical at any count)")
    parser.add_argument("--budget", type=int, default=0, metavar="N",
                        help="max candidates to evaluate; a space "
                             "larger than the budget is sampled "
                             "deterministically from --seed "
                             "(default 0 = the whole space)")
    parser.add_argument("--seed", type=int, default=0,
                        help="run seed: drives budget sampling and "
                             "every kernel's simulation inputs "
                             "(default 0)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        metavar="SECONDS",
                        help="per-evaluation deadline (default 300)")
    parser.add_argument("--retries", type=int, default=2,
                        help="crash/stall strikes one evaluation may "
                             "burn before it is finalized as failed "
                             "(default 2)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the Pareto-front JSON document to "
                             "FILE (default: stdout)")
    parser.add_argument("--metrics-json", metavar="FILE", default=None,
                        help="write a machine-readable JSON report of "
                             "search metrics to FILE")
    parser.add_argument("--metrics-prom", metavar="FILE", default=None,
                        help="write the run's metric registry as "
                             "Prometheus text exposition to FILE")
    parser.add_argument("--events-jsonl", metavar="FILE", default=None,
                        help="write the run's structured event log "
                             "(search progress, per-candidate scores) "
                             "to FILE")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="shared on-disk compilation cache for "
                             "the workers (default: REPRO_CACHE_DIR)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the human-readable front "
                             "summary")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    try:
        return _run(options)
    except SystemExit:
        raise
    except (SpaceError, IsaError) as exc:
        # Malformed ISA parameter values (SIMD width 0, negative cycle
        # cost, unknown axis): a usage error with a sourced
        # diagnostic, per the pinned exit-code contract.
        print(f"repro-dse: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (ReproError, ValueError) as exc:
        print(f"repro-dse: error: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    except OSError as exc:
        print(f"repro-dse: error: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    except Exception:
        print("repro-dse: internal error:", file=sys.stderr)
        traceback.print_exc()
        return EXIT_INTERNAL


def _run(options) -> int:
    from repro.dse.engine import DesignSpaceSearch, load_corpus
    from repro.dse.space import load_space
    from repro.observe import TraceSession, trace as obs_trace

    if options.jobs < 1:
        raise SpaceError(f"--jobs must be >= 1, got {options.jobs}")
    if options.budget < 0:
        raise SpaceError(f"--budget must be >= 0, got {options.budget}")

    space = load_space(options.space)
    # Materialize every candidate eagerly so a malformed parameter
    # combination is a sourced usage error before any worker spawns.
    for point in space.enumerate():
        point.processor()
    corpus = load_corpus(options.corpus)

    session = TraceSession()
    with obs_trace.use(session):
        search = DesignSpaceSearch(
            corpus, space, jobs=options.jobs, seed=options.seed,
            budget=options.budget, timeout=options.timeout,
            retries=options.retries, cache_dir=options.cache_dir)
        result = search.run()

    text = result.to_json()
    if options.out:
        from repro.observe.metrics import atomic_write_text
        atomic_write_text(options.out, text)
    else:
        sys.stdout.write(text)
    if not options.quiet:
        _print_summary(result, file=sys.stderr if not options.out
                       else sys.stdout)

    if options.metrics_json:
        _write_metrics(options.metrics_json, result, session)
    if options.metrics_prom:
        from repro.observe.expo import write_prometheus
        write_prometheus(options.metrics_prom, session.metrics.snapshot())
    if options.events_jsonl:
        from repro.observe.events import write_events_jsonl
        write_events_jsonl(options.events_jsonl, session.events)

    if not result.evaluated:
        print("repro-dse: error: every candidate evaluation failed",
              file=sys.stderr)
        return EXIT_FAILURE
    return EXIT_OK


def _print_summary(result, file) -> None:
    evaluated = result.evaluated
    failed = len(result.candidates) - len(evaluated)
    print(f"searched {len(result.candidates)} candidates over "
          f"{len(result.corpus)} kernels "
          f"(space {result.space.name!r}, size {len(result.space)}, "
          f"seed {result.seed}): {len(evaluated)} ok, {failed} failed, "
          f"front size {len(result.front)}", file=file)
    if not result.front:
        return
    print(f"  {'design':<34} {'cost':>7} {'speedup':>8}", file=file)
    for point in result.front:
        print(f"  {point.point_id:<34} {point.cost:>7} "
              f"{point.speedup:>8.2f}", file=file)


def _write_metrics(path: str, result, session) -> None:
    import json

    from repro.observe.metrics import atomic_write_text

    report = {
        "schema": "repro-dse-report-v1",
        "space": result.space.name,
        "space_size": len(result.space),
        "seed": result.seed,
        "budget": result.budget,
        "workers": result.workers,
        "kernels": len(result.corpus),
        "candidates": len(result.candidates),
        "evaluated": len(result.evaluated),
        "front_size": len(result.front),
        "baseline_wall_s": round(result.baseline_wall_s, 6),
        "search_wall_s": round(result.search_wall_s, 6),
        "counters": dict(session.counters),
        "metrics": {
            "snapshot": session.metrics.snapshot(),
            "summary": session.metrics.summaries(),
        },
    }
    atomic_write_text(path, json.dumps(report, indent=2) + "\n")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
