"""Automatic ISA design-space exploration (``repro-dse``).

The compiler is retargetable over parameterized ASIP descriptions;
this package turns the hand-written processor tables into a search:
given a kernel corpus and a parameterized ISA space (SIMD width,
complex/MAC/clip instruction availability, per-op cycle costs,
register counts), it enumerates candidate processor descriptions,
fans candidate x kernel evaluations out through the existing
:class:`~repro.service.CompileService`, scores each design on
aggregate cycle speedup vs. a hardware-cost model, and emits the
Pareto-optimal front.

The critical contract, proven by ``tests/test_dse.py`` and the
hypothesis tier in ``tests/property/test_dse_props.py``: the search is
**seed-deterministic and merge-exact** — the same seed and budget
produce a bit-identical front at ``--jobs 1`` and ``--jobs 8``.
"""

from repro.dse.cost import hardware_cost
from repro.dse.engine import (CandidateResult, DesignSpaceSearch,
                              KernelSpec, SearchResult, load_corpus)
from repro.dse.pareto import dominates, pareto_front
from repro.dse.space import (DEFAULT_SPACE, DesignPoint, DesignSpace,
                             load_space)

__all__ = [
    "CandidateResult",
    "DEFAULT_SPACE",
    "DesignPoint",
    "DesignSpace",
    "DesignSpaceSearch",
    "KernelSpec",
    "SearchResult",
    "dominates",
    "hardware_cost",
    "load_corpus",
    "load_space",
    "pareto_front",
]
