"""The design-space search engine.

Given a kernel corpus and a :class:`~repro.dse.space.DesignSpace`,
:class:`DesignSpaceSearch` evaluates every candidate on every kernel
through the existing :class:`~repro.service.CompileService` — one
``CompileJob`` per (candidate, kernel) with the candidate shipped by
value as a ``dse:{...}`` processor spec and a ``simulate_seed`` so the
worker reports exact cycle counts.  Deadlines, crash isolation, retry
budgets and the content-addressed compilation cache are all the
service's own machinery; a candidate whose evaluation crashes a worker
burns only its own retry budget and is excluded from the front, never
taking the search down.

Scoring: each candidate's **speedup** is the ratio of summed reference
cycles (scalar-baseline pipeline on ``generic_scalar_dsp``) to summed
candidate cycles over the corpus — a ratio of exact integers — and its
**cost** comes from the integer hardware model in
:mod:`repro.dse.cost`.  The Pareto front is computed by
:func:`repro.dse.pareto.pareto_front`.

Determinism contract: candidate order is canonical, per-kernel
simulation seeds derive from the run seed via
:func:`repro.sim.inputs.mix_seed`, cycle counts are pure functions of
(job description), and the service returns results in submission
order — so the front document is byte-identical at any ``--jobs``
count.  ``tests/test_dse.py`` proves it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.dse.cost import hardware_cost
from repro.dse.pareto import pareto_front
from repro.dse.space import DesignPoint, DesignSpace
from repro.errors import ReproError
from repro.observe import trace as obs_trace
from repro.sim.inputs import mix_seed

FRONT_SCHEMA = "repro-dse-front-v1"

#: Reference pipeline: the MATLAB-Coder-style baseline on the plain
#: scalar target, the same anchor the E1 speedup table uses.
REFERENCE_PROCESSOR = "generic_scalar_dsp"
BASELINE_OPTIONS = {"mode": "baseline", "scalar_opt": False,
                    "inline": False, "simd": False,
                    "complex_isel": False, "scalar_mac": False}

#: Severity order for folding per-kernel job statuses into one
#: candidate status (worst wins).
_STATUS_RANK = {"ok": 0, "error": 1, "timeout": 2, "crash": 3}


@dataclass(frozen=True)
class KernelSpec:
    """One corpus kernel, described by value."""

    name: str
    source: str
    args: "tuple[str, ...]"
    entry: "str | None" = None


@dataclass
class CandidateResult:
    """One evaluated design point."""

    point: DesignPoint
    cost: int
    status: str = "ok"
    detail: str = ""
    #: kernel name -> exact simulated cycle count (``ok`` kernels).
    cycles: "dict[str, int]" = field(default_factory=dict)
    #: kernel name -> reference/candidate cycle ratio.
    speedups: "dict[str, float]" = field(default_factory=dict)
    #: sum(reference cycles) / sum(candidate cycles) over the corpus.
    speedup: float = 0.0
    #: custom-instruction execution counts summed over the corpus.
    instruction_counts: "dict[str, int]" = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def point_id(self) -> str:
        return self.point.point_id

    def to_dict(self) -> dict:
        doc = {
            "id": self.point_id,
            "params": self.point.to_dict(),
            "cost": self.cost,
            "status": self.status,
        }
        if self.status != "ok":
            doc["detail"] = self.detail
            return doc
        doc["cycles"] = {name: self.cycles[name]
                         for name in sorted(self.cycles)}
        doc["speedups"] = {name: round(self.speedups[name], 4)
                           for name in sorted(self.speedups)}
        doc["speedup"] = round(self.speedup, 4)
        return doc


@dataclass
class SearchResult:
    """Everything one search produced."""

    space: DesignSpace
    seed: int
    budget: int
    corpus: "list[KernelSpec]"
    reference_cycles: "dict[str, int]"
    candidates: "list[CandidateResult]"
    front: "list[CandidateResult]"
    #: Wall-clock seconds (NOT part of the deterministic document).
    baseline_wall_s: float = 0.0
    search_wall_s: float = 0.0
    workers: int = 1

    @property
    def evaluated(self) -> "list[CandidateResult]":
        return [c for c in self.candidates if c.ok]

    def document(self) -> dict:
        """The deterministic front document (``--out``).

        Contains only values that are pure functions of (corpus,
        space, seed, budget): no wall times, worker counts, attempt
        counts or pids.  Byte-identical across ``--jobs`` settings.
        """
        return {
            "schema": FRONT_SCHEMA,
            "space": self.space.to_dict(),
            "space_size": len(self.space),
            "seed": self.seed,
            "budget": self.budget,
            "corpus": [kernel.name for kernel in self.corpus],
            "reference": {
                "processor": REFERENCE_PROCESSOR,
                "cycles": {name: self.reference_cycles[name]
                           for name in sorted(self.reference_cycles)},
            },
            "evaluated": len(self.evaluated),
            "candidates": [c.to_dict() for c in self.candidates],
            "front": [{
                "id": c.point_id,
                "cost": c.cost,
                "speedup": round(c.speedup, 4),
                "params": c.point.to_dict(),
            } for c in self.front],
        }

    def to_json(self) -> str:
        return json.dumps(self.document(), indent=2) + "\n"


def load_corpus(path: str) -> "list[KernelSpec]":
    """Load a kernel corpus from a manifest.

    ``path`` is a ``manifest.json`` file or a directory containing
    one, in the same format ``repro-batch`` uses: file name ->
    ``{"args": "spec,spec", "entry": name}``.  Kernels come back
    sorted by name so the evaluation order is canonical.
    """
    manifest_path = Path(path)
    if manifest_path.is_dir():
        manifest_path = manifest_path / "manifest.json"
    try:
        manifest = json.loads(manifest_path.read_text())
    except OSError as exc:
        raise ReproError(f"cannot read corpus manifest "
                         f"{manifest_path}: {exc}") from None
    except ValueError as exc:
        raise ReproError(f"{manifest_path}: not valid JSON: "
                         f"{exc}") from None
    if not isinstance(manifest, dict) or not manifest:
        raise ReproError(f"{manifest_path}: expected a non-empty "
                         "JSON object mapping file names to "
                         "{args, entry}")
    kernels = []
    for filename in sorted(manifest):
        fields = manifest[filename]
        if not isinstance(fields, dict) or "args" not in fields:
            raise ReproError(f"{manifest_path}: {filename}: entry "
                             "must be an object with an 'args' field")
        source_path = manifest_path.parent / filename
        try:
            source = source_path.read_text()
        except OSError as exc:
            raise ReproError(f"cannot read corpus kernel "
                             f"{source_path}: {exc}") from None
        entry = fields.get("entry")
        args = tuple(s for s in fields["args"].split(",") if s)
        kernels.append(KernelSpec(name=entry or source_path.stem,
                                  source=source, args=args,
                                  entry=entry))
    return kernels


class DesignSpaceSearch:
    """One search run: corpus x space -> Pareto front.

    Args:
        corpus: kernels to evaluate every candidate on.
        space: the parameter space to explore.
        jobs: service worker count.
        seed: run seed — drives budget sampling and every kernel's
            simulation inputs.
        budget: max candidates to evaluate (0 = the whole space).
        timeout: per-evaluation deadline in seconds.
        retries: crash/stall strikes one evaluation may burn.
        cache_dir: shared on-disk compile cache (None = inherit
            ``REPRO_CACHE_DIR``).
        fault_hooks: test-tier fault injection, candidate ``point_id``
            -> hook name; poisons that candidate's first kernel job.
    """

    def __init__(self, corpus: "list[KernelSpec]", space: DesignSpace,
                 *, jobs: int = 1, seed: int = 0, budget: int = 0,
                 timeout: "float | None" = None, retries: int = 2,
                 cache_dir: "str | None" = None,
                 fault_hooks: "dict[str, str] | None" = None):
        if not corpus:
            raise ReproError("design-space search needs a non-empty "
                             "kernel corpus")
        self.corpus = list(corpus)
        self.space = space
        self.jobs = max(1, jobs)
        self.seed = seed
        self.budget = budget
        self.timeout = timeout
        self.retries = retries
        self.cache_dir = cache_dir
        self.fault_hooks = dict(fault_hooks or {})
        self.reference_cycles: "dict[str, int]" = {}

    # -- internals ------------------------------------------------------

    def _sim_seed(self, kernel: KernelSpec) -> int:
        return mix_seed(self.seed, kernel.name)

    def _make_job(self, job_id: str, kernel: KernelSpec,
                  processor: str, options: dict):
        from repro.service import CompileJob

        return CompileJob(
            job_id=job_id, source=kernel.source,
            args=list(kernel.args), entry=kernel.entry,
            processor=processor, options=dict(options),
            filename=f"{kernel.name}.m", timeout=self.timeout,
            simulate_seed=self._sim_seed(kernel))

    def _measure_reference(self, service, session) -> "dict[str, int]":
        jobs = [self._make_job(f"ref/{kernel.name}", kernel,
                               REFERENCE_PROCESSOR, BASELINE_OPTIONS)
                for kernel in self.corpus]
        batch = service.compile_batch(jobs)
        session.metrics.merge(batch.metrics_registry())
        reference = {}
        for kernel, result in zip(self.corpus, batch.results):
            if not result.ok or result.cycles is None:
                raise ReproError(
                    f"reference evaluation of kernel "
                    f"{kernel.name!r} failed [{result.status}]: "
                    f"{result.detail or 'no cycle count'}")
            reference[kernel.name] = result.cycles
        return reference

    def _score(self, candidate: DesignPoint,
               results: list) -> CandidateResult:
        scored = CandidateResult(point=candidate,
                                 cost=hardware_cost(candidate))
        for kernel, result in zip(self.corpus, results):
            if result.ok and result.cycles is not None:
                scored.cycles[kernel.name] = result.cycles
                for name, count in result.instruction_counts.items():
                    scored.instruction_counts[name] = \
                        scored.instruction_counts.get(name, 0) + count
                continue
            # Fold per-kernel failures into one candidate status
            # (worst wins); an ``ok`` job with no cycle count is a
            # malformed result and counts as an error.
            status = result.status if result.status != "ok" else "error"
            if _STATUS_RANK.get(status, 3) \
                    > _STATUS_RANK.get(scored.status, 0):
                scored.status = status
            if not scored.detail:
                scored.detail = (f"{kernel.name}: "
                                 f"{result.detail or 'no cycle count'}")
        if scored.status == "ok":
            ref_total = sum(self.reference_cycles[k.name]
                            for k in self.corpus)
            cand_total = sum(scored.cycles[k.name]
                             for k in self.corpus)
            scored.speedup = ref_total / max(cand_total, 1)
            for kernel in self.corpus:
                scored.speedups[kernel.name] = (
                    self.reference_cycles[kernel.name]
                    / max(scored.cycles[kernel.name], 1))
        return scored

    # -- the search -----------------------------------------------------

    def run(self) -> SearchResult:
        from repro.service import CompileService

        session = obs_trace.current()
        candidates = self.space.sample(self.budget, self.seed)
        session.event("dse.search.start", space=self.space.name,
                      space_size=len(self.space),
                      candidates=len(candidates),
                      kernels=len(self.corpus), seed=self.seed,
                      budget=self.budget, jobs=self.jobs)
        session.counter("dse.candidates", len(candidates))
        session.counter("dse.evaluations",
                        len(candidates) * len(self.corpus))

        with CompileService(
                jobs=self.jobs, timeout=self.timeout,
                max_retries=self.retries, cache_dir=self.cache_dir,
                allow_test_hooks=bool(self.fault_hooks)) as service:
            t0 = time.perf_counter()
            with session.span("dse.reference", "dse"):
                self.reference_cycles = self._measure_reference(
                    service, session)
            baseline_wall = time.perf_counter() - t0
            session.observe("dse.baseline_s", baseline_wall)

            jobs = []
            for candidate in candidates:
                spec = candidate.to_spec()
                hook = self.fault_hooks.get(candidate.point_id)
                for index, kernel in enumerate(self.corpus):
                    job = self._make_job(
                        f"{candidate.point_id}/{kernel.name}",
                        kernel, spec, {})
                    if hook and index == 0:
                        job.test_hook = hook
                    jobs.append(job)

            t0 = time.perf_counter()
            with session.span("dse.evaluate", "dse",
                              evaluations=len(jobs)):
                batch = service.compile_batch(jobs)
            search_wall = time.perf_counter() - t0

        session.metrics.merge(batch.metrics_registry())
        session.observe("dse.search_s", search_wall)

        per_kernel = len(self.corpus)
        results = []
        for index, candidate in enumerate(candidates):
            window = batch.results[index * per_kernel:
                                   (index + 1) * per_kernel]
            scored = self._score(candidate, window)
            results.append(scored)
            session.counter(f"dse.candidate_{scored.status}")
            session.event("dse.progress",
                          evaluated=index + 1,
                          total=len(candidates),
                          candidate=scored.point_id,
                          status=scored.status,
                          speedup=round(scored.speedup, 4),
                          cost=scored.cost)

        front = pareto_front([c for c in results if c.ok])
        session.event("dse.search.done",
                      evaluated=sum(1 for c in results if c.ok),
                      failed=sum(1 for c in results if not c.ok),
                      front=len(front),
                      search_wall_s=round(search_wall, 6))
        session.counter("dse.front_size", len(front))
        return SearchResult(
            space=self.space, seed=self.seed, budget=self.budget,
            corpus=self.corpus,
            reference_cycles=self.reference_cycles,
            candidates=results, front=front,
            baseline_wall_s=baseline_wall,
            search_wall_s=search_wall, workers=self.jobs)
