"""Recursive-descent parser for the MATLAB subset.

Grammar notes:

* ``f(x)`` parses to :class:`CallIndex` for both calls and indexing;
  semantic analysis disambiguates using the symbol table.
* Inside ``[ ]`` the parser applies MATLAB's juxtaposition rules:
  elements are separated by commas *or* whitespace, rows by semicolons
  *or* newlines, and a ``+``/``-`` with space before but not after is a
  unary sign that begins a new element (``[1 -2]`` vs ``[1 - 2]``).
* ``end`` is an expression only inside indexing parentheses/brackets.
* Newlines are statement separators at statement level, row separators
  inside ``[ ]``, and ignored inside ``( )``.

Operator precedence (lowest to highest), matching MATLAB:

    || / && / | / & / comparisons / : / + - / * / etc. / unary / ^ '
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import tokenize
from repro.frontend.source import SourceFile
from repro.frontend.tokens import Token, TokenKind

_K = TokenKind

_STMT_SEPARATORS = frozenset({_K.NEWLINE, _K.SEMICOLON, _K.COMMA})

_BLOCK_ENDERS = frozenset(
    {
        _K.KW_END,
        _K.KW_ELSEIF,
        _K.KW_ELSE,
        _K.KW_CASE,
        _K.KW_OTHERWISE,
        _K.KW_FUNCTION,
        _K.EOF,
    }
)

_COMPARISON_OPS = {
    _K.EQ: "==",
    _K.NEQ: "~=",
    _K.LT: "<",
    _K.LE: "<=",
    _K.GT: ">",
    _K.GE: ">=",
}

_ADDITIVE_OPS = {_K.PLUS: "+", _K.MINUS: "-"}

_MULTIPLICATIVE_OPS = {
    _K.STAR: "*",
    _K.SLASH: "/",
    _K.BACKSLASH: "\\",
    _K.DOT_STAR: ".*",
    _K.DOT_SLASH: "./",
    _K.DOT_BACKSLASH: ".\\",
}

_POWER_OPS = {_K.CARET: "^", _K.DOT_CARET: ".^"}

#: Tokens that may begin an expression (used for matrix juxtaposition).
_EXPR_STARTERS = frozenset(
    {
        _K.NUMBER,
        _K.INT_NUMBER,
        _K.IMAG_NUMBER,
        _K.STRING,
        _K.IDENT,
        _K.LPAREN,
        _K.LBRACKET,
        _K.LBRACE,
        _K.AT,
        _K.TILDE,
        _K.KW_END,
        _K.COLON,
    }
)


class Parser:
    """Parses a token stream into a :class:`repro.frontend.ast_nodes.Program`."""

    def __init__(self, source: SourceFile | str, filename: str = "<string>"):
        if isinstance(source, str):
            source = SourceFile(source, filename)
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0
        # Context depths for newline/end handling.
        self._paren_depth = 0
        self._bracket_depth = 0
        self._index_depth = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        i = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[i]

    def _at(self, kind: TokenKind, ahead: int = 0) -> bool:
        return self._peek(ahead).kind is kind

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not _K.EOF:
            self.pos += 1
        # Inside parentheses newlines are insignificant.
        if self._paren_depth > 0 and self._bracket_depth == 0:
            while self._at(_K.NEWLINE):
                self.pos += 1
        return token

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        if not self._at(kind):
            found = self._peek()
            wanted = what or kind.value
            raise self._error(f"expected {wanted}, found {found.kind.value!r}", found)
        return self._advance()

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self._peek()
        line, col = self.source.line_col(token.span.start)
        excerpt = self.source.excerpt(token.span)
        return ParseError(
            f"{self.source.filename}:{line}:{col}: syntax error: {message}\n{excerpt}"
        )

    def _skip_separators(self) -> None:
        while self._peek().kind in _STMT_SEPARATORS:
            self._advance()

    def _skip_newlines(self) -> None:
        while self._at(_K.NEWLINE):
            self._advance()

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        """Parse a whole file: function definitions or a script body."""
        self._skip_separators()
        start = self._peek().span
        if self._at(_K.KW_FUNCTION):
            functions = []
            while True:
                self._skip_separators()
                if self._at(_K.EOF):
                    break
                functions.append(self._parse_function())
            if not functions:
                raise self._error("empty file")
            span = functions[0].span.merge(functions[-1].span)
            return ast.Program(span=span, functions=functions)
        body = self._parse_stmt_list(top_level=True)
        if not self._at(_K.EOF):
            raise self._error("unexpected token at top level")
        span = start if not body else body[0].span.merge(body[-1].span)
        return ast.Program(span=span, script=body)

    def _parse_function(self) -> ast.Function:
        start = self._expect(_K.KW_FUNCTION).span
        returns: list[str] = []
        # Three header forms:
        #   function [a, b] = name(params)
        #   function a = name(params)
        #   function name(params)
        if self._at(_K.LBRACKET):
            self._advance()
            while not self._at(_K.RBRACKET):
                returns.append(self._expect(_K.IDENT, "output name").text)
                if self._at(_K.COMMA):
                    self._advance()
            self._advance()  # ]
            self._expect(_K.ASSIGN, "'=' after output list")
            name = self._expect(_K.IDENT, "function name").text
        else:
            first = self._expect(_K.IDENT, "function name").text
            if self._at(_K.ASSIGN):
                self._advance()
                returns = [first]
                name = self._expect(_K.IDENT, "function name").text
            else:
                name = first
        params: list[str] = []
        if self._at(_K.LPAREN):
            self._advance()
            while not self._at(_K.RPAREN):
                if self._at(_K.TILDE):  # unused input placeholder
                    self._advance()
                    params.append("~")
                else:
                    params.append(self._expect(_K.IDENT, "parameter name").text)
                if self._at(_K.COMMA):
                    self._advance()
            self._advance()  # )
        body = self._parse_stmt_list()
        end_span = self._peek().span
        if self._at(_K.KW_END):
            self._advance()
        elif not (self._at(_K.EOF) or self._at(_K.KW_FUNCTION)):
            raise self._error("expected 'end' or end of file after function body")
        return ast.Function(
            span=start.merge(end_span), name=name, params=params, returns=returns, body=body
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _parse_stmt_list(self, top_level: bool = False) -> list[ast.Stmt]:
        stmts: list[ast.Stmt] = []
        while True:
            self._skip_separators()
            kind = self._peek().kind
            if kind in _BLOCK_ENDERS:
                if top_level and kind is _K.KW_FUNCTION:
                    raise self._error("function definitions are not allowed inside a script")
                break
            stmts.append(self._parse_statement())
        return stmts

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        kind = token.kind
        if kind is _K.KW_IF:
            return self._parse_if()
        if kind is _K.KW_FOR:
            return self._parse_for()
        if kind is _K.KW_WHILE:
            return self._parse_while()
        if kind is _K.KW_SWITCH:
            return self._parse_switch()
        if kind is _K.KW_BREAK:
            self._advance()
            return ast.Break(span=token.span)
        if kind is _K.KW_CONTINUE:
            self._advance()
            return ast.Continue(span=token.span)
        if kind is _K.KW_RETURN:
            self._advance()
            return ast.Return(span=token.span)
        if kind is _K.LBRACKET and self._looks_like_multi_assign():
            return self._parse_multi_assign()
        return self._parse_expr_or_assign()

    def _terminator_suppressed(self) -> bool:
        """Consume the statement terminator; True when it was ';'."""
        kind = self._peek().kind
        if kind is _K.SEMICOLON:
            self._advance()
            return True
        if kind in (_K.NEWLINE, _K.COMMA):
            self._advance()
            return False
        if kind in _BLOCK_ENDERS:
            return False
        raise self._error("expected end of statement")

    def _parse_expr_or_assign(self) -> ast.Stmt:
        start = self._peek().span
        expr = self._parse_expression()
        if self._at(_K.ASSIGN):
            if not isinstance(expr, (ast.Identifier, ast.CallIndex)):
                raise self._error("invalid assignment target")
            self._advance()
            value = self._parse_expression()
            suppressed = self._terminator_suppressed()
            return ast.Assign(
                span=start.merge(value.span), target=expr, value=value, suppressed=suppressed
            )
        suppressed = self._terminator_suppressed()
        return ast.ExprStmt(span=expr.span, expr=expr, suppressed=suppressed)

    def _looks_like_multi_assign(self) -> bool:
        """Lookahead: does ``[ ... ]`` here close and get followed by '='?"""
        depth = 0
        i = self.pos
        while i < len(self.tokens):
            kind = self.tokens[i].kind
            if kind in (_K.LBRACKET, _K.LBRACE, _K.LPAREN):
                depth += 1
            elif kind in (_K.RBRACKET, _K.RBRACE, _K.RPAREN):
                depth -= 1
                if depth == 0:
                    return self.tokens[i + 1].kind is _K.ASSIGN if i + 1 < len(self.tokens) else False
            elif kind in (_K.NEWLINE, _K.EOF) and depth <= 1:
                # A newline directly inside the outer [ ] means matrix literal.
                return False
            i += 1
        return False

    def _parse_multi_assign(self) -> ast.Stmt:
        start = self._expect(_K.LBRACKET).span
        targets: list[ast.Expr] = []
        while not self._at(_K.RBRACKET):
            if self._at(_K.TILDE):
                tilde = self._advance()
                targets.append(ast.Identifier(span=tilde.span, name="~"))
            else:
                target = self._parse_postfix()
                if not isinstance(target, (ast.Identifier, ast.CallIndex)):
                    raise self._error("invalid assignment target in multi-assignment")
                targets.append(target)
            if self._at(_K.COMMA):
                self._advance()
        self._advance()  # ]
        self._expect(_K.ASSIGN)
        value = self._parse_expression()
        suppressed = self._terminator_suppressed()
        return ast.MultiAssign(
            span=start.merge(value.span), targets=targets, value=value, suppressed=suppressed
        )

    def _parse_if(self) -> ast.Stmt:
        start = self._expect(_K.KW_IF).span
        branches: list[tuple[ast.Expr, list[ast.Stmt]]] = []
        cond = self._parse_expression()
        body = self._parse_stmt_list()
        branches.append((cond, body))
        else_body: list[ast.Stmt] = []
        while self._at(_K.KW_ELSEIF):
            self._advance()
            cond = self._parse_expression()
            body = self._parse_stmt_list()
            branches.append((cond, body))
        if self._at(_K.KW_ELSE):
            self._advance()
            else_body = self._parse_stmt_list()
        end = self._expect(_K.KW_END, "'end' to close 'if'").span
        return ast.If(span=start.merge(end), branches=branches, else_body=else_body)

    def _parse_for(self) -> ast.Stmt:
        start = self._expect(_K.KW_FOR).span
        paren = self._at(_K.LPAREN)
        if paren:  # for (i = 1:n) is legal MATLAB
            self._advance()
        var = self._expect(_K.IDENT, "loop variable").text
        self._expect(_K.ASSIGN, "'=' in for statement")
        iterable = self._parse_expression()
        if paren:
            self._expect(_K.RPAREN)
        body = self._parse_stmt_list()
        end = self._expect(_K.KW_END, "'end' to close 'for'").span
        return ast.For(span=start.merge(end), var=var, iterable=iterable, body=body)

    def _parse_while(self) -> ast.Stmt:
        start = self._expect(_K.KW_WHILE).span
        cond = self._parse_expression()
        body = self._parse_stmt_list()
        end = self._expect(_K.KW_END, "'end' to close 'while'").span
        return ast.While(span=start.merge(end), condition=cond, body=body)

    def _parse_switch(self) -> ast.Stmt:
        start = self._expect(_K.KW_SWITCH).span
        subject = self._parse_expression()
        self._skip_separators()
        cases: list[tuple[ast.Expr, list[ast.Stmt]]] = []
        otherwise: list[ast.Stmt] = []
        while self._at(_K.KW_CASE):
            self._advance()
            match = self._parse_expression()
            body = self._parse_stmt_list()
            cases.append((match, body))
        if self._at(_K.KW_OTHERWISE):
            self._advance()
            otherwise = self._parse_stmt_list()
        end = self._expect(_K.KW_END, "'end' to close 'switch'").span
        return ast.Switch(span=start.merge(end), subject=subject, cases=cases, otherwise=otherwise)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_short_or()

    def _parse_short_or(self) -> ast.Expr:
        left = self._parse_short_and()
        while self._at(_K.PIPE_PIPE):
            self._advance()
            right = self._parse_short_and()
            left = ast.BinaryOp(span=left.span.merge(right.span), op="||", left=left, right=right)
        return left

    def _parse_short_and(self) -> ast.Expr:
        left = self._parse_elem_or()
        while self._at(_K.AMP_AMP):
            self._advance()
            right = self._parse_elem_or()
            left = ast.BinaryOp(span=left.span.merge(right.span), op="&&", left=left, right=right)
        return left

    def _parse_elem_or(self) -> ast.Expr:
        left = self._parse_elem_and()
        while self._at(_K.PIPE):
            self._advance()
            right = self._parse_elem_and()
            left = ast.BinaryOp(span=left.span.merge(right.span), op="|", left=left, right=right)
        return left

    def _parse_elem_and(self) -> ast.Expr:
        left = self._parse_comparison()
        while self._at(_K.AMP):
            self._advance()
            right = self._parse_comparison()
            left = ast.BinaryOp(span=left.span.merge(right.span), op="&", left=left, right=right)
        return left

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_range()
        while self._peek().kind in _COMPARISON_OPS:
            op = _COMPARISON_OPS[self._advance().kind]
            right = self._parse_range()
            left = ast.BinaryOp(span=left.span.merge(right.span), op=op, left=left, right=right)
        return left

    def _parse_range(self) -> ast.Expr:
        first = self._parse_additive()
        if not self._at(_K.COLON):
            return first
        self._advance()
        second = self._parse_additive()
        if not self._at(_K.COLON):
            return ast.Range(span=first.span.merge(second.span), start=first, stop=second)
        self._advance()
        third = self._parse_additive()
        return ast.Range(
            span=first.span.merge(third.span), start=first, stop=third, step=second
        )

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().kind in _ADDITIVE_OPS:
            if self._bracket_depth > 0 and self._is_matrix_element_boundary():
                break
            op = _ADDITIVE_OPS[self._advance().kind]
            right = self._parse_multiplicative()
            left = ast.BinaryOp(span=left.span.merge(right.span), op=op, left=left, right=right)
        return left

    def _is_matrix_element_boundary(self) -> bool:
        """In ``[ ]``: is this +/- a unary sign starting a new element?

        MATLAB rule: space before the sign but none after it means the
        sign binds to the next element (``[1 -2]``); space on both sides
        (or none before) means a binary operator (``[1 - 2]``, ``[1-2]``).
        """
        sign = self._peek()
        nxt = self._peek(1)
        return sign.space_before and not nxt.space_before and nxt.kind in _EXPR_STARTERS

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind in _MULTIPLICATIVE_OPS:
            op = _MULTIPLICATIVE_OPS[self._advance().kind]
            right = self._parse_unary()
            left = ast.BinaryOp(span=left.span.merge(right.span), op=op, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is _K.MINUS:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(span=token.span.merge(operand.span), op="-", operand=operand)
        if token.kind is _K.PLUS:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(span=token.span.merge(operand.span), op="+", operand=operand)
        if token.kind is _K.TILDE:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(span=token.span.merge(operand.span), op="~", operand=operand)
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        left = self._parse_postfix()
        while self._peek().kind in _POWER_OPS:
            op = _POWER_OPS[self._advance().kind]
            # MATLAB allows a unary sign in the exponent: 2^-3.
            right = self._parse_power_operand()
            left = ast.BinaryOp(span=left.span.merge(right.span), op=op, left=left, right=right)
        return left

    def _parse_power_operand(self) -> ast.Expr:
        token = self._peek()
        if token.kind in (_K.MINUS, _K.PLUS, _K.TILDE):
            self._advance()
            operand = self._parse_power_operand()
            return ast.UnaryOp(
                span=token.span.merge(operand.span),
                op={"-": "-", "+": "+", "~": "~"}[token.text],
                operand=operand,
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind is _K.LPAREN and not token.space_before or (
                token.kind is _K.LPAREN and self._bracket_depth == 0
            ):
                expr = self._parse_call_index(expr)
            elif token.kind is _K.QUOTE:
                self._advance()
                expr = ast.Transpose(span=expr.span.merge(token.span), operand=expr, conjugate=True)
            elif token.kind is _K.DOT_QUOTE:
                self._advance()
                expr = ast.Transpose(span=expr.span.merge(token.span), operand=expr, conjugate=False)
            elif token.kind is _K.LBRACE:
                raise self._error("cell arrays are not supported by this compiler")
            elif token.kind is _K.DOT and self._peek(1).kind is _K.IDENT:
                raise self._error("struct field access is not supported by this compiler")
            else:
                break
        return expr

    def _parse_call_index(self, target: ast.Expr) -> ast.Expr:
        lparen = self._expect(_K.LPAREN)
        self._paren_depth += 1
        self._index_depth += 1
        self._skip_newlines()
        args: list[ast.Expr] = []
        while not self._at(_K.RPAREN):
            args.append(self._parse_index_arg())
            if self._at(_K.COMMA):
                self._advance()
            elif not self._at(_K.RPAREN):
                raise self._error("expected ',' or ')' in argument list")
        rparen = self._advance()
        self._paren_depth -= 1
        self._index_depth -= 1
        return ast.CallIndex(
            span=target.span.merge(rparen.span), target=target, args=args
        )

    def _parse_index_arg(self) -> ast.Expr:
        token = self._peek()
        if token.kind is _K.COLON and self._peek(1).kind in (_K.COMMA, _K.RPAREN):
            self._advance()
            return ast.ColonAll(span=token.span)
        return self._parse_expression()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        kind = token.kind
        if kind is _K.INT_NUMBER:
            self._advance()
            return ast.NumberLit(span=token.span, value=float(token.value), is_integer=True)
        if kind is _K.NUMBER:
            self._advance()
            return ast.NumberLit(span=token.span, value=float(token.value))
        if kind is _K.IMAG_NUMBER:
            self._advance()
            return ast.ImagLit(span=token.span, value=float(token.value))
        if kind is _K.STRING:
            self._advance()
            return ast.StringLit(span=token.span, value=str(token.value))
        if kind is _K.IDENT:
            self._advance()
            return ast.Identifier(span=token.span, name=token.text)
        if kind is _K.KW_END:
            if self._index_depth == 0:
                raise self._error("'end' is only valid inside an index expression")
            self._advance()
            return ast.EndMarker(span=token.span)
        if kind is _K.LPAREN:
            self._advance()
            self._paren_depth += 1
            self._skip_newlines()
            inner = self._parse_expression()
            self._paren_depth -= 1
            self._expect(_K.RPAREN, "')'")
            return inner
        if kind is _K.LBRACKET:
            return self._parse_matrix_literal()
        if kind is _K.AT:
            return self._parse_at()
        if kind is _K.LBRACE:
            raise self._error("cell arrays are not supported by this compiler")
        raise self._error(f"unexpected token {token.text!r} in expression")

    def _parse_at(self) -> ast.Expr:
        at = self._expect(_K.AT)
        if self._at(_K.IDENT):
            name = self._advance()
            return ast.FuncHandle(span=at.span.merge(name.span), name=name.text)
        self._expect(_K.LPAREN, "'(' after '@'")
        params: list[str] = []
        while not self._at(_K.RPAREN):
            params.append(self._expect(_K.IDENT, "parameter name").text)
            if self._at(_K.COMMA):
                self._advance()
        self._advance()  # )
        body = self._parse_expression()
        return ast.AnonFunc(span=at.span.merge(body.span), params=params, body=body)

    def _parse_matrix_literal(self) -> ast.Expr:
        lbracket = self._expect(_K.LBRACKET)
        self._bracket_depth += 1
        self._index_depth += 1
        rows: list[list[ast.Expr]] = []
        current: list[ast.Expr] = []

        def finish_row() -> None:
            nonlocal current
            if current:
                rows.append(current)
                current = []

        while True:
            kind = self._peek().kind
            if kind is _K.RBRACKET:
                break
            if kind is _K.EOF:
                raise self._error("unterminated matrix literal")
            if kind is _K.SEMICOLON or kind is _K.NEWLINE:
                self._advance()
                finish_row()
                continue
            if kind is _K.COMMA:
                self._advance()
                continue
            current.append(self._parse_expression())
        rbracket = self._advance()
        finish_row()
        self._bracket_depth -= 1
        self._index_depth -= 1
        return ast.MatrixLit(span=lbracket.span.merge(rbracket.span), rows=rows)


def parse(source: str, filename: str = "<string>") -> ast.Program:
    """Parse MATLAB ``source`` text into a Program AST."""
    return Parser(source, filename).parse_program()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single MATLAB expression (testing convenience)."""
    parser = Parser(source)
    expr = parser._parse_expression()
    parser._skip_separators()
    if not parser._at(_K.EOF):
        raise parser._error("trailing input after expression")
    return expr
