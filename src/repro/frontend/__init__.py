"""MATLAB frontend: lexer, parser, AST, diagnostics."""
