"""Abstract syntax tree for the MATLAB subset.

Nodes are plain dataclasses.  Indexing and function calls are *not*
distinguished by the parser (MATLAB's ``f(x)`` is ambiguous until symbols
are resolved); both parse to :class:`CallIndex` and semantic analysis
classifies each occurrence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.source import Span


@dataclass
class Node:
    """Base class for all AST nodes."""

    span: Span

    def children(self) -> list["Node"]:
        """Child nodes, for generic traversal."""
        out: list[Node] = []
        for name in self.__dataclass_fields__:
            if name == "span":
                continue
            value = getattr(self, name)
            if isinstance(value, Node):
                out.append(value)
            elif isinstance(value, list):
                out.extend(v for v in value if isinstance(v, Node))
        return out


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class NumberLit(Expr):
    value: float
    is_integer: bool = False


@dataclass
class ImagLit(Expr):
    value: float  # imaginary part


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class Identifier(Expr):
    name: str


@dataclass
class EndMarker(Expr):
    """The ``end`` keyword used inside an indexing expression."""


@dataclass
class ColonAll(Expr):
    """A bare ``:`` subscript selecting a whole dimension."""


@dataclass
class UnaryOp(Expr):
    op: str  # '-', '+', '~'
    operand: Expr


@dataclass
class BinaryOp(Expr):
    op: str  # '+', '-', '*', '.*', '/', './', '\\', '.\\', '^', '.^',
    #          '==', '~=', '<', '<=', '>', '>=', '&', '|', '&&', '||'
    left: Expr
    right: Expr


@dataclass
class Transpose(Expr):
    operand: Expr
    conjugate: bool  # True for ', False for .'


@dataclass
class Range(Expr):
    """``start:stop`` or ``start:step:stop``."""

    start: Expr
    stop: Expr
    step: Expr | None = None


@dataclass
class MatrixLit(Expr):
    """``[a b; c d]`` — a list of rows, each a list of element exprs."""

    rows: list[list[Expr]] = field(default_factory=list)


@dataclass
class CallIndex(Expr):
    """``f(args)`` — call or paren-index, disambiguated semantically."""

    target: Expr
    args: list[Expr] = field(default_factory=list)


@dataclass
class AnonFunc(Expr):
    """``@(x, y) expr`` — stateless anonymous function."""

    params: list[str] = field(default_factory=list)
    body: Expr | None = None


@dataclass
class FuncHandle(Expr):
    """``@name`` — a handle to a named function."""

    name: str = ""


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class ExprStmt(Stmt):
    expr: Expr
    suppressed: bool = True  # ';'-terminated (no display)


@dataclass
class Assign(Stmt):
    """``lhs = rhs`` where lhs is an Identifier or CallIndex (indexed store)."""

    target: Expr
    value: Expr
    suppressed: bool = True


@dataclass
class MultiAssign(Stmt):
    """``[a, b] = f(...)`` — multiple return values."""

    targets: list[Expr]
    value: Expr
    suppressed: bool = True


@dataclass
class If(Stmt):
    """``if/elseif/else`` chain: branches are (condition, body) pairs."""

    branches: list[tuple[Expr, list[Stmt]]]
    else_body: list[Stmt] = field(default_factory=list)

    def children(self) -> list[Node]:
        out: list[Node] = []
        for cond, body in self.branches:
            out.append(cond)
            out.extend(body)
        out.extend(self.else_body)
        return out


@dataclass
class For(Stmt):
    var: str
    iterable: Expr
    body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    condition: Expr
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    """``switch/case/otherwise``; each case is (match-expr, body)."""

    subject: Expr
    cases: list[tuple[Expr, list[Stmt]]] = field(default_factory=list)
    otherwise: list[Stmt] = field(default_factory=list)

    def children(self) -> list[Node]:
        out: list[Node] = [self.subject]
        for match, body in self.cases:
            out.append(match)
            out.extend(body)
        out.extend(self.otherwise)
        return out


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    pass


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------


@dataclass
class Function(Node):
    """One ``function`` definition."""

    name: str
    params: list[str]
    returns: list[str]
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Program(Node):
    """A parsed file: one or more functions, or a script body."""

    functions: list[Function] = field(default_factory=list)
    script: list[Stmt] = field(default_factory=list)

    @property
    def is_script(self) -> bool:
        return bool(self.script)

    def main_function(self) -> Function | None:
        return self.functions[0] if self.functions else None


def walk(node: Node):
    """Yield ``node`` and all descendants in pre-order."""
    yield node
    for child in node.children():
        yield from walk(child)
