"""Diagnostics: errors and warnings with source locations.

All compiler stages report problems through a :class:`DiagnosticEngine`;
fatal problems raise :class:`CompileError` carrying the rendered message.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CompileError
from repro.frontend.source import SourceFile, Span


class Severity(enum.Enum):
    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    severity: Severity
    message: str
    span: Span
    stage: str = ""

    def render(self, source: SourceFile | None = None) -> str:
        where = self.span.filename
        if source is not None:
            line, col = source.line_col(self.span.start)
            where = f"{where}:{line}:{col}"
        head = f"{where}: {self.severity.value}: {self.message}"
        if source is not None:
            return head + "\n" + source.excerpt(self.span)
        return head


@dataclass
class DiagnosticEngine:
    """Collects diagnostics for one compilation; raises on error by default."""

    source: SourceFile | None = None
    fatal_errors: bool = True
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def error(self, message: str, span: Span, stage: str = "") -> None:
        diag = Diagnostic(Severity.ERROR, message, span, stage)
        self.diagnostics.append(diag)
        if self.fatal_errors:
            raise CompileError(diag.render(self.source))

    def warning(self, message: str, span: Span, stage: str = "") -> None:
        self.diagnostics.append(Diagnostic(Severity.WARNING, message, span, stage))

    def note(self, message: str, span: Span, stage: str = "") -> None:
        self.diagnostics.append(Diagnostic(Severity.NOTE, message, span, stage))

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.WARNING)

    def render_all(self) -> str:
        return "\n".join(d.render(self.source) for d in self.diagnostics)
