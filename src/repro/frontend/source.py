"""Source-text bookkeeping: files, positions, and spans.

Every AST node and token carries a :class:`Span` so diagnostics can point
at the offending MATLAB source.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Span:
    """A half-open [start, end) byte range in a source file."""

    start: int
    end: int
    filename: str = "<string>"

    def merge(self, other: "Span") -> "Span":
        """Smallest span covering both ``self`` and ``other``."""
        return Span(min(self.start, other.start), max(self.end, other.end), self.filename)

    @staticmethod
    def unknown() -> "Span":
        return Span(0, 0, "<unknown>")


@dataclass
class SourceFile:
    """A MATLAB source file with line-offset indexing for diagnostics."""

    text: str
    filename: str = "<string>"
    _line_starts: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        starts = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                starts.append(i + 1)
        self._line_starts = starts

    def line_col(self, offset: int) -> tuple[int, int]:
        """Map a byte offset to 1-based (line, column)."""
        offset = max(0, min(offset, len(self.text)))
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1, offset - self._line_starts[lo] + 1

    def line_text(self, line: int) -> str:
        """Return the 1-based ``line``'s text without its newline."""
        if not 1 <= line <= len(self._line_starts):
            return ""
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end < 0:
            end = len(self.text)
        return self.text[start:end]

    def excerpt(self, span: Span) -> str:
        """A caret-annotated excerpt for diagnostics rendering."""
        line, col = self.line_col(span.start)
        src = self.line_text(line)
        width = max(1, min(span.end, len(self.text)) - span.start)
        width = min(width, max(1, len(src) - col + 1))
        caret = " " * (col - 1) + "^" * width
        return f"{src}\n{caret}"
