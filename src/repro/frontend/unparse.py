"""AST -> MATLAB source rendering.

The inverse of the parser, for tools that *construct* programs as
:mod:`repro.frontend.ast_nodes` trees — the differential fuzzer's
program generator and delta-debugging reducer build ASTs and need
concrete source text to feed both ``compile_source`` (which parses
internally) and corpus files on disk.

Rendering is deliberately conservative: every compound subexpression is
parenthesized, so operator precedence never needs to be reproduced and
``parse(to_source(tree))`` is structurally faithful for the whole
supported subset.
"""

from __future__ import annotations

from repro.frontend import ast_nodes as ast

_INDENT = "  "


def to_source(node: "ast.Program | ast.Function | ast.Stmt") -> str:
    """Render a program, function, or single statement as MATLAB text."""
    if isinstance(node, ast.Program):
        if node.functions:
            return "\n\n".join(_function(f) for f in node.functions) + "\n"
        return "".join(_stmt(s, 0) for s in node.script)
    if isinstance(node, ast.Function):
        return _function(node) + "\n"
    return _stmt(node, 0)


def expr_source(expr: ast.Expr) -> str:
    """Render one expression (without statement terminator)."""
    return _expr(expr)


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------


def _function(func: ast.Function) -> str:
    if len(func.returns) == 1:
        head = f"function {func.returns[0]} = {func.name}"
    elif func.returns:
        head = f"function [{', '.join(func.returns)}] = {func.name}"
    else:
        head = f"function {func.name}"
    head += f"({', '.join(func.params)})"
    body = "".join(_stmt(s, 1) for s in func.body)
    return f"{head}\n{body}end"


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


def _stmt(stmt: ast.Stmt, depth: int) -> str:
    pad = _INDENT * depth
    if isinstance(stmt, ast.ExprStmt):
        return f"{pad}{_expr(stmt.expr)}{';' if stmt.suppressed else ''}\n"
    if isinstance(stmt, ast.Assign):
        tail = ";" if stmt.suppressed else ""
        return f"{pad}{_expr(stmt.target)} = {_expr(stmt.value)}{tail}\n"
    if isinstance(stmt, ast.MultiAssign):
        targets = ", ".join(_expr(t) for t in stmt.targets)
        tail = ";" if stmt.suppressed else ""
        return f"{pad}[{targets}] = {_expr(stmt.value)}{tail}\n"
    if isinstance(stmt, ast.If):
        out = []
        for index, (cond, body) in enumerate(stmt.branches):
            kw = "if" if index == 0 else "elseif"
            out.append(f"{pad}{kw} {_expr(cond)}\n")
            out.extend(_stmt(s, depth + 1) for s in body)
        if stmt.else_body:
            out.append(f"{pad}else\n")
            out.extend(_stmt(s, depth + 1) for s in stmt.else_body)
        out.append(f"{pad}end\n")
        return "".join(out)
    if isinstance(stmt, ast.For):
        body = "".join(_stmt(s, depth + 1) for s in stmt.body)
        return f"{pad}for {stmt.var} = {_expr(stmt.iterable)}\n{body}{pad}end\n"
    if isinstance(stmt, ast.While):
        body = "".join(_stmt(s, depth + 1) for s in stmt.body)
        return f"{pad}while {_expr(stmt.condition)}\n{body}{pad}end\n"
    if isinstance(stmt, ast.Switch):
        out = [f"{pad}switch {_expr(stmt.subject)}\n"]
        for match, body in stmt.cases:
            out.append(f"{pad}{_INDENT}case {_expr(match)}\n")
            out.extend(_stmt(s, depth + 2) for s in body)
        if stmt.otherwise:
            out.append(f"{pad}{_INDENT}otherwise\n")
            out.extend(_stmt(s, depth + 2) for s in stmt.otherwise)
        out.append(f"{pad}end\n")
        return "".join(out)
    if isinstance(stmt, ast.Break):
        return f"{pad}break;\n"
    if isinstance(stmt, ast.Continue):
        return f"{pad}continue;\n"
    if isinstance(stmt, ast.Return):
        return f"{pad}return;\n"
    raise TypeError(f"cannot unparse statement {type(stmt).__name__}")


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


def _number(value: float) -> str:
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(float(value))


def _expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.NumberLit):
        return _number(expr.value)
    if isinstance(expr, ast.ImagLit):
        return _number(expr.value) + "i"
    if isinstance(expr, ast.StringLit):
        return "'" + expr.value.replace("'", "''") + "'"
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.EndMarker):
        return "end"
    if isinstance(expr, ast.ColonAll):
        return ":"
    if isinstance(expr, ast.UnaryOp):
        return f"{expr.op}{_paren(expr.operand)}"
    if isinstance(expr, ast.BinaryOp):
        return f"{_paren(expr.left)} {expr.op} {_paren(expr.right)}"
    if isinstance(expr, ast.Transpose):
        mark = "'" if expr.conjugate else ".'"
        return f"{_paren(expr.operand)}{mark}"
    if isinstance(expr, ast.Range):
        parts = [_paren(expr.start)]
        if expr.step is not None:
            parts.append(_paren(expr.step))
        parts.append(_paren(expr.stop))
        return ":".join(parts)
    if isinstance(expr, ast.MatrixLit):
        rows = "; ".join(", ".join(_paren(e) for e in row)
                         for row in expr.rows)
        return f"[{rows}]"
    if isinstance(expr, ast.CallIndex):
        target = _expr(expr.target) if isinstance(
            expr.target, ast.Identifier) else _paren(expr.target)
        return f"{target}({', '.join(_expr(a) for a in expr.args)})"
    if isinstance(expr, ast.AnonFunc):
        return f"@({', '.join(expr.params)}) {_paren(expr.body)}"
    if isinstance(expr, ast.FuncHandle):
        return f"@{expr.name}"
    raise TypeError(f"cannot unparse expression {type(expr).__name__}")


#: Expression kinds that never need wrapping when used as an operand.
_ATOMS = (ast.NumberLit, ast.ImagLit, ast.StringLit, ast.Identifier,
          ast.EndMarker, ast.MatrixLit, ast.CallIndex, ast.FuncHandle)


def _paren(expr: ast.Expr) -> str:
    if isinstance(expr, _ATOMS):
        return _expr(expr)
    return f"({_expr(expr)})"
