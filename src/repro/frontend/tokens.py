"""Token definitions for the MATLAB frontend.

The lexer produces a flat stream of :class:`Token` objects.  Tokens carry
their source span (for diagnostics) and a ``space_before`` flag which the
parser needs to disambiguate MATLAB's space-sensitive matrix-literal
syntax (``[1 -2]`` is two elements, ``[1 - 2]`` is one).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.frontend.source import Span


class TokenKind(enum.Enum):
    """Lexical categories of the MATLAB subset."""

    # Literals and names
    NUMBER = "number"              # 1, 2.5, 1e-3  (value: float)
    IMAG_NUMBER = "imag_number"    # 3i, 2.5j      (value: float, imag part)
    INT_NUMBER = "int_number"      # integer-valued literal (value: int)
    STRING = "string"              # 'text'        (value: str)
    IDENT = "ident"

    # Keywords
    KW_FUNCTION = "function"
    KW_END = "end"
    KW_IF = "if"
    KW_ELSEIF = "elseif"
    KW_ELSE = "else"
    KW_FOR = "for"
    KW_WHILE = "while"
    KW_SWITCH = "switch"
    KW_CASE = "case"
    KW_OTHERWISE = "otherwise"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_RETURN = "return"

    # Operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    BACKSLASH = "\\"
    CARET = "^"
    DOT_STAR = ".*"
    DOT_SLASH = "./"
    DOT_BACKSLASH = ".\\"
    DOT_CARET = ".^"
    QUOTE = "'"          # complex-conjugate transpose
    DOT_QUOTE = ".'"     # plain transpose
    ASSIGN = "="
    EQ = "=="
    NEQ = "~="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AMP = "&"
    PIPE = "|"
    AMP_AMP = "&&"
    PIPE_PIPE = "||"
    TILDE = "~"
    COLON = ":"
    COMMA = ","
    SEMICOLON = ";"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    AT = "@"
    DOT = "."

    # Structure
    NEWLINE = "newline"
    EOF = "eof"


#: Reserved words mapped to their keyword token kinds.
KEYWORDS = {
    "function": TokenKind.KW_FUNCTION,
    "end": TokenKind.KW_END,
    "if": TokenKind.KW_IF,
    "elseif": TokenKind.KW_ELSEIF,
    "else": TokenKind.KW_ELSE,
    "for": TokenKind.KW_FOR,
    "while": TokenKind.KW_WHILE,
    "switch": TokenKind.KW_SWITCH,
    "case": TokenKind.KW_CASE,
    "otherwise": TokenKind.KW_OTHERWISE,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "return": TokenKind.KW_RETURN,
}


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        kind: lexical category.
        text: exact source text of the token.
        span: source location.
        value: decoded literal value (float/int/str) for literal tokens.
        space_before: True when whitespace (or a continuation) separated
            this token from the previous one on the same logical line.
    """

    kind: TokenKind
    text: str
    span: Span
    value: object = None
    space_before: bool = False

    def is_keyword(self) -> bool:
        return self.kind.name.startswith("KW_")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        val = f", value={self.value!r}" if self.value is not None else ""
        return f"Token({self.kind.name}, {self.text!r}{val})"


#: Tokens after which a single-quote means transpose rather than a string.
TRANSPOSE_CONTEXT = frozenset(
    {
        TokenKind.IDENT,
        TokenKind.NUMBER,
        TokenKind.INT_NUMBER,
        TokenKind.IMAG_NUMBER,
        TokenKind.RPAREN,
        TokenKind.RBRACKET,
        TokenKind.RBRACE,
        TokenKind.QUOTE,
        TokenKind.DOT_QUOTE,
        TokenKind.KW_END,
    }
)
