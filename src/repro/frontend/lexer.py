"""Tokenizer for the MATLAB subset.

Handles the classically awkward corners of MATLAB lexing:

* single-quote is *transpose* after a value-like token and a *string
  delimiter* elsewhere (``a'`` vs ``'a'``), with ``''`` as the in-string
  escape;
* ``...`` swallows the rest of the line and the newline (continuation);
* ``%`` line comments and ``%{``/``%}`` block comments;
* imaginary literals ``3i`` / ``2.5e-1j``;
* ``1.`` / ``.5`` numeric forms, and the ``1.^2`` ambiguity (the ``.``
  binds to the operator, not the number, when followed by an operator
  character — matching MATLAB);
* ``space_before`` flags so the parser can resolve ``[1 -2]`` vs
  ``[1 - 2]``.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.frontend.source import SourceFile, Span
from repro.frontend.tokens import KEYWORDS, TRANSPOSE_CONTEXT, Token, TokenKind

_OPERATOR_CHARS = "*/\\^'"  # chars that can follow '.' to form an operator


class Lexer:
    """Converts MATLAB source text into a token stream."""

    def __init__(self, source: SourceFile | str):
        if isinstance(source, str):
            source = SourceFile(source)
        self.source = source
        self.text = source.text
        self.pos = 0
        self.tokens: list[Token] = []
        self._space_pending = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Tokenize the whole file, appending a final EOF token."""
        while self.pos < len(self.text):
            self._scan_one()
        self._emit(TokenKind.EOF, self.pos, self.pos)
        return self.tokens

    # ------------------------------------------------------------------
    # Scanning machinery
    # ------------------------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        return self.text[i] if i < len(self.text) else ""

    def _emit(self, kind: TokenKind, start: int, end: int, value: object = None) -> None:
        token = Token(
            kind=kind,
            text=self.text[start:end],
            span=Span(start, end, self.source.filename),
            value=value,
            space_before=self._space_pending,
        )
        self.tokens.append(token)
        self._space_pending = False

    def _last_kind(self) -> TokenKind | None:
        for token in reversed(self.tokens):
            return token.kind
        return None

    def _error(self, message: str, start: int) -> LexError:
        line, col = self.source.line_col(start)
        return LexError(f"{self.source.filename}:{line}:{col}: {message}")

    def _scan_one(self) -> None:
        ch = self._peek()

        if ch in " \t\r":
            self.pos += 1
            self._space_pending = True
            return
        if ch == "\n":
            self._emit(TokenKind.NEWLINE, self.pos, self.pos + 1)
            self.pos += 1
            return
        if ch == "%":
            self._scan_comment()
            return
        if self.text.startswith("...", self.pos):
            self._scan_continuation()
            return
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            self._scan_number()
            return
        if ch.isalpha() or ch == "_":
            self._scan_ident()
            return
        if ch == "'":
            if self._last_kind() in TRANSPOSE_CONTEXT and not self._space_pending:
                self._emit(TokenKind.QUOTE, self.pos, self.pos + 1)
                self.pos += 1
            else:
                self._scan_string()
            return
        self._scan_operator()

    def _scan_comment(self) -> None:
        # Block comment: '%{' alone on a line opens, '%}' alone closes.
        line_start = self.text.rfind("\n", 0, self.pos) + 1
        before = self.text[line_start:self.pos]
        if self.text.startswith("%{", self.pos) and before.strip() == "":
            self._scan_block_comment()
            return
        end = self.text.find("\n", self.pos)
        self.pos = len(self.text) if end < 0 else end  # keep the newline token

    def _scan_block_comment(self) -> None:
        start = self.pos
        depth = 0
        i = self.pos
        while i < len(self.text):
            nl = self.text.find("\n", i)
            line = self.text[i:nl if nl >= 0 else len(self.text)].strip()
            if line == "%{":
                depth += 1
            elif line == "%}":
                depth -= 1
                if depth == 0:
                    self.pos = nl + 1 if nl >= 0 else len(self.text)
                    self._space_pending = True
                    return
            if nl < 0:
                break
            i = nl + 1
        raise self._error("unterminated block comment", start)

    def _scan_continuation(self) -> None:
        # '...' swallows the rest of the line and its newline.
        end = self.text.find("\n", self.pos)
        self.pos = len(self.text) if end < 0 else end + 1
        self._space_pending = True

    def _scan_number(self) -> None:
        start = self.pos
        i = self.pos
        text = self.text
        while i < len(text) and text[i].isdigit():
            i += 1
        is_float = False
        if i < len(text) and text[i] == ".":
            # '1.^2' etc: the dot belongs to the operator, not the number.
            nxt = text[i + 1] if i + 1 < len(text) else ""
            if not (nxt and nxt in _OPERATOR_CHARS):
                is_float = True
                i += 1
                while i < len(text) and text[i].isdigit():
                    i += 1
        if i < len(text) and text[i] in "eEdD":  # MATLAB accepts 1d3 too
            j = i + 1
            if j < len(text) and text[j] in "+-":
                j += 1
            if j < len(text) and text[j].isdigit():
                is_float = True
                i = j
                while i < len(text) and text[i].isdigit():
                    i += 1
        literal = text[start:i].replace("d", "e").replace("D", "E")
        if i < len(text) and text[i] in "ij" and not self._ident_continues(i + 1):
            i += 1
            self._emit(TokenKind.IMAG_NUMBER, start, i, float(literal))
        elif is_float:
            self._emit(TokenKind.NUMBER, start, i, float(literal))
        else:
            self._emit(TokenKind.INT_NUMBER, start, i, int(literal))
        self.pos = i

    def _ident_continues(self, i: int) -> bool:
        if i >= len(self.text):
            return False
        ch = self.text[i]
        return ch.isalnum() or ch == "_"

    def _scan_ident(self) -> None:
        start = self.pos
        i = self.pos
        while i < len(self.text) and (self.text[i].isalnum() or self.text[i] == "_"):
            i += 1
        name = self.text[start:i]
        kind = KEYWORDS.get(name, TokenKind.IDENT)
        self._emit(kind, start, i, name if kind is TokenKind.IDENT else None)
        self.pos = i

    def _scan_string(self) -> None:
        start = self.pos
        i = self.pos + 1
        chars: list[str] = []
        while i < len(self.text):
            ch = self.text[i]
            if ch == "\n":
                raise self._error("unterminated string literal", start)
            if ch == "'":
                if self.text[i + 1:i + 2] == "'":  # '' escapes a quote
                    chars.append("'")
                    i += 2
                    continue
                i += 1
                self._emit(TokenKind.STRING, start, i, "".join(chars))
                self.pos = i
                return
            chars.append(ch)
            i += 1
        raise self._error("unterminated string literal", start)

    _TWO_CHAR = {
        ".*": TokenKind.DOT_STAR,
        "./": TokenKind.DOT_SLASH,
        ".\\": TokenKind.DOT_BACKSLASH,
        ".^": TokenKind.DOT_CARET,
        ".'": TokenKind.DOT_QUOTE,
        "==": TokenKind.EQ,
        "~=": TokenKind.NEQ,
        "<=": TokenKind.LE,
        ">=": TokenKind.GE,
        "&&": TokenKind.AMP_AMP,
        "||": TokenKind.PIPE_PIPE,
    }

    _ONE_CHAR = {
        "+": TokenKind.PLUS,
        "-": TokenKind.MINUS,
        "*": TokenKind.STAR,
        "/": TokenKind.SLASH,
        "\\": TokenKind.BACKSLASH,
        "^": TokenKind.CARET,
        "=": TokenKind.ASSIGN,
        "<": TokenKind.LT,
        ">": TokenKind.GT,
        "&": TokenKind.AMP,
        "|": TokenKind.PIPE,
        "~": TokenKind.TILDE,
        ":": TokenKind.COLON,
        ",": TokenKind.COMMA,
        ";": TokenKind.SEMICOLON,
        "(": TokenKind.LPAREN,
        ")": TokenKind.RPAREN,
        "[": TokenKind.LBRACKET,
        "]": TokenKind.RBRACKET,
        "{": TokenKind.LBRACE,
        "}": TokenKind.RBRACE,
        "@": TokenKind.AT,
        ".": TokenKind.DOT,
    }

    def _scan_operator(self) -> None:
        two = self.text[self.pos:self.pos + 2]
        if two in self._TWO_CHAR:
            self._emit(self._TWO_CHAR[two], self.pos, self.pos + 2)
            self.pos += 2
            return
        one = self._peek()
        kind = self._ONE_CHAR.get(one)
        if kind is None:
            raise self._error(f"unexpected character {one!r}", self.pos)
        self._emit(kind, self.pos, self.pos + 1)
        self.pos += 1


def tokenize(source: SourceFile | str) -> list[Token]:
    """Convenience wrapper: tokenize ``source`` and return the token list."""
    return Lexer(source).tokenize()
