"""Numeric semantics shared by the interpreter and the compiler.

The MATLAB colon operator ``start:step:stop`` has an inclusive-stop
fencepost rule that both the golden interpreter (at run time, in
:func:`repro.mlab.builtins_rt.colon`) and the type inferencer (at
compile time, when a range's element count becomes a static shape)
must evaluate **identically** — a one-element disagreement silently
changes every downstream shape and is exactly the kind of divergence
the differential fuzzer exists to catch.  The rule therefore lives
here, in one place, below both layers.

:func:`c_pow` is here for the same reason: both simulator backends
model the *C* ``pow``, whose edge cases (overflow to ``HUGE_VAL``,
``pow(0, -1)``) Python's ``**`` turns into exceptions instead.
"""

from __future__ import annotations

import math

#: double-precision machine epsilon (2^-52).
_EPS = 2.220446049250313e-16


def range_count(start: float, step: float, stop: float) -> int:
    """Element count of the MATLAB range ``start:step:stop``.

    The stop value is inclusive up to a *magnitude-relative* tolerance:
    the quotient ``(stop - start) / step`` carries rounding error
    proportional to ``eps * max(|start|, |stop|) / |step|`` (and to
    ``eps`` times its own magnitude), so the fencepost comparison must
    scale with those quantities.  A fixed absolute epsilon — the
    historical bug here — both *loses* elements from large-magnitude or
    tiny-step ranges (where the representation error exceeds the
    epsilon) and *gains* a beyond-stop element on ranges like
    ``0 : 1 : 5 - 1e-11`` (where a genuine below-integer quotient sits
    inside the epsilon).

    Raises :class:`OverflowError` when the count is unbounded
    (infinite bounds with a finite step); callers map that to their own
    error type.
    """
    if step == 0 or math.isnan(start) or math.isnan(step) or math.isnan(stop):
        return 0
    quotient = (stop - start) / step
    if math.isnan(quotient):  # inf bounds cancelling: inf/inf
        return 0
    if quotient < 0:
        return 0
    if math.isinf(quotient):
        raise OverflowError("range has unbounded element count")
    tolerance = 3.0 * _EPS * (
        max(abs(start), abs(stop)) / abs(step) + abs(quotient) + 1.0)
    # An ill-conditioned fencepost (tolerance approaching one spacing)
    # cannot be decided reliably either way; cap the slack so the count
    # stays sane instead of swallowing whole elements.
    tolerance = min(tolerance, 0.25)
    return max(int(math.floor(quotient + tolerance)) + 1, 0)


def c_pow(base, exponent):
    """``base ** exponent`` with C ``pow`` / IEEE-754 edge semantics.

    Python raises ``OverflowError`` when a float power overflows and
    ``ZeroDivisionError`` for ``0.0 ** negative``; C's ``pow`` (and
    numpy, which the golden interpreter uses) returns ``±HUGE_VAL``
    in both cases — negative for a negative base raised to an odd
    integer exponent.
    """
    try:
        return base ** exponent
    except OverflowError:
        if isinstance(base, complex) or isinstance(exponent, complex):
            return complex(float("inf"), 0.0)
        negative = base < 0 and float(exponent).is_integer() \
            and int(exponent) % 2 == 1
        return float("-inf") if negative else float("inf")
    except ZeroDivisionError:
        return float("inf")
