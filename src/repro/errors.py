"""Exception hierarchy shared by all compiler stages, and the exit-code
contract shared by every CLI entry point.

Exit codes are pinned (and tested in ``tests/test_cli.py``) so scripts
and CI can branch on them:

* ``EXIT_OK`` (0)       — success; for ``repro-fuzz``/``repro-batch``,
  zero findings / all jobs succeeded.
* ``EXIT_FAILURE`` (1)  — an *operational* failure: compile error,
  unreadable input, unwritable report, fuzz divergences found, batch
  jobs failed.
* ``EXIT_USAGE`` (2)    — bad invocation (argparse's own convention).
* ``EXIT_INTERNAL`` (3) — an unexpected internal exception; the CLI
  prints the traceback to stderr instead of letting it escape, so a
  crash is distinguishable from a legitimate failure.
"""

from __future__ import annotations

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_INTERNAL = 3


class ReproError(Exception):
    """Base class for every error raised by this package."""


class CompileError(ReproError):
    """A user-facing compilation failure (syntax, types, shapes, lowering)."""


class LexError(CompileError):
    """Tokenization failure."""


class ParseError(CompileError):
    """Syntactic failure."""


class SemanticError(CompileError):
    """Type/shape inference or symbol resolution failure."""


class UnsupportedFeatureError(CompileError):
    """The program uses MATLAB features outside the supported subset."""


class LoweringError(CompileError):
    """AST-to-IR lowering failure."""


class BackendError(ReproError):
    """C emission failure (indicates a compiler bug, not a user error)."""


class SimulationError(ReproError):
    """The IR executor / cycle simulator hit an inconsistency."""


class InterpreterError(ReproError):
    """The golden MATLAB interpreter hit a runtime error in user code."""


class IsaError(ReproError):
    """Invalid processor description."""


class SpaceError(ReproError):
    """Invalid design-space description (``repro-dse --space``).

    Carries a sourced diagnostic (file and field) so the CLI can
    report it as a usage error (``EXIT_USAGE``), never a traceback.
    """
