"""Exception hierarchy shared by all compiler stages."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class CompileError(ReproError):
    """A user-facing compilation failure (syntax, types, shapes, lowering)."""


class LexError(CompileError):
    """Tokenization failure."""


class ParseError(CompileError):
    """Syntactic failure."""


class SemanticError(CompileError):
    """Type/shape inference or symbol resolution failure."""


class UnsupportedFeatureError(CompileError):
    """The program uses MATLAB features outside the supported subset."""


class LoweringError(CompileError):
    """AST-to-IR lowering failure."""


class BackendError(ReproError):
    """C emission failure (indicates a compiler bug, not a user error)."""


class SimulationError(ReproError):
    """The IR executor / cycle simulator hit an inconsistency."""


class InterpreterError(ReproError):
    """The golden MATLAB interpreter hit a runtime error in user code."""


class IsaError(ReproError):
    """Invalid processor description."""
