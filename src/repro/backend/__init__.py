"""ANSI C emission and host-compilation harness."""
