"""C-level type naming shared by the emitter and the harness."""

from __future__ import annotations

from repro.errors import BackendError
from repro.asip.header_gen import c_elem_name, vector_type_name
from repro.ir.types import ArrayType, IRType, ScalarKind, ScalarType, VectorType


def c_type_name(ir_type: IRType) -> str:
    """The C type used for one IR value (element type for arrays)."""
    if isinstance(ir_type, ScalarType):
        return c_elem_name(ir_type.kind)
    if isinstance(ir_type, VectorType):
        return vector_type_name(ir_type.elem.kind, ir_type.lanes)
    if isinstance(ir_type, ArrayType):
        return c_elem_name(ir_type.elem.kind)
    raise BackendError(f"no C representation for {ir_type!r}")


def complex_helper_prefix(kind: ScalarKind) -> str:
    if kind is ScalarKind.C64:
        return "asip_c64"
    if kind is ScalarKind.C128:
        return "asip_c128"
    raise BackendError(f"{kind} is not a complex kind")


def is_f32(ir_type: IRType) -> bool:
    return isinstance(ir_type, ScalarType) and ir_type.kind is ScalarKind.F32
