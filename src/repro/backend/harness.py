"""Host-compilation harness.

Proves the paper's ANSI-C claim end-to-end: the generated translation
unit (intrinsics fallbacks + compiled functions) is combined with a
``main()`` that embeds concrete input data, compiled with a host C
compiler in strict C89 mode, executed, and its printed outputs parsed
back for comparison against the golden interpreter / simulator.
"""

from __future__ import annotations

import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.backend.c_types import c_type_name
from repro.errors import BackendError
from repro.ir.types import ArrayType, ScalarKind, ScalarType

#: Strict-ANSI conformance flags (the paper targets "any C compiler");
#: shared by the exec harness and the native ``.so`` build.
STRICT_FLAGS = ["-std=c89", "-pedantic"]

#: Compile-phase flags for the exec harness.
COMPILE_FLAGS = [*STRICT_FLAGS, "-O1"]

#: Link-phase flags.  Kept separate from the compile flags so ``-lm``
#: is always passed *after* the source files: toolchains that process
#: libraries positionally resolve undefined symbols left to right, and
#: a leading ``-lm`` silently links nothing.
LINK_FLAGS = ["-lm"]

#: Back-compat combined set; callers passing one flat list get it
#: re-split by :func:`split_flags` before the compiler is invoked.
DEFAULT_FLAGS = [*COMPILE_FLAGS, *LINK_FLAGS]


def split_flags(flags: "list[str]") -> "tuple[list[str], list[str]]":
    """Split one flat flag list into (compile flags, link flags)."""
    link = [f for f in flags if f.startswith("-l")]
    compile_ = [f for f in flags if not f.startswith("-l")]
    return compile_, link


def _literal(value: float, f32: bool) -> str:
    text = repr(float(value))
    if text == "inf":
        return "HUGE_VAL"
    if text == "-inf":
        return "-HUGE_VAL"
    if "e" not in text and "." not in text:
        text += ".0"
    return text + ("f" if f32 else "")


def _array_initializer(values: np.ndarray, elem: ScalarType) -> str:
    f32 = elem.kind in (ScalarKind.F32, ScalarKind.C64)
    flat = np.asarray(values).reshape(-1, order="F")
    if elem.is_complex:
        parts = [f"{{{_literal(v.real, f32)}, {_literal(v.imag, f32)}}}"
                 for v in flat.astype(complex)]
    elif elem.is_integer:
        parts = [str(int(v)) for v in flat]
    else:
        parts = [_literal(float(v), f32) for v in flat]
    return "{" + ", ".join(parts) + "}"


def generate_main(module, args: list[object]) -> str:
    """A ``main()`` calling the entry point on embedded input data."""
    entry = module.entry_function
    lines: list[str] = ["int main(void)", "{"]
    call_args: list[str] = []
    for index, (param, value) in enumerate(zip(entry.params, args)):
        name = f"in{index}"
        if isinstance(param.type, ArrayType):
            elem = ScalarType(param.type.elem.kind)
            init = _array_initializer(np.asarray(value), elem)
            lines.append(f"    static const {c_type_name(param.type)} "
                         f"{name}[{param.type.numel}] = {init};")
            call_args.append(name)
        else:
            scalar = param.type
            # Callers may pass a 1x1 array for a scalar parameter (the
            # interpreter's canonical form); numpy refuses complex() on
            # non-0-d arrays, so collapse to a Python scalar first.
            if isinstance(value, np.ndarray):
                value = value.reshape(-1)[0]
            if scalar.is_complex:
                v = complex(value)
                call_args.append(
                    f"asip_c128_make({_literal(v.real, False)}, "
                    f"{_literal(v.imag, False)})"
                    if scalar.kind is ScalarKind.C128 else
                    f"asip_c64_make({_literal(v.real, True)}, "
                    f"{_literal(v.imag, True)})")
            elif scalar.is_integer:
                call_args.append(str(int(value)))
            else:
                f32 = scalar.kind is ScalarKind.F32
                call_args.append(_literal(float(value), f32))

    out_decls: list[str] = []
    for index, out in enumerate(entry.outputs):
        name = f"o{index}"
        if isinstance(out.type, ArrayType):
            out_decls.append(f"    static {c_type_name(out.type)} "
                             f"{name}[{out.type.numel}];")
            call_args.append(name)
        else:
            out_decls.append(f"    {c_type_name(out.type)} {name};")
            call_args.append(f"&{name}")
    lines.extend(out_decls)
    lines.append("    {")
    lines.append(f"        {entry.name}({', '.join(call_args)});")
    lines.append("    }")

    for index, out in enumerate(entry.outputs):
        name = f"o{index}"
        if isinstance(out.type, ArrayType):
            elem = out.type.elem
            lines.append("    {")
            lines.append("        int i;")
            if elem.is_complex:
                lines.append(
                    f"        for (i = 0; i < {out.type.numel}; ++i) "
                    f'printf("%.17g %.17g\\n", (double){name}[i].re, '
                    f"(double){name}[i].im);")
            else:
                lines.append(
                    f"        for (i = 0; i < {out.type.numel}; ++i) "
                    f'printf("%.17g\\n", (double){name}[i]);')
            lines.append("    }")
        else:
            if out.type.is_complex:
                lines.append(f'    printf("%.17g %.17g\\n", '
                             f"(double){name}.re, (double){name}.im);")
            else:
                lines.append(f'    printf("%.17g\\n", (double){name});')
    lines.append("    return 0;")
    lines.append("}")
    return "\n".join(lines)


def run_via_gcc(result, args: list[object], cc: str = "gcc",
                flags: list[str] | None = None,
                keep_dir: str | None = None) -> list[object]:
    """Compile the generated C with a host compiler and execute it.

    Returns the entry point's outputs as numpy arrays / scalars in
    MATLAB shape, parsed from the program's stdout.
    """
    from repro.backend.emitter import emit_c

    flags = list(DEFAULT_FLAGS if flags is None else flags)
    module = result.module
    main_text = generate_main(module, args)
    source = emit_c(module, result.processor, with_main=True,
                    main_body=main_text)

    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(keep_dir or tmp)
        workdir.mkdir(parents=True, exist_ok=True)
        c_path = workdir / "generated.c"
        exe_path = workdir / "generated"
        c_path.write_text(source)
        compile_flags, link_flags = split_flags(flags)
        proc = subprocess.run(
            [cc, *compile_flags, str(c_path), "-o", str(exe_path),
             *link_flags],
            capture_output=True, text=True)
        if proc.returncode != 0:
            raise BackendError(
                f"host C compilation failed:\n{proc.stderr}")
        run = subprocess.run([str(exe_path)], capture_output=True,
                             text=True, timeout=120)
        if run.returncode != 0:
            raise BackendError(
                f"compiled program exited with {run.returncode}:\n"
                f"{run.stderr}")
        return _parse_outputs(module, run.stdout)


def _parse_outputs(module, stdout: str) -> list[object]:
    entry = module.entry_function
    lines = [line for line in stdout.splitlines() if line.strip()]
    outputs: list[object] = []
    cursor = 0
    for out in entry.outputs:
        if isinstance(out.type, ArrayType):
            count = out.type.numel
            chunk = lines[cursor:cursor + count]
            cursor += count
            if out.type.elem.is_complex:
                values = np.array([complex(float(a), float(b))
                                   for a, b in (line.split()
                                                for line in chunk)])
            else:
                values = np.array([float(line) for line in chunk])
            outputs.append(values.reshape((out.type.rows, out.type.cols),
                                          order="F"))
        else:
            line = lines[cursor]
            cursor += 1
            if out.type.is_complex:
                re, im = line.split()
                outputs.append(complex(float(re), float(im)))
            else:
                outputs.append(float(line))
    return outputs
