"""IR-to-ANSI-C emission.

Produces one self-contained C89 translation unit: the processor's
intrinsics header (with portable fallbacks) followed by every lowered
function.  Custom instructions appear as intrinsic calls, exactly as the
paper describes; everything else is plain scalar C.

Conventions:

* arrays are flat column-major buffers; inputs are ``const T *``,
  array outputs ``T *``;
* scalar outputs are pointer out-parameters written back at function
  exit (and before every early return);
* all locals are declared at block start (C89) and zero-initialized.
"""

from __future__ import annotations

import math

from repro.asip.header_gen import generate_header
from repro.asip.model import ProcessorDescription
from repro.backend.c_types import c_type_name, complex_helper_prefix
from repro.errors import BackendError
from repro.ir import nodes as ir
from repro.ir.types import ArrayType, ScalarKind, ScalarType, VectorType


def emit_c(module: ir.IRModule, processor: ProcessorDescription,
           with_main: bool = False, main_body: str | None = None) -> str:
    """Render the whole module as one self-contained C file."""
    writer = _CWriter()
    writer.raw(generate_header(processor))
    writer.raw("")
    writer.raw(f"/* ---- compiled MATLAB functions (entry: "
               f"{module.entry}) ---- */")
    writer.raw("")
    for func in module.functions:
        is_entry = func.name == module.entry
        _FunctionEmitter(writer, func, module,
                         static=not is_entry).emit()
        writer.raw("")
    if with_main and main_body is not None:
        writer.raw(main_body)
    return writer.text()


class _CWriter:
    def __init__(self) -> None:
        self._lines: list[str] = []
        self._indent = 0

    def raw(self, text: str) -> None:
        self._lines.append(text)

    def line(self, text: str = "") -> None:
        self._lines.append("    " * self._indent + text if text else "")

    def open(self, text: str) -> None:
        self.line(text + " {")
        self._indent += 1

    def close(self, suffix: str = "") -> None:
        self._indent -= 1
        self.line("}" + suffix)

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"


class _FunctionEmitter:
    def __init__(self, writer: _CWriter, func: ir.IRFunction,
                 module: ir.IRModule, static: bool):
        self.w = writer
        self.func = func
        self.module = module
        self.static = static
        self.scalar_outputs = [p for p in func.outputs
                               if isinstance(p.type, ScalarType)]

    # ------------------------------------------------------------------
    # Function shell
    # ------------------------------------------------------------------

    def emit(self) -> None:
        signature = self._signature()
        if self.func.source_name:
            self.w.line(f"/* from MATLAB function "
                        f"{self.func.source_name!r} */")
        self.w.open(signature)
        self._declare_locals()
        for stmt in self.func.body:
            self._stmt(stmt)
        self._writebacks()
        self.w.close()

    def _signature(self) -> str:
        parts: list[str] = []
        for param in self.func.params:
            if isinstance(param.type, ArrayType):
                parts.append(
                    f"const {c_type_name(param.type)} *{param.name}")
            else:
                parts.append(f"{c_type_name(param.type)} {param.name}")
        for out in self.func.outputs:
            if isinstance(out.type, ArrayType):
                parts.append(f"{c_type_name(out.type)} *{out.name}")
            else:
                parts.append(f"{c_type_name(out.type)} *out_{out.name}")
        prefix = "static " if self.static else ""
        args = ", ".join(parts) if parts else "void"
        return f"{prefix}void {self.func.name}({args})"

    def _declare_locals(self) -> None:
        for name, ir_type in self.func.locals.items():
            if isinstance(ir_type, ArrayType):
                self.w.line(f"{c_type_name(ir_type)} {name}"
                            f"[{ir_type.numel}];")
            elif isinstance(ir_type, VectorType):
                self.w.line(f"{c_type_name(ir_type)} {name};")
            else:
                init = self._zero_of(ir_type)
                self.w.line(f"{c_type_name(ir_type)} {name} = {init};")
        for name, ir_type in self.func.locals.items():
            if isinstance(ir_type, ArrayType):
                self.w.line(f"memset({name}, 0, sizeof {name});")

    def _zero_of(self, scalar: ScalarType) -> str:
        if scalar.is_complex:
            prefix = complex_helper_prefix(scalar.kind)
            zero = "0.0f" if scalar.kind is ScalarKind.C64 else "0.0"
            return f"{prefix}_make({zero}, {zero})"
        if scalar.kind is ScalarKind.F32:
            return "0.0f"
        if scalar.is_float:
            return "0.0"
        return "0"

    def _writebacks(self) -> None:
        for out in self.scalar_outputs:
            self.w.line(f"*out_{out.name} = {out.name};")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _stmt(self, stmt: ir.Stmt) -> None:
        if isinstance(stmt, ir.AssignVar):
            self.w.line(f"{stmt.name} = {self._expr(stmt.value)};")
        elif isinstance(stmt, ir.Store):
            self.w.line(f"{stmt.array}[{self._expr(stmt.index)}] = "
                        f"{self._expr(stmt.value)};")
        elif isinstance(stmt, ir.VecStore):
            base = self._expr(stmt.base)
            self.w.line(f"{stmt.instruction.intrinsic}(&{stmt.array}"
                        f"[{base}], {self._expr(stmt.value)});")
        elif isinstance(stmt, ir.IntrinsicStmt):
            self.w.line(self._expr(stmt.call) + ";")
        elif isinstance(stmt, ir.ForRange):
            var = stmt.var
            start = self._expr(stmt.start)
            stop = self._expr(stmt.stop)
            relation = "<" if stmt.step > 0 else ">"
            bump = f"{var} += {stmt.step}" if stmt.step != 1 else f"++{var}"
            if stmt.step < 0:
                bump = f"{var} -= {-stmt.step}"
            self.w.open(f"for ({var} = {start}; {var} {relation} {stop}; "
                        f"{bump})")
            for sub in stmt.body:
                self._stmt(sub)
            self.w.close()
        elif isinstance(stmt, ir.While):
            self.w.open(f"while ({self._bool_expr(stmt.condition)})")
            for sub in stmt.body:
                self._stmt(sub)
            self.w.close()
        elif isinstance(stmt, ir.If):
            self.w.open(f"if ({self._bool_expr(stmt.condition)})")
            for sub in stmt.then_body:
                self._stmt(sub)
            if stmt.else_body:
                self.w._indent -= 1
                self.w.line("} else {")
                self.w._indent += 1
                for sub in stmt.else_body:
                    self._stmt(sub)
            self.w.close()
        elif isinstance(stmt, ir.Break):
            self.w.line("break;")
        elif isinstance(stmt, ir.Continue):
            self.w.line("continue;")
        elif isinstance(stmt, ir.Return):
            self._writebacks()
            self.w.line("return;")
        elif isinstance(stmt, ir.Call):
            self._call(stmt)
        elif isinstance(stmt, ir.Emit):
            self._emit_io(stmt)
        elif isinstance(stmt, ir.CopyArray):
            dst_type = self._array_type(stmt.dst)
            elem = c_type_name(dst_type)
            self.w.line(f"memcpy({stmt.dst}, {stmt.src}, "
                        f"{dst_type.numel} * sizeof({elem}));")
        else:
            raise BackendError(
                f"cannot emit statement {type(stmt).__name__}")

    def _array_type(self, name: str) -> ArrayType:
        ir_type = self.func.local_type(name)
        if not isinstance(ir_type, ArrayType):
            raise BackendError(f"{name!r} is not an array")
        return ir_type

    def _call(self, stmt: ir.Call) -> None:
        callee = self.module.function(stmt.callee)
        if callee is None:
            raise BackendError(f"unknown callee {stmt.callee!r}")
        parts: list[str] = []
        for arg in stmt.args:
            parts.append(arg if isinstance(arg, str) else self._expr(arg))
        for name, out in zip(stmt.results, callee.outputs):
            if isinstance(out.type, ArrayType):
                parts.append(name)
            else:
                parts.append(f"&{name}")
        self.w.line(f"{stmt.callee}({', '.join(parts)});")

    def _emit_io(self, stmt: ir.Emit) -> None:
        fmt = stmt.format.replace("\\", "\\\\").replace('"', '\\"')
        fmt = fmt.replace("\n", "\\n").replace("\t", "\\t")
        args = "".join(", " + self._expr(a) for a in stmt.args)
        self.w.line(f'printf("{fmt}"{args});')

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _bool_expr(self, expr: ir.Expr) -> str:
        return self._expr(expr)

    def _expr(self, expr: ir.Expr) -> str:
        if isinstance(expr, ir.Const):
            return self._const(expr)
        if isinstance(expr, ir.VarRef):
            return expr.name
        if isinstance(expr, ir.Load):
            return f"{expr.array}[{self._expr(expr.index)}]"
        if isinstance(expr, ir.BinOp):
            return self._binop(expr)
        if isinstance(expr, ir.UnOp):
            return self._unop(expr)
        if isinstance(expr, ir.MathCall):
            return self._math(expr)
        if isinstance(expr, ir.Cast):
            return self._cast(expr)
        if isinstance(expr, ir.MakeComplex):
            prefix = complex_helper_prefix(expr.type.kind)
            return (f"{prefix}_make({self._expr(expr.real)}, "
                    f"{self._expr(expr.imag)})")
        if isinstance(expr, ir.VecLoad):
            return (f"{expr.instruction.intrinsic}(&{expr.array}"
                    f"[{self._expr(expr.base)}])")
        if isinstance(expr, ir.IntrinsicCall):
            args = ", ".join(self._expr(a) for a in expr.args)
            return f"{expr.instruction.intrinsic}({args})"
        raise BackendError(f"cannot emit expression {type(expr).__name__}")

    def _const(self, expr: ir.Const) -> str:
        value = expr.value
        kind = expr.type.kind if isinstance(expr.type, ScalarType) else None
        if isinstance(value, bool):
            return "1" if value else "0"
        # Dispatch on the constant's IR type, not the Python value's
        # type: a real-valued constant in a complex-typed position
        # (e.g. a reduction's `acc = 0.0` over a complex array) must
        # still build the struct literal.
        if isinstance(value, complex) or (kind is not None
                                          and kind.is_complex):
            value = complex(value)
            prefix = complex_helper_prefix(kind or ScalarKind.C128)
            return (f"{prefix}_make({self._float_literal(value.real, kind)}, "
                    f"{self._float_literal(value.imag, kind)})")
        if kind is not None and kind.is_integer:
            return str(int(value))
        return self._float_literal(float(value), kind)

    def _float_literal(self, value: float, kind: ScalarKind | None) -> str:
        suffix = "f" if kind in (ScalarKind.F32, ScalarKind.C64) else ""
        if math.isinf(value):
            return ("-" if value < 0 else "") + "HUGE_VAL"
        if math.isnan(value):
            return "(0.0 / 0.0)"
        text = repr(float(value))
        if "e" not in text and "." not in text:
            text += ".0"
        return text + suffix

    _INFIX = {"add": "+", "sub": "-", "mul": "*", "div": "/",
              "eq": "==", "ne": "!=", "lt": "<", "le": "<=",
              "gt": ">", "ge": ">=", "land": "&&", "lor": "||"}

    def _binop(self, expr: ir.BinOp) -> str:
        left_t = expr.left.type
        is_complex = isinstance(left_t, ScalarType) and left_t.is_complex
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        op = expr.op
        if is_complex:
            prefix = complex_helper_prefix(left_t.kind)
            helper = {"add": "add", "sub": "sub", "mul": "mul",
                      "div": "div"}.get(op)
            if helper is not None:
                return f"{prefix}_{helper}({left}, {right})"
            if op == "eq":
                return f"{prefix}_eq({left}, {right})"
            if op == "ne":
                return f"(!{prefix}_eq({left}, {right}))"
            raise BackendError(f"complex operator {op!r} has no C mapping")
        if op in ("min", "max"):
            kind = expr.type.kind if isinstance(expr.type, ScalarType) \
                else ScalarKind.F64
            helper = {ScalarKind.F64: "f64", ScalarKind.F32: "f32",
                      ScalarKind.I32: "i32"}.get(kind, "f64")
            return f"asip_{op}_{helper}({left}, {right})"
        if op == "pow":
            if isinstance(expr.type, ScalarType) and \
                    expr.type.kind is ScalarKind.F32:
                return f"(float)pow((double){left}, (double){right})"
            return f"pow({left}, {right})"
        if op == "rem":
            return f"fmod({left}, {right})"
        infix = self._INFIX.get(op)
        if infix is None:
            raise BackendError(f"operator {op!r} has no C mapping")
        return f"({left} {infix} {right})"

    def _unop(self, expr: ir.UnOp) -> str:
        operand_t = expr.operand.type
        operand = self._expr(expr.operand)
        if expr.op == "neg":
            if isinstance(operand_t, ScalarType) and operand_t.is_complex:
                prefix = complex_helper_prefix(operand_t.kind)
                return f"{prefix}_neg({operand})"
            return f"(-{operand})"
        return f"(!{operand})"

    _LIBM = {"sqrt", "exp", "log", "sin", "cos", "tan", "atan", "atan2",
             "floor", "ceil"}

    def _math(self, expr: ir.MathCall) -> str:
        name = expr.name
        args = [self._expr(a) for a in expr.args]
        arg_t = expr.args[0].type if expr.args else None
        arg_complex = isinstance(arg_t, ScalarType) and arg_t.is_complex

        if arg_complex:
            prefix = complex_helper_prefix(arg_t.kind)
            if name == "abs":
                return f"{prefix}_abs({args[0]})"
            if name == "conj":
                return f"{prefix}_conj({args[0]})"
            if name == "real":
                return f"({args[0]}).re"
            if name == "imag":
                return f"({args[0]}).im"
            if name == "arg":
                return f"{prefix}_arg({args[0]})"
            if name == "exp" and arg_t.kind is ScalarKind.C128:
                return f"{prefix}_exp({args[0]})"
            raise BackendError(
                f"complex math function {name!r} has no C mapping")

        result_f32 = isinstance(expr.type, ScalarType) and \
            expr.type.kind is ScalarKind.F32

        def wrap(call: str) -> str:
            return f"(float){call}" if result_f32 else call

        if name == "abs":
            return wrap(f"fabs((double){args[0]})") if result_f32 \
                else f"fabs({args[0]})"
        if name in self._LIBM:
            if result_f32:
                casted = ", ".join(f"(double){a}" for a in args)
                return f"(float){name}({casted})"
            return f"{name}({', '.join(args)})"
        if name == "hypot":
            return wrap(f"sqrt({args[0]} * {args[0]} + "
                        f"{args[1]} * {args[1]})")
        if name == "round":
            return wrap(f"asip_round({args[0]})")
        if name == "fix":
            return wrap(f"asip_fix({args[0]})")
        if name == "sign":
            return wrap(f"asip_sign({args[0]})")
        if name == "mod":
            return wrap(f"asip_mod({args[0]}, {args[1]})")
        if name == "rem":
            return wrap(f"fmod({args[0]}, {args[1]})")
        if name == "pow":
            return wrap(f"pow({args[0]}, {args[1]})")
        if name == "real":
            return args[0]
        if name == "imag":
            return "0.0"
        if name == "conj":
            return args[0]
        raise BackendError(f"math function {name!r} has no C mapping")

    def _cast(self, expr: ir.Cast) -> str:
        target = expr.type
        source_t = expr.operand.type
        operand = self._expr(expr.operand)
        if not isinstance(target, ScalarType):
            raise BackendError("cast target must be scalar")
        source_complex = isinstance(source_t, ScalarType) and \
            source_t.is_complex
        if target.is_complex:
            prefix = complex_helper_prefix(target.kind)
            if source_complex:
                # c64 <-> c128 conversion via components.
                return (f"{prefix}_make(({self._component_type(target)})"
                        f"({operand}).re, ({self._component_type(target)})"
                        f"({operand}).im)")
            zero = "0.0f" if target.kind is ScalarKind.C64 else "0.0"
            comp = self._component_type(target)
            return f"{prefix}_make(({comp}){operand}, {zero})"
        if source_complex:
            return f"({c_type_name(target)})({operand}).re"
        return f"({c_type_name(target)}){operand}"

    def _component_type(self, target: ScalarType) -> str:
        return "float" if target.kind is ScalarKind.C64 else "double"
