"""Cycle-accurate IR executor for ASIP cost models."""
