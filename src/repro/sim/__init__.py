"""Cycle-accurate IR executors for ASIP cost models.

Two backends share identical semantics and cycle accounting:

* :class:`~repro.sim.machine.Simulator` — the tree-walking reference
  executor (slow, simple, the ground truth for differential testing);
* :class:`~repro.sim.compiled.CompiledSimulator` — a one-time
  translation of the IR into Python functions, typically several times
  faster on benchmark workloads.
"""

from repro.sim.compiled import CompiledProgram, CompiledSimulator
from repro.sim.cost import CostModel, CycleReport
from repro.sim.machine import ExecutionResult, Simulator

__all__ = [
    "CompiledProgram",
    "CompiledSimulator",
    "CostModel",
    "CycleReport",
    "ExecutionResult",
    "Simulator",
]
