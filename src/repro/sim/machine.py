"""IR executor with cycle accounting — the ASIP stand-in.

Executes an :class:`~repro.ir.nodes.IRModule` directly (arrays as flat
numpy buffers in MATLAB column-major element order, scalars as Python
numbers) while charging every operation's cycle cost against a
:class:`~repro.sim.cost.CostModel`.  Running the baseline-lowered and the
optimized/vectorized module of the same MATLAB source on the same
processor description reproduces the paper's measurement setup: same
datapath, different compilers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.asip.model import ProcessorDescription
from repro.errors import SimulationError
from repro.numeric import c_pow
from repro.ir import nodes as ir
from repro.ir.types import ArrayType, ScalarKind, ScalarType, VectorType
from repro.sim.cost import CostModel, CycleReport

_NUMPY_DTYPES = {
    ScalarKind.BOOL: np.bool_,
    ScalarKind.I8: np.int8,
    ScalarKind.I16: np.int16,
    ScalarKind.I32: np.int32,
    ScalarKind.F32: np.float32,
    ScalarKind.F64: np.float64,
    ScalarKind.C64: np.complex64,
    ScalarKind.C128: np.complex128,
}


def numpy_dtype(kind: ScalarKind):
    return _NUMPY_DTYPES[kind]


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _ReturnSignal(Exception):
    pass


def as_buffer(value, array_type: ArrayType, name: str) -> np.ndarray:
    """Flatten ``value`` to the column-major buffer an array arg uses."""
    dtype = numpy_dtype(array_type.elem.kind)
    array = np.asarray(value)
    if array.size != array_type.numel:
        raise SimulationError(
            f"argument {name!r}: expected {array_type.numel} elements, "
            f"got {array.size}")
    return np.ascontiguousarray(
        array.reshape(-1, order="F").astype(dtype, copy=True))


def coerce_scalar(value, scalar_type: ScalarType):
    """Coerce a scalar argument to the Python value the IR type implies."""
    if isinstance(value, np.ndarray):
        if value.size != 1:
            raise SimulationError(
                f"expected a scalar argument, got an array of "
                f"{value.size} elements")
        value = value.reshape(-1)[0]
    kind = scalar_type.kind
    if kind.is_complex:
        return complex(value)
    if kind is ScalarKind.BOOL:
        return bool(value)
    if kind.is_integer:
        return int(value)
    return float(value)


def from_numpy(value):
    """Unbox a numpy scalar into the plain Python value the IR uses."""
    if isinstance(value, (np.complexfloating,)):
        return complex(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def format_emit(format_string: str, values: list[object]) -> str:
    """printf-style formatting with the permissive fallback Emit uses."""
    try:
        return format_string % tuple(values)
    except (TypeError, ValueError):
        return format_string + " " + " ".join(str(v) for v in values)


@dataclass
class ExecutionResult:
    """Outputs plus the cycle report of one entry-point run."""

    outputs: list[object]
    report: CycleReport
    stdout: str = ""
    #: 1-based MATLAB source line -> cycles charged there (line 0 =
    #: compiler-generated statements).  None unless the run was
    #: profiled (``simulate(..., hotspots=True)``).
    line_cycles: "dict[int, int] | None" = None

    def hotspots(self) -> list[tuple[int, int]]:
        """(line, cycles) pairs, hottest first.

        Requires a line-profiled run (``hotspots=True``); both
        simulator backends attribute identically.
        """
        if self.line_cycles is None:
            raise ValueError(
                "no line profile recorded; run simulate(..., "
                "hotspots=True) to collect one")
        from repro.observe.hotspots import line_table
        return line_table(self.line_cycles)


class _LineCycleReport(CycleReport):
    """CycleReport that also attributes every charge to the source
    line of the statement currently executing (``self.line``, kept
    up to date by the simulator's statement dispatch)."""

    def __init__(self) -> None:
        super().__init__()
        self.line = 0
        self.line_cycles: dict[int, int] = {}

    def charge(self, category: str, cycles: int) -> None:
        super().charge(category, cycles)
        self.line_cycles[self.line] = \
            self.line_cycles.get(self.line, 0) + cycles


@dataclass
class _Frame:
    scalars: dict[str, object] = field(default_factory=dict)
    arrays: dict[str, np.ndarray] = field(default_factory=dict)


class Simulator:
    """Executes IR functions against a processor cost model."""

    def __init__(self, module: ir.IRModule,
                 processor: ProcessorDescription,
                 max_steps: int = 200_000_000,
                 profile_lines: bool = False):
        self.module = module
        self.cost = CostModel(processor)
        self.profile_lines = profile_lines
        self.report = _LineCycleReport() if profile_lines \
            else CycleReport()
        self.max_steps = max_steps
        self._steps = 0
        self._stdout: list[str] = []

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------

    def run(self, args: list[object],
            entry: str | None = None) -> ExecutionResult:
        """Execute ``entry`` (default: module entry) on ``args``.

        Array arguments may be numpy arrays of any shape; they are
        flattened in column-major (Fortran) order, matching MATLAB's
        storage that the IR assumes.
        """
        self.report = _LineCycleReport() if self.profile_lines \
            else CycleReport()
        self._stdout = []
        func = self.module.function(entry or self.module.entry)
        if func is None:
            raise SimulationError(f"no function {entry or self.module.entry!r}")
        outputs = self._call_function(func, args)
        line_cycles = dict(self.report.line_cycles) \
            if self.profile_lines else None
        return ExecutionResult(outputs=outputs, report=self.report,
                               stdout="".join(self._stdout),
                               line_cycles=line_cycles)

    # ------------------------------------------------------------------
    # Function invocation
    # ------------------------------------------------------------------

    def _call_function(self, func: ir.IRFunction,
                       args: list[object]) -> list[object]:
        if len(args) != len(func.params):
            raise SimulationError(
                f"{func.name}: expected {len(func.params)} arguments, "
                f"got {len(args)}")
        frame = _Frame()
        for param, value in zip(func.params, args):
            if isinstance(param.type, ArrayType):
                array = self._as_buffer(value, param.type, param.name)
                frame.arrays[param.name] = array
            else:
                frame.scalars[param.name] = self._coerce_scalar(
                    value, param.type)
        for name, ir_type in func.locals.items():
            if isinstance(ir_type, ArrayType):
                frame.arrays[name] = np.zeros(
                    ir_type.numel, dtype=numpy_dtype(ir_type.elem.kind))
        for out in func.outputs:
            if isinstance(out.type, ArrayType) and \
                    out.name not in frame.arrays:
                frame.arrays[out.name] = np.zeros(
                    out.type.numel, dtype=numpy_dtype(out.type.elem.kind))

        try:
            self._exec_body(func.body, frame)
        except _ReturnSignal:
            pass

        outputs: list[object] = []
        for out in func.outputs:
            if isinstance(out.type, ArrayType):
                shaped = frame.arrays[out.name].reshape(
                    (out.type.rows, out.type.cols), order="F")
                outputs.append(shaped.copy())
            else:
                value = frame.scalars.get(out.name)
                if value is None:
                    raise SimulationError(
                        f"{func.name}: output {out.name!r} never assigned")
                outputs.append(value)
        return outputs

    def _as_buffer(self, value, array_type: ArrayType,
                   name: str) -> np.ndarray:
        return as_buffer(value, array_type, name)

    def _coerce_scalar(self, value, scalar_type: ScalarType):
        return coerce_scalar(value, scalar_type)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise SimulationError("simulation step limit exceeded "
                                  "(infinite loop in generated code?)")

    def _exec_body(self, body: list[ir.Stmt], frame: _Frame) -> None:
        for stmt in body:
            self._exec_stmt(stmt, frame)

    def _exec_stmt(self, stmt: ir.Stmt, frame: _Frame) -> None:
        self._tick()
        if self.profile_lines:
            self.report.line = stmt.line
        if isinstance(stmt, ir.AssignVar):
            value = self._eval(stmt.value, frame)
            self.report.charge("move", self.cost.move())
            frame.scalars[stmt.name] = value
        elif isinstance(stmt, ir.Store):
            index = self._eval(stmt.index, frame)
            value = self._eval(stmt.value, frame)
            elem = stmt.value.type if isinstance(stmt.value.type, ScalarType) \
                else ScalarType(ScalarKind.F64)
            self.report.charge("mem", self.cost.store(elem))
            self._store(frame, stmt.array, int(index), value)
        elif isinstance(stmt, ir.VecStore):
            base = int(self._eval(stmt.base, frame))
            value = self._eval(stmt.value, frame)
            instr = stmt.instruction
            if instr is not None:
                self.report.charge("intrinsic",
                                   self.cost.intrinsic(instr.cycles))
                self.report.count_instruction(instr.name)
            array = self._array(frame, stmt.array)
            lanes = stmt.value.type.lanes
            self._check_bounds(stmt.array, array, base, lanes)
            array[base:base + lanes] = value
        elif isinstance(stmt, ir.IntrinsicStmt):
            self._eval(stmt.call, frame)
        elif isinstance(stmt, ir.ForRange):
            self._exec_for(stmt, frame)
        elif isinstance(stmt, ir.While):
            self._exec_while(stmt, frame)
        elif isinstance(stmt, ir.If):
            self.report.charge("branch", self.cost.branch())
            condition = self._eval(stmt.condition, frame)
            if condition:
                self._exec_body(stmt.then_body, frame)
            else:
                self._exec_body(stmt.else_body, frame)
        elif isinstance(stmt, ir.Break):
            raise _Break()
        elif isinstance(stmt, ir.Continue):
            raise _Continue()
        elif isinstance(stmt, ir.Return):
            raise _ReturnSignal()
        elif isinstance(stmt, ir.Call):
            self._exec_call(stmt, frame)
        elif isinstance(stmt, ir.Emit):
            values = [self._eval(a, frame) for a in stmt.args]
            self._stdout.append(self._format_emit(stmt.format, values))
        elif isinstance(stmt, ir.CopyArray):
            src = self._array(frame, stmt.src)
            dst = self._array(frame, stmt.dst)
            count = min(dst.size, src.size)
            elem_kind = ScalarKind.C128 if np.iscomplexobj(dst) \
                else ScalarKind.F64
            self.report.charge(
                "mem", count * self.cost.copy_element(ScalarType(elem_kind)))
            dst[:count] = src[:count]
        else:
            raise SimulationError(
                f"cannot execute statement {type(stmt).__name__}")

    def _format_emit(self, format_string: str, values: list[object]) -> str:
        return format_emit(format_string, values)

    def _exec_for(self, stmt: ir.ForRange, frame: _Frame) -> None:
        start = int(self._eval(stmt.start, frame))
        stop = int(self._eval(stmt.stop, frame))
        step = stmt.step
        value = start
        while (value < stop) if step > 0 else (value > stop):
            self._tick()
            # Loop-control overhead belongs to the loop's own line,
            # not to whatever body line executed last.
            if self.profile_lines:
                self.report.line = stmt.line
            self.report.charge("branch", self.cost.branch())
            frame.scalars[stmt.var] = value
            try:
                self._exec_body(stmt.body, frame)
            except _Break:
                break
            except _Continue:
                pass
            value += step
        # MATLAB leaves the loop variable holding its last value; the
        # final assignment above already reflects that.

    def _exec_while(self, stmt: ir.While, frame: _Frame) -> None:
        while True:
            self._tick()
            if self.profile_lines:
                self.report.line = stmt.line
            self.report.charge("branch", self.cost.branch())
            if not self._eval(stmt.condition, frame):
                break
            try:
                self._exec_body(stmt.body, frame)
            except _Break:
                break
            except _Continue:
                continue

    def _exec_call(self, stmt: ir.Call, frame: _Frame) -> None:
        callee = self.module.function(stmt.callee)
        if callee is None:
            raise SimulationError(f"unknown callee {stmt.callee!r}")
        self.report.charge("call", self.cost.call())
        args: list[object] = []
        for arg in stmt.args:
            if isinstance(arg, str):
                args.append(self._array(frame, arg).copy())
            else:
                args.append(self._eval(arg, frame))
        results = self._call_function(callee, args)
        for name, value in zip(stmt.results, results):
            if isinstance(value, np.ndarray):
                dst = self._array(frame, name)
                dst[:] = value.reshape(-1, order="F")
            else:
                frame.scalars[name] = value

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _array(self, frame: _Frame, name: str) -> np.ndarray:
        array = frame.arrays.get(name)
        if array is None:
            raise SimulationError(f"unknown array {name!r}")
        return array

    def _check_bounds(self, name: str, array: np.ndarray, index: int,
                      extent: int = 1) -> None:
        if index < 0 or index + extent > array.size:
            raise SimulationError(
                f"index {index} (extent {extent}) out of bounds for "
                f"array {name!r} of size {array.size} — generated code "
                "is invalid")

    def _eval(self, expr: ir.Expr, frame: _Frame):
        if isinstance(expr, ir.Const):
            return expr.value
        if isinstance(expr, ir.VarRef):
            if expr.name in frame.scalars:
                return frame.scalars[expr.name]
            raise SimulationError(f"read of unassigned variable "
                                  f"{expr.name!r}")
        if isinstance(expr, ir.Load):
            index = int(self._eval(expr.index, frame))
            array = self._array(frame, expr.array)
            self._check_bounds(expr.array, array, index)
            elem = expr.type if isinstance(expr.type, ScalarType) \
                else ScalarType(ScalarKind.F64)
            self.report.charge("mem", self.cost.load(elem))
            value = array[index]
            return self._from_numpy(value)
        if isinstance(expr, ir.BinOp):
            return self._eval_binop(expr, frame)
        if isinstance(expr, ir.UnOp):
            operand = self._eval(expr.operand, frame)
            self.report.charge("alu", self.cost.unop(expr.op,
                                                     self._scalar_type(expr)))
            if expr.op == "neg":
                return -operand
            return not bool(operand)
        if isinstance(expr, ir.MathCall):
            return self._eval_math(expr, frame)
        if isinstance(expr, ir.Cast):
            value = self._eval(expr.operand, frame)
            self.report.charge("alu", self.cost.cast())
            return self._cast_value(value, expr.type)
        if isinstance(expr, ir.MakeComplex):
            real = self._eval(expr.real, frame)
            imag = self._eval(expr.imag, frame)
            self.report.charge("move", 2 * self.cost.move())
            return complex(real, imag)
        if isinstance(expr, ir.VecLoad):
            base = int(self._eval(expr.base, frame))
            array = self._array(frame, expr.array)
            lanes = expr.type.lanes
            self._check_bounds(expr.array, array, base, lanes)
            instr = expr.instruction
            if instr is not None:
                self.report.charge("intrinsic",
                                   self.cost.intrinsic(instr.cycles))
                self.report.count_instruction(instr.name)
            lanes_data = array[base:base + lanes].copy()
            return lanes_data[::-1].copy() if expr.reverse else lanes_data
        if isinstance(expr, ir.VecSplat):
            value = self._eval(expr.operand, frame)
            dtype = numpy_dtype(expr.type.elem.kind)
            self.report.charge("move", self.cost.move())
            return np.full(expr.type.lanes, value, dtype=dtype)
        if isinstance(expr, ir.IntrinsicCall):
            return self._eval_intrinsic(expr, frame)
        raise SimulationError(f"cannot evaluate {type(expr).__name__}")

    def _scalar_type(self, expr: ir.Expr) -> ScalarType:
        if isinstance(expr.type, ScalarType):
            return expr.type
        return ScalarType(ScalarKind.F64)

    def _from_numpy(self, value):
        return from_numpy(value)

    def _cast_value(self, value, target: ScalarType):
        kind = target.kind
        if kind.is_complex:
            return complex(value)
        if isinstance(value, complex):
            value = value.real
        if kind is ScalarKind.BOOL:
            return bool(value)
        if kind.is_integer:
            return int(value)  # C cast truncates toward zero, like int()
        if kind is ScalarKind.F32:
            return float(np.float32(value))
        return float(value)

    def _eval_binop(self, expr: ir.BinOp, frame: _Frame):
        # Logical connectives short-circuit, exactly like the && / ||
        # the C backend emits (a guarded load in the right operand must
        # not be evaluated when the left side already decides).
        if expr.op in ("land", "lor"):
            self.report.charge("alu", self.cost.binop(
                expr.op, self._scalar_type(expr.left)))
            left = bool(self._eval(expr.left, frame))
            if expr.op == "land" and not left:
                return False
            if expr.op == "lor" and left:
                return True
            return bool(self._eval(expr.right, frame))
        left = self._eval(expr.left, frame)
        right = self._eval(expr.right, frame)
        is_vector = isinstance(expr.type, VectorType)
        if not is_vector:
            operand_t = self._scalar_type(expr.left)
            self.report.charge("alu", self.cost.binop(expr.op, operand_t))
        op = expr.op
        if op == "add":
            return left + right
        if op == "sub":
            return left - right
        if op == "mul":
            return left * right
        if op == "div":
            if isinstance(expr.type, ScalarType) and \
                    expr.type.kind.is_integer:
                return int(left / right) if right != 0 else 0
            try:
                return left / right
            except ZeroDivisionError:
                return float("inf") if left > 0 else (
                    float("-inf") if left < 0 else float("nan"))
        if op == "pow":
            return c_pow(left, right)
        if op == "rem":
            import math
            return math.fmod(left, right) if right != 0 else float("nan")
        if op == "min":
            return min(left, right) if not is_vector else \
                np.minimum(left, right)
        if op == "max":
            return max(left, right) if not is_vector else \
                np.maximum(left, right)
        if op == "eq":
            return left == right
        if op == "ne":
            return left != right
        if op == "lt":
            return left < right
        if op == "le":
            return left <= right
        if op == "gt":
            return left > right
        if op == "ge":
            return left >= right
        if op == "land":
            return bool(left) and bool(right)
        if op == "lor":
            return bool(left) or bool(right)
        raise SimulationError(f"unknown binary op {expr.op!r}")

    def _eval_math(self, expr: ir.MathCall, frame: _Frame):
        import cmath
        import math
        args = [self._eval(a, frame) for a in expr.args]
        operand_t = self._scalar_type(expr.args[0]) if expr.args else \
            ScalarType(ScalarKind.F64)
        self.report.charge("math", self.cost.math(expr.name, operand_t))
        name = expr.name
        a = args[0] if args else None
        is_complex = isinstance(a, complex)
        if name == "abs":
            return abs(a)
        if name == "sqrt":
            return cmath.sqrt(a) if is_complex else math.sqrt(abs(a)) \
                if a >= 0 else float("nan")
        if name == "exp":
            return cmath.exp(a) if is_complex else math.exp(a)
        if name == "log":
            return cmath.log(a) if is_complex else (
                math.log(a) if a > 0 else float("-inf") if a == 0
                else float("nan"))
        if name == "sin":
            return cmath.sin(a) if is_complex else math.sin(a)
        if name == "cos":
            return cmath.cos(a) if is_complex else math.cos(a)
        if name == "tan":
            return cmath.tan(a) if is_complex else math.tan(a)
        if name == "atan":
            return math.atan(a)
        if name == "atan2":
            return math.atan2(a, args[1])
        if name == "hypot":
            return math.hypot(a, args[1])
        if name == "floor":
            return float(math.floor(a))
        if name == "ceil":
            return float(math.ceil(a))
        if name == "round":
            # MATLAB rounds halves away from zero.
            return float(math.floor(a + 0.5)) if a >= 0 else \
                float(math.ceil(a - 0.5))
        if name == "fix":
            return float(math.trunc(a))
        if name == "sign":
            return float((a > 0) - (a < 0))
        if name == "mod":
            b = args[1]
            if b == 0:
                return a
            return a - math.floor(a / b) * b
        if name == "rem":
            b = args[1]
            return math.fmod(a, b) if b != 0 else float("nan")
        if name == "pow":
            return c_pow(a, args[1])
        if name == "conj":
            return a.conjugate() if is_complex else a
        if name == "real":
            return a.real if is_complex else a
        if name == "imag":
            return a.imag if is_complex else 0.0
        if name == "arg":
            return cmath.phase(a) if is_complex else math.atan2(0.0, a)
        raise SimulationError(f"unknown math function {name!r}")

    # ------------------------------------------------------------------
    # Custom instructions
    # ------------------------------------------------------------------

    def _eval_intrinsic(self, expr: ir.IntrinsicCall, frame: _Frame):
        instr = expr.instruction
        args = [self._eval(a, frame) for a in expr.args]
        self.report.charge("intrinsic", self.cost.intrinsic(instr.cycles))
        self.report.count_instruction(instr.name)
        op = instr.operation
        if op == "vadd":
            return args[0] + args[1]
        if op == "vsub":
            return args[0] - args[1]
        if op == "vmul":
            return args[0] * args[1]
        if op == "vdiv":
            return args[0] / args[1]
        if op == "vmac":
            return args[0] + args[1] * args[2]
        if op == "vmin":
            return np.minimum(args[0], args[1])
        if op == "vmax":
            return np.maximum(args[0], args[1])
        if op == "vabs":
            return np.abs(args[0])
        if op == "vneg":
            return -args[0]
        if op == "vconj":
            return np.conj(args[0])
        if op == "vsplat":
            dtype = numpy_dtype(expr.type.elem.kind)
            return np.full(expr.type.lanes, args[0], dtype=dtype)
        if op == "vredadd":
            return self._from_numpy(np.sum(args[0]))
        if op == "vredmin":
            return self._from_numpy(np.min(args[0]))
        if op == "vredmax":
            return self._from_numpy(np.max(args[0]))
        if op == "cadd":
            return args[0] + args[1]
        if op == "csub":
            return args[0] - args[1]
        if op == "cmul":
            return args[0] * args[1]
        if op == "cmac":
            return args[0] + args[1] * args[2]
        if op == "cconj":
            return args[0].conjugate()
        if op == "cmag2":
            value = args[0]
            return value.real * value.real + value.imag * value.imag
        if op == "mac":
            return args[0] + args[1] * args[2]
        if op == "clip":
            return min(max(args[0], args[1]), args[2])
        raise SimulationError(f"unknown intrinsic operation {op!r}")

    def _store(self, frame: _Frame, name: str, index: int, value) -> None:
        array = self._array(frame, name)
        self._check_bounds(name, array, index)
        array[index] = value
