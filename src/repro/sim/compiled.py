"""Compiled-closure execution backend for the ASIP simulator.

The tree-walking :class:`~repro.sim.machine.Simulator` dispatches on
``isinstance`` for every IR node on every iteration, so benchmark wall
time is dominated by Python interpretation overhead rather than by the
cycle accounting the experiments actually measure.  This module pays
the IR walk once: each :class:`~repro.ir.nodes.IRFunction` is translated
into one real Python function (``ForRange`` becomes a ``range`` loop,
expressions become inline Python expressions, custom instructions become
pre-resolved operations), compiled with ``exec`` against a namespace of
pre-bound helper closures, and reused for every subsequent run.

Cycle accounting is batched per basic block: during translation the
static portion of every straight-line statement group (costs that are
charged unconditionally whenever the group executes) is folded into a
handful of counter increments emitted once at the head of the group,
instead of a ``CycleReport.charge`` call per node visit.  Conditionally
evaluated work — the right-hand side of a short-circuiting ``land`` /
``lor``, ``If`` branches, loop bodies — keeps its own flush so the
produced :class:`~repro.sim.cost.CycleReport` is *identical* to the
tree-walker's (same totals, same per-category breakdown, same custom
instruction counts), which the differential test suite enforces.

Behavioural differences versus the reference executor (both only
observable on invalid IR or runaway programs):

* the ``max_steps`` guard is charged once per loop-iteration /
  ``while``-condition check rather than once per statement, so the
  limit triggers at a different (coarser) step count;
* error messages for malformed IR (unknown arrays, unassigned reads)
  are normalized through a single :class:`SimulationError` wrapper.

The tree-walker stays as the reference executor for differential
testing; ``CompiledSimulator`` is a drop-in replacement with the same
constructor and ``run`` signature.
"""

from __future__ import annotations

import cmath
import math
import re

import numpy as np

from repro.asip.model import ProcessorDescription
from repro.errors import SimulationError
from repro.numeric import c_pow
from repro.ir import nodes as ir
from repro.ir.types import ArrayType, ScalarKind, ScalarType, VectorType
from repro.sim.cost import CostModel, CycleReport
from repro.sim.machine import (
    ExecutionResult,
    as_buffer,
    coerce_scalar,
    format_emit,
    from_numpy,
    numpy_dtype,
)

#: Fixed counter slots for batched accounting (mirrors the category
#: strings the tree-walker passes to CycleReport.charge).
_CATEGORIES = ("move", "mem", "branch", "alu", "math", "call", "intrinsic")
_MOVE, _MEM, _BRANCH, _ALU, _MATH, _CALL, _INTR = range(len(_CATEGORIES))


# ----------------------------------------------------------------------
# Runtime helpers bound into every generated function's namespace.
# Each mirrors one branch of the tree-walker exactly.
# ----------------------------------------------------------------------


def _idiv(left, right):
    return int(left / right) if right != 0 else 0


def _fdiv(left, right):
    try:
        return left / right
    except ZeroDivisionError:
        return float("inf") if left > 0 else (
            float("-inf") if left < 0 else float("nan"))


def _rem_op(left, right):
    return math.fmod(left, right) if right != 0 else float("nan")


def _cmag2(value):
    return value.real * value.real + value.imag * value.imag


def _cast_complex(value):
    return complex(value)


def _cast_bool(value):
    if isinstance(value, complex):
        value = value.real
    return bool(value)


def _cast_int(value):
    if isinstance(value, complex):
        value = value.real
    return int(value)  # C cast truncates toward zero, like int()


def _cast_f32(value):
    if isinstance(value, complex):
        value = value.real
    return float(np.float32(value))


def _cast_f64(value):
    if isinstance(value, complex):
        value = value.real
    return float(value)


_CAST_HELPERS = {
    ScalarKind.BOOL: ("_cast_bool", _cast_bool),
    ScalarKind.I8: ("_cast_int", _cast_int),
    ScalarKind.I16: ("_cast_int", _cast_int),
    ScalarKind.I32: ("_cast_int", _cast_int),
    ScalarKind.F32: ("_cast_f32", _cast_f32),
    ScalarKind.F64: ("_cast_f64", _cast_f64),
    ScalarKind.C64: ("_cast_complex", _cast_complex),
    ScalarKind.C128: ("_cast_complex", _cast_complex),
}


def _m_abs(a):
    return abs(a)


def _m_sqrt(a):
    return cmath.sqrt(a) if isinstance(a, complex) else math.sqrt(abs(a)) \
        if a >= 0 else float("nan")


def _m_exp(a):
    return cmath.exp(a) if isinstance(a, complex) else math.exp(a)


def _m_log(a):
    return cmath.log(a) if isinstance(a, complex) else (
        math.log(a) if a > 0 else float("-inf") if a == 0
        else float("nan"))


def _m_sin(a):
    return cmath.sin(a) if isinstance(a, complex) else math.sin(a)


def _m_cos(a):
    return cmath.cos(a) if isinstance(a, complex) else math.cos(a)


def _m_tan(a):
    return cmath.tan(a) if isinstance(a, complex) else math.tan(a)


def _m_atan(a):
    return math.atan(a)


def _m_atan2(a, b):
    return math.atan2(a, b)


def _m_hypot(a, b):
    return math.hypot(a, b)


def _m_floor(a):
    return float(math.floor(a))


def _m_ceil(a):
    return float(math.ceil(a))


def _m_round(a):
    # MATLAB rounds halves away from zero.
    return float(math.floor(a + 0.5)) if a >= 0 else \
        float(math.ceil(a - 0.5))


def _m_fix(a):
    return float(math.trunc(a))


def _m_sign(a):
    return float((a > 0) - (a < 0))


def _m_mod(a, b):
    if b == 0:
        return a
    return a - math.floor(a / b) * b


def _m_rem(a, b):
    return math.fmod(a, b) if b != 0 else float("nan")


def _m_pow(a, b):
    return c_pow(a, b)


def _m_conj(a):
    return a.conjugate() if isinstance(a, complex) else a


def _m_real(a):
    return a.real if isinstance(a, complex) else a


def _m_imag(a):
    return a.imag if isinstance(a, complex) else 0.0


def _m_arg(a):
    return cmath.phase(a) if isinstance(a, complex) else math.atan2(0.0, a)


_MATH_HELPERS = {
    "abs": _m_abs, "sqrt": _m_sqrt, "exp": _m_exp, "log": _m_log,
    "sin": _m_sin, "cos": _m_cos, "tan": _m_tan, "atan": _m_atan,
    "atan2": _m_atan2, "hypot": _m_hypot, "floor": _m_floor,
    "ceil": _m_ceil, "round": _m_round, "fix": _m_fix, "sign": _m_sign,
    "mod": _m_mod, "rem": _m_rem, "pow": _m_pow, "conj": _m_conj,
    "real": _m_real, "imag": _m_imag, "arg": _m_arg,
}


def _oob(name, size, index, extent):
    raise SimulationError(
        f"index {index} (extent {extent}) out of bounds for "
        f"array {name!r} of size {size} — generated code "
        "is invalid")


def _stepfail():
    raise SimulationError("simulation step limit exceeded "
                          "(infinite loop in generated code?)")


_BASE_NS = {
    "_np": np,
    "_fromnp": from_numpy,
    "_idiv": _idiv,
    "_fdiv": _fdiv,
    "_remop": _rem_op,
    "_powop": c_pow,
    "_cmag2": _cmag2,
    "_npmin": np.minimum,
    "_npmax": np.maximum,
    "_npabs": np.abs,
    "_npconj": np.conj,
    "_npsum": np.sum,
    "_npamin": np.min,
    "_npamax": np.max,
    "_oob": _oob,
    "_stepfail": _stepfail,
    "SimulationError": SimulationError,
}
_BASE_NS.update({f"_m_{name}": fn for name, fn in _MATH_HELPERS.items()})
_BASE_NS.update({helper: fn for helper, fn in _CAST_HELPERS.values()})


def _merge(dst: dict, src: dict) -> None:
    for key, value in src.items():
        dst[key] = dst.get(key, 0) + value


def _raises_return(body: list[ir.Stmt]) -> bool:
    return any(isinstance(s, ir.Return) for s in ir.walk_statements(body))


def _can_abrupt(stmt: ir.Stmt) -> bool:
    """Can executing ``stmt`` abort the enclosing statement list?"""
    if isinstance(stmt, (ir.Break, ir.Continue, ir.Return)):
        return True
    if isinstance(stmt, ir.If):
        return any(_can_abrupt(s)
                   for s in stmt.then_body + stmt.else_body)
    if isinstance(stmt, (ir.ForRange, ir.While)):
        # Loops swallow Break/Continue but a Return propagates out.
        return _raises_return(stmt.body)
    return False


def _assigned_names(body: list[ir.Stmt]) -> set[str]:
    names: set[str] = set()
    for stmt in ir.walk_statements(body):
        if isinstance(stmt, ir.AssignVar):
            names.add(stmt.name)
        elif isinstance(stmt, ir.Call):
            names.update(stmt.results)
        elif isinstance(stmt, ir.ForRange):
            names.add(stmt.var)
    return names


_SANITIZE = re.compile(r"\W")


class _FuncCodegen:
    """Translates one IRFunction into Python source + helper namespace."""

    def __init__(self, program: "CompiledProgram", func: ir.IRFunction):
        self.program = program
        self.func = func
        self.cost = program.cost
        self.profile = program.profile_lines
        self.ns: dict[str, object] = dict(_BASE_NS)
        self.ns["_a"] = program.acc
        self.ns["_ic"] = program.icounts
        self.ns["_lc"] = program.line_cycles
        self.ns["_t"] = program.steps
        self.ns["_MS"] = program.max_steps
        self.ns["_out"] = program.stdout
        self._uid = 0
        #: Source line of the statement currently being translated;
        #: charge closures capture it so conditionally-evaluated work
        #: attributes to the same line the tree-walker charges.
        self._cur_line = 0
        # Scalars written by Call statements must live in the S dict so
        # the callee-invocation helper can update them; everything else
        # becomes a plain Python local of the generated function.
        self.dict_scalars: set[str] = set()
        array_names = set(func.array_names())
        for stmt in ir.walk_statements(func.body):
            if isinstance(stmt, ir.Call):
                self.dict_scalars.update(
                    name for name in stmt.results if name not in array_names)
        self.array_names = array_names
        self._locals: dict[str, str] = {}
        self._local_taken: set[str] = set()
        self._arrays_used: dict[str, str] = {}

    # -- naming --------------------------------------------------------

    def uid(self) -> int:
        self._uid += 1
        return self._uid

    def local(self, name: str) -> str:
        alias = self._locals.get(name)
        if alias is None:
            alias = "v_" + _SANITIZE.sub("_", name)
            while alias in self._local_taken:
                alias += f"_{self.uid()}"
            self._local_taken.add(alias)
            self._locals[name] = alias
        return alias

    def array(self, name: str) -> str:
        alias = self._arrays_used.get(name)
        if alias is None:
            alias = "g_" + _SANITIZE.sub("_", name)
            while alias in self._local_taken:
                alias += f"_{self.uid()}"
            self._local_taken.add(alias)
            self._arrays_used[name] = alias
        return alias

    def bind(self, prefix: str, value) -> str:
        name = f"{prefix}{self.uid()}"
        self.ns[name] = value
        return name

    # -- accounting ----------------------------------------------------

    def flush_lines(self, static: dict[int, int],
                    counts: dict[str, int],
                    linecost: "dict[int, int] | None" = None) -> list[str]:
        lines = []
        for index in sorted(static):
            cycles = static[index]
            if cycles:
                lines.append(f"_a[{index}] += {cycles}")
        for name, count in counts.items():
            lines.append(f"_ic[{name!r}] = _ic.get({name!r}, 0) + {count}")
        if self.profile and linecost:
            for line in sorted(linecost):
                cycles = linecost[line]
                if cycles:
                    lines.append(f"_lc[{line}] = "
                                 f"_lc.get({line}, 0) + {cycles}")
        return lines

    def charge_closure(self, static: dict[int, int],
                       counts: dict[str, int]) -> str:
        acc = self.program.acc
        icounts = self.program.icounts
        pairs = [(i, c) for i, c in sorted(static.items()) if c]
        cpairs = list(counts.items())
        line_cycles = self.program.line_cycles if self.profile else None
        line = self._cur_line
        total = sum(c for _, c in pairs)

        def charge():
            for index, cycles in pairs:
                acc[index] += cycles
            for name, count in cpairs:
                icounts[name] = icounts.get(name, 0) + count
            if line_cycles is not None and total:
                line_cycles[line] = line_cycles.get(line, 0) + total
        return self.bind("_chg", charge)

    # -- static int analysis (lets Load/Store skip int() conversions) --

    def _is_int(self, expr: ir.Expr, intvars: set[str]) -> bool:
        if isinstance(expr, ir.Const):
            return isinstance(expr.value, int) and \
                not isinstance(expr.value, bool)
        if isinstance(expr, ir.VarRef):
            return expr.name in intvars
        if isinstance(expr, ir.BinOp):
            if expr.op in ("add", "sub", "mul", "min", "max"):
                return self._is_int(expr.left, intvars) and \
                    self._is_int(expr.right, intvars)
            if expr.op == "div":
                return isinstance(expr.type, ScalarType) and \
                    expr.type.kind.is_integer
            return False
        if isinstance(expr, ir.UnOp):
            return expr.op == "neg" and self._is_int(expr.operand, intvars)
        if isinstance(expr, ir.Cast):
            return isinstance(expr.type, ScalarType) and \
                expr.type.kind.is_integer
        if isinstance(expr, ir.Load):
            declared = self.func.local_type(expr.array)
            return isinstance(declared, ArrayType) and \
                declared.elem.kind.is_integer
        return False

    def int_code(self, expr: ir.Expr, intvars: set[str],
                 static: dict, counts: dict) -> str:
        code, est, ecn = self.expr(expr, intvars)
        _merge(static, est)
        _merge(counts, ecn)
        if self._is_int(expr, intvars):
            return code
        return f"int({code})"

    # -- expressions ---------------------------------------------------

    def _scalar_type(self, expr: ir.Expr) -> ScalarType:
        if isinstance(expr.type, ScalarType):
            return expr.type
        return ScalarType(ScalarKind.F64)

    def _array_info(self, name: str):
        declared = self.func.local_type(name)
        if isinstance(declared, ArrayType):
            return declared
        return None

    def _load_conv(self, name: str) -> str:
        declared = self._array_info(name)
        if declared is None:
            return "_fromnp"
        kind = declared.elem.kind
        if kind.is_complex:
            return "complex"
        if kind is ScalarKind.BOOL:
            return "bool"
        if kind.is_integer:
            return "int"
        return "float"

    def _size_code(self, name: str, alias: str) -> str:
        declared = self._array_info(name)
        return str(declared.numel) if declared is not None \
            else f"{alias}.size"

    def expr(self, e: ir.Expr, intvars: set[str]):
        """Return ``(code, static_charges, static_instruction_counts)``."""
        if isinstance(e, ir.Const):
            return self._const_code(e.value), {}, {}
        if isinstance(e, ir.VarRef):
            if e.name in self.dict_scalars:
                return f"S[{e.name!r}]", {}, {}
            return self.local(e.name), {}, {}
        if isinstance(e, ir.Load):
            return self._load_expr(e, intvars)
        if isinstance(e, ir.BinOp):
            return self._binop_expr(e, intvars)
        if isinstance(e, ir.UnOp):
            code, static, counts = self.expr(e.operand, intvars)
            _merge(static, {_ALU: self.cost.unop(e.op, self._scalar_type(e))})
            if e.op == "neg":
                return f"(-{code})", static, counts
            return f"(not bool({code}))", static, counts
        if isinstance(e, ir.MathCall):
            return self._math_expr(e, intvars)
        if isinstance(e, ir.Cast):
            code, static, counts = self.expr(e.operand, intvars)
            _merge(static, {_ALU: self.cost.cast()})
            helper = _CAST_HELPERS[e.type.kind][0]
            return f"{helper}({code})", static, counts
        if isinstance(e, ir.MakeComplex):
            rcode, static, counts = self.expr(e.real, intvars)
            icode, ist, icn = self.expr(e.imag, intvars)
            _merge(static, ist)
            _merge(counts, icn)
            _merge(static, {_MOVE: 2 * self.cost.move()})
            return f"complex({rcode}, {icode})", static, counts
        if isinstance(e, ir.VecLoad):
            return self._vecload_expr(e, intvars)
        if isinstance(e, ir.VecSplat):
            code, static, counts = self.expr(e.operand, intvars)
            _merge(static, {_MOVE: self.cost.move()})
            dt = self.bind("_dt", numpy_dtype(e.type.elem.kind))
            return (f"_np.full({e.type.lanes}, {code}, {dt})",
                    static, counts)
        if isinstance(e, ir.IntrinsicCall):
            return self._intrinsic_expr(e, intvars)
        raise SimulationError(f"cannot evaluate {type(e).__name__}")

    def _const_code(self, value) -> str:
        if isinstance(value, bool):
            return repr(value)
        if isinstance(value, int):
            return repr(value)
        if isinstance(value, float) and math.isfinite(value):
            return repr(value)
        return self.bind("_k", value)

    def _load_expr(self, e: ir.Load, intvars):
        static: dict[int, int] = {}
        counts: dict[str, int] = {}
        idx = self.int_code(e.index, intvars, static, counts)
        elem = e.type if isinstance(e.type, ScalarType) \
            else ScalarType(ScalarKind.F64)
        _merge(static, {_MEM: self.cost.load(elem)})
        alias = self.array(e.array)
        size = self._size_code(e.array, alias)
        conv = self._load_conv(e.array)
        j = f"_j{self.uid()}"
        code = (f"({conv}({alias}[{j}]) "
                f"if 0 <= ({j} := {idx}) < {size} "
                f"else _oob({e.array!r}, {size}, {j}, 1))")
        return code, static, counts

    def _binop_expr(self, e: ir.BinOp, intvars):
        op = e.op
        if op in ("land", "lor"):
            static: dict[int, int] = {
                _ALU: self.cost.binop(op, self._scalar_type(e.left))}
            counts: dict[str, int] = {}
            lcode, lst, lcn = self.expr(e.left, intvars)
            _merge(static, lst)
            _merge(counts, lcn)
            rcode, rst, rcn = self.expr(e.right, intvars)
            if rst or rcn:
                # Right side only evaluated (and charged) on demand.
                chg = self.charge_closure(rst, rcn)
                rcode = f"({chg}(), {rcode})[1]"
            joiner = "and" if op == "land" else "or"
            return (f"(bool({lcode}) {joiner} bool({rcode}))",
                    static, counts)

        lcode, static, counts = self.expr(e.left, intvars)
        rcode, rst, rcn = self.expr(e.right, intvars)
        _merge(static, rst)
        _merge(counts, rcn)
        is_vector = isinstance(e.type, VectorType)
        if not is_vector:
            _merge(static, {
                _ALU: self.cost.binop(op, self._scalar_type(e.left))})
        if op == "add":
            code = f"({lcode} + {rcode})"
        elif op == "sub":
            code = f"({lcode} - {rcode})"
        elif op == "mul":
            code = f"({lcode} * {rcode})"
        elif op == "div":
            if isinstance(e.type, ScalarType) and e.type.kind.is_integer:
                code = f"_idiv({lcode}, {rcode})"
            else:
                code = f"_fdiv({lcode}, {rcode})"
        elif op == "pow":
            code = f"_powop({lcode}, {rcode})"
        elif op == "rem":
            code = f"_remop({lcode}, {rcode})"
        elif op == "min":
            code = f"_npmin({lcode}, {rcode})" if is_vector \
                else f"min({lcode}, {rcode})"
        elif op == "max":
            code = f"_npmax({lcode}, {rcode})" if is_vector \
                else f"max({lcode}, {rcode})"
        elif op == "eq":
            code = f"({lcode} == {rcode})"
        elif op == "ne":
            code = f"({lcode} != {rcode})"
        elif op == "lt":
            code = f"({lcode} < {rcode})"
        elif op == "le":
            code = f"({lcode} <= {rcode})"
        elif op == "gt":
            code = f"({lcode} > {rcode})"
        elif op == "ge":
            code = f"({lcode} >= {rcode})"
        else:
            raise SimulationError(f"unknown binary op {op!r}")
        return code, static, counts

    def _math_expr(self, e: ir.MathCall, intvars):
        if e.name not in _MATH_HELPERS:
            raise SimulationError(f"unknown math function {e.name!r}")
        static: dict[int, int] = {}
        counts: dict[str, int] = {}
        parts = []
        for a in e.args:
            code, ast, acn = self.expr(a, intvars)
            _merge(static, ast)
            _merge(counts, acn)
            parts.append(code)
        operand_t = self._scalar_type(e.args[0]) if e.args \
            else ScalarType(ScalarKind.F64)
        _merge(static, {_MATH: self.cost.math(e.name, operand_t)})
        return f"_m_{e.name}({', '.join(parts)})", static, counts

    def _vecload_expr(self, e: ir.VecLoad, intvars):
        static: dict[int, int] = {}
        counts: dict[str, int] = {}
        base = self.int_code(e.base, intvars, static, counts)
        if e.instruction is not None:
            _merge(static,
                   {_INTR: self.cost.intrinsic(e.instruction.cycles)})
            _merge(counts, {e.instruction.name: 1})
        lanes = e.type.lanes
        alias = self.array(e.array)
        size = self._size_code(e.array, alias)
        j = f"_j{self.uid()}"
        slice_code = f"{alias}[{j}:{j} + {lanes}]"
        if e.reverse:
            slice_code += "[::-1]"
        code = (f"({slice_code}.copy() "
                f"if 0 <= ({j} := {base}) <= {size} - {lanes} "
                f"else _oob({e.array!r}, {size}, {j}, {lanes}))")
        return code, static, counts

    def _intrinsic_expr(self, e: ir.IntrinsicCall, intvars):
        instr = e.instruction
        static: dict[int, int] = {}
        counts: dict[str, int] = {}
        parts = []
        for a in e.args:
            code, ast, acn = self.expr(a, intvars)
            _merge(static, ast)
            _merge(counts, acn)
            parts.append(code)
        _merge(static, {_INTR: self.cost.intrinsic(instr.cycles)})
        _merge(counts, {instr.name: 1})
        op = instr.operation
        a = parts
        if op in ("vadd", "cadd"):
            code = f"({a[0]} + {a[1]})"
        elif op in ("vsub", "csub"):
            code = f"({a[0]} - {a[1]})"
        elif op in ("vmul", "cmul"):
            code = f"({a[0]} * {a[1]})"
        elif op == "vdiv":
            code = f"({a[0]} / {a[1]})"
        elif op in ("vmac", "cmac", "mac"):
            code = f"({a[0]} + {a[1]} * {a[2]})"
        elif op == "vmin":
            code = f"_npmin({a[0]}, {a[1]})"
        elif op == "vmax":
            code = f"_npmax({a[0]}, {a[1]})"
        elif op == "vabs":
            code = f"_npabs({a[0]})"
        elif op == "vneg":
            code = f"(-{a[0]})"
        elif op == "vconj":
            code = f"_npconj({a[0]})"
        elif op == "vsplat":
            dt = self.bind("_dt", numpy_dtype(e.type.elem.kind))
            code = f"_np.full({e.type.lanes}, {a[0]}, {dt})"
        elif op == "vredadd":
            code = f"_fromnp(_npsum({a[0]}))"
        elif op == "vredmin":
            code = f"_fromnp(_npamin({a[0]}))"
        elif op == "vredmax":
            code = f"_fromnp(_npamax({a[0]}))"
        elif op == "cconj":
            code = f"({a[0]}).conjugate()"
        elif op == "cmag2":
            code = f"_cmag2({a[0]})"
        elif op == "clip":
            code = f"min(max({a[0]}, {a[1]}), {a[2]})"
        else:
            raise SimulationError(f"unknown intrinsic operation {op!r}")
        return code, static, counts

    # -- statements ----------------------------------------------------

    def stmt(self, s: ir.Stmt, intvars: set[str]):
        """Return ``(lines, static_charges, static_counts)``."""
        self._cur_line = s.line
        if isinstance(s, ir.AssignVar):
            return self._assign_stmt(s, intvars)
        if isinstance(s, ir.Store):
            return self._store_stmt(s, intvars)
        if isinstance(s, ir.VecStore):
            return self._vecstore_stmt(s, intvars)
        if isinstance(s, ir.IntrinsicStmt):
            code, static, counts = self.expr(s.call, intvars)
            return [code], static, counts
        if isinstance(s, ir.ForRange):
            return self._for_stmt(s, intvars)
        if isinstance(s, ir.While):
            return self._while_stmt(s, intvars)
        if isinstance(s, ir.If):
            return self._if_stmt(s, intvars)
        if isinstance(s, ir.Break):
            return ["break"], {}, {}
        if isinstance(s, ir.Continue):
            return ["continue"], {}, {}
        if isinstance(s, ir.Return):
            return self.epilogue_lines() + ["return"], {}, {}
        if isinstance(s, ir.Call):
            return self._call_stmt(s, intvars)
        if isinstance(s, ir.Emit):
            return self._emit_stmt(s, intvars)
        if isinstance(s, ir.CopyArray):
            return self._copy_stmt(s)
        raise SimulationError(
            f"cannot execute statement {type(s).__name__}")

    def _assign_stmt(self, s: ir.AssignVar, intvars):
        is_int = self._is_int(s.value, intvars)
        code, static, counts = self.expr(s.value, intvars)
        _merge(static, {_MOVE: self.cost.move()})
        if s.name in self.dict_scalars:
            line = f"S[{s.name!r}] = {code}"
        else:
            line = f"{self.local(s.name)} = {code}"
        if is_int:
            intvars.add(s.name)
        else:
            intvars.discard(s.name)
        return [line], static, counts

    def _store_stmt(self, s: ir.Store, intvars):
        static: dict[int, int] = {}
        counts: dict[str, int] = {}
        idx = self.int_code(s.index, intvars, static, counts)
        vcode, vst, vcn = self.expr(s.value, intvars)
        _merge(static, vst)
        _merge(counts, vcn)
        elem = s.value.type if isinstance(s.value.type, ScalarType) \
            else ScalarType(ScalarKind.F64)
        _merge(static, {_MEM: self.cost.store(elem)})
        alias = self.array(s.array)
        size = self._size_code(s.array, alias)
        j = f"_j{self.uid()}"
        v = f"_v{self.uid()}"
        return [
            f"{j} = {idx}",
            f"{v} = {vcode}",
            f"if not (0 <= {j} < {size}): "
            f"_oob({s.array!r}, {size}, {j}, 1)",
            f"{alias}[{j}] = {v}",
        ], static, counts

    def _vecstore_stmt(self, s: ir.VecStore, intvars):
        static: dict[int, int] = {}
        counts: dict[str, int] = {}
        base = self.int_code(s.base, intvars, static, counts)
        vcode, vst, vcn = self.expr(s.value, intvars)
        _merge(static, vst)
        _merge(counts, vcn)
        if s.instruction is not None:
            _merge(static,
                   {_INTR: self.cost.intrinsic(s.instruction.cycles)})
            _merge(counts, {s.instruction.name: 1})
        lanes = s.value.type.lanes
        alias = self.array(s.array)
        size = self._size_code(s.array, alias)
        j = f"_j{self.uid()}"
        v = f"_v{self.uid()}"
        return [
            f"{j} = {base}",
            f"{v} = {vcode}",
            f"if not (0 <= {j} <= {size} - {lanes}): "
            f"_oob({s.array!r}, {size}, {j}, {lanes})",
            f"{alias}[{j}:{j} + {lanes}] = {v}",
        ], static, counts

    def _for_stmt(self, s: ir.ForRange, intvars):
        static: dict[int, int] = {}
        counts: dict[str, int] = {}
        start = self.int_code(s.start, intvars, static, counts)
        stop = self.int_code(s.stop, intvars, static, counts)

        body_vars = _assigned_names(s.body)
        inner = set(intvars) - body_vars
        loop_var_reassigned = any(
            isinstance(st, ir.AssignVar) and st.name == s.var
            for st in ir.walk_statements(s.body))
        if not loop_var_reassigned:
            inner.add(s.var)

        body_lines, bstatic, bcounts, blc = self.block(s.body, inner)
        _merge(bstatic, {_BRANCH: self.cost.branch()})
        # Loop-control overhead attributes to the loop's own line,
        # exactly like the tree-walker's per-iteration branch charge.
        _merge(blc, {s.line: self.cost.branch()})
        flush = self.flush_lines(bstatic, bcounts, blc)

        if s.var in self.dict_scalars:
            lv = f"_i{self.uid()}"
            assign = [f"S[{s.var!r}] = {lv}"]
        else:
            lv = self.local(s.var)
            assign = []
        lines = [f"for {lv} in range({start}, {stop}, {s.step}):"]
        suite = flush + assign + body_lines
        lines.extend("    " + l for l in (suite or ["pass"]))

        # Conservatively forget everything the body may have reassigned.
        # The loop variable is only provably int afterwards when it was
        # already int before (a zero-trip loop leaves the old value).
        was_int = s.var in intvars
        intvars.difference_update(body_vars)
        if was_int and not loop_var_reassigned:
            intvars.add(s.var)
        return lines, static, counts

    def _while_stmt(self, s: ir.While, intvars):
        body_vars = _assigned_names(s.body)
        intvars.difference_update(body_vars)
        ccode, cstatic, ccounts = self.expr(s.condition, intvars)
        _merge(cstatic, {_BRANCH: self.cost.branch()})
        # Condition check (including the final failing one) belongs to
        # the while statement's line, as in the tree-walker.
        check_flush = self.flush_lines(
            cstatic, ccounts, {s.line: sum(cstatic.values())})

        body_lines, bstatic, bcounts, blc = self.block(s.body,
                                                       set(intvars))
        body_flush = self.flush_lines(bstatic, bcounts, blc)

        suite = ["_t[0] += 1", "if _t[0] > _MS: _stepfail()"]
        suite += check_flush
        suite.append(f"if not ({ccode}): break")
        suite += body_flush + body_lines
        lines = ["while True:"] + ["    " + l for l in suite]
        return lines, {}, {}

    def _if_stmt(self, s: ir.If, intvars):
        ccode, static, counts = self.expr(s.condition, intvars)
        _merge(static, {_BRANCH: self.cost.branch()})

        then_vars = set(intvars)
        then_lines, tst, tcn, tlc = self.block(s.then_body, then_vars)
        then_suite = self.flush_lines(tst, tcn, tlc) + then_lines
        else_vars = set(intvars)
        else_lines, est, ecn, elc = self.block(s.else_body, else_vars)
        else_suite = self.flush_lines(est, ecn, elc) + else_lines

        lines = [f"if {ccode}:"]
        lines.extend("    " + l for l in (then_suite or ["pass"]))
        if else_suite:
            lines.append("else:")
            lines.extend("    " + l for l in else_suite)
        intvars.intersection_update(then_vars & else_vars)
        return lines, static, counts

    def _call_stmt(self, s: ir.Call, intvars):
        static: dict[int, int] = {_CALL: self.cost.call()}
        counts: dict[str, int] = {}
        parts = []
        for a in s.args:
            if isinstance(a, str):
                parts.append(f"{self.array(a)}.copy()")
            else:
                code, ast, acn = self.expr(a, intvars)
                _merge(static, ast)
                _merge(counts, acn)
                parts.append(code)
        program = self.program
        callee = s.callee
        results = list(s.results)

        def invoke(S, A, args):
            cf = program.compiled.get(callee)
            if cf is None:
                raise SimulationError(f"unknown callee {callee!r}")
            outs = cf.call(list(args))
            for name, value in zip(results, outs):
                if isinstance(value, np.ndarray):
                    dst = A.get(name)
                    if dst is None:
                        raise SimulationError(f"unknown array {name!r}")
                    dst[:] = value.reshape(-1, order="F")
                else:
                    S[name] = value
        helper = self.bind("_call", invoke)
        tuple_code = "(" + "".join(p + ", " for p in parts) + ")"
        intvars.difference_update(results)
        return [f"{helper}(S, A, {tuple_code})"], static, counts

    def _emit_stmt(self, s: ir.Emit, intvars):
        static: dict[int, int] = {}
        counts: dict[str, int] = {}
        parts = []
        for a in s.args:
            code, ast, acn = self.expr(a, intvars)
            _merge(static, ast)
            _merge(counts, acn)
            parts.append(code)
        stdout = self.program.stdout
        fmt = s.format

        def emit(values):
            stdout.append(format_emit(fmt, list(values)))
        helper = self.bind("_emit", emit)
        tuple_code = "(" + "".join(p + ", " for p in parts) + ")"
        return [f"{helper}({tuple_code})"], static, counts

    def _copy_stmt(self, s: ir.CopyArray):
        dst_t = self._array_info(s.dst)
        src_t = self._array_info(s.src)
        dalias = self.array(s.dst)
        salias = self.array(s.src)
        if dst_t is not None and src_t is not None:
            count = min(dst_t.numel, src_t.numel)
            elem_kind = ScalarKind.C128 if dst_t.elem.kind.is_complex \
                else ScalarKind.F64
            cost = count * self.cost.copy_element(ScalarType(elem_kind))
            return ([f"{dalias}[:{count}] = {salias}[:{count}]"],
                    {_MEM: cost}, {})
        # Shapes unknown at compile time: fall back to a dynamic helper.
        acc = self.program.acc
        cost_model = self.cost
        line_cycles = self.program.line_cycles if self.profile else None
        line = self._cur_line

        def copy(dst, src):
            count = min(dst.size, src.size)
            elem_kind = ScalarKind.C128 if np.iscomplexobj(dst) \
                else ScalarKind.F64
            cost = count * cost_model.copy_element(ScalarType(elem_kind))
            acc[_MEM] += cost
            if line_cycles is not None:
                line_cycles[line] = line_cycles.get(line, 0) + cost
            dst[:count] = src[:count]
        helper = self.bind("_cpy", copy)
        return [f"{helper}({dalias}, {salias})"], {}, {}

    # -- blocks and function assembly ----------------------------------

    def block(self, body: list[ir.Stmt], intvars: set[str]):
        """Emit a statement list.

        Static charges of the leading statement group (everything up to
        and including the first statement that can abort the block) are
        hoisted to the caller; later groups flush inline, so a Break /
        Continue / Return mid-block never over-charges.  When line
        profiling is on, each group also carries a per-source-line
        breakdown of the same static cycles.
        """
        groups: list[tuple[list[str], dict, dict, dict]] = []
        cur_lines: list[str] = []
        cur_static: dict[int, int] = {}
        cur_counts: dict[str, int] = {}
        cur_lc: dict[int, int] = {}
        for s in body:
            slines, sst, scn = self.stmt(s, intvars)
            _merge(cur_static, sst)
            _merge(cur_counts, scn)
            if self.profile:
                stmt_cycles = sum(sst.values())
                if stmt_cycles:
                    _merge(cur_lc, {s.line: stmt_cycles})
            cur_lines.extend(slines)
            if _can_abrupt(s):
                groups.append((cur_lines, cur_static, cur_counts,
                               cur_lc))
                cur_lines, cur_static, cur_counts, cur_lc = \
                    [], {}, {}, {}
        if cur_lines or cur_static or cur_counts:
            groups.append((cur_lines, cur_static, cur_counts, cur_lc))
        if not groups:
            return [], {}, {}, {}
        lines = list(groups[0][0])
        for glines, gst, gcn, glc in groups[1:]:
            lines.extend(self.flush_lines(gst, gcn, glc))
            lines.extend(glines)
        return lines, groups[0][1], groups[0][2], groups[0][3]

    def epilogue_lines(self) -> list[str]:
        """Write scalar outputs held in locals back to S before leaving."""
        lines = []
        for out in self.func.outputs:
            if isinstance(out.type, ArrayType) or \
                    out.name in self.dict_scalars:
                continue
            alias = self.local(out.name)
            lines.append("try:")
            lines.append(f"    S[{out.name!r}] = {alias}")
            lines.append("except NameError:")
            lines.append("    pass")
        return lines

    def build(self):
        func = self.func
        intvars = {p.name for p in func.params
                   if isinstance(p.type, ScalarType)
                   and p.type.kind.is_integer}
        body_lines, static, counts, linecost = self.block(func.body,
                                                          intvars)
        body_lines = self.flush_lines(static, counts, linecost) + \
            body_lines
        body_lines += self.epilogue_lines()

        prologue = []
        for param in func.params:
            if isinstance(param.type, ScalarType) and \
                    param.name not in self.dict_scalars and \
                    param.name in self._locals:
                prologue.append(
                    f"{self._locals[param.name]} = S[{param.name!r}]")
        for name, alias in self._arrays_used.items():
            prologue.append(f"{alias} = A[{name!r}]")

        suite = prologue + body_lines or ["pass"]
        source = "def _f(S, A):\n" + "\n".join(
            "    " + line for line in suite)
        code = compile(source, f"<compiled {func.name}>", "exec")
        exec(code, self.ns)
        return self.ns["_f"], source


class CompiledFunction:
    """One IRFunction translated to a directly executable Python function."""

    def __init__(self, program: "CompiledProgram", func: ir.IRFunction):
        self.func = func
        self.fn, self.source = _FuncCodegen(program, func).build()

    def call(self, args: list[object]) -> list[object]:
        func = self.func
        if len(args) != len(func.params):
            raise SimulationError(
                f"{func.name}: expected {len(func.params)} arguments, "
                f"got {len(args)}")
        scalars: dict[str, object] = {}
        arrays: dict[str, np.ndarray] = {}
        for param, value in zip(func.params, args):
            if isinstance(param.type, ArrayType):
                arrays[param.name] = as_buffer(value, param.type,
                                               param.name)
            else:
                scalars[param.name] = coerce_scalar(value, param.type)
        for name, ir_type in func.locals.items():
            if isinstance(ir_type, ArrayType):
                arrays[name] = np.zeros(
                    ir_type.numel, dtype=numpy_dtype(ir_type.elem.kind))
        for out in func.outputs:
            if isinstance(out.type, ArrayType) and out.name not in arrays:
                arrays[out.name] = np.zeros(
                    out.type.numel, dtype=numpy_dtype(out.type.elem.kind))

        try:
            self.fn(scalars, arrays)
        except SimulationError:
            raise
        except KeyError as exc:
            raise SimulationError(
                f"read of unassigned variable {exc.args[0]!r}") from exc
        except NameError as exc:
            raise SimulationError(
                f"read of unassigned variable in {func.name}: "
                f"{exc}") from exc

        outputs: list[object] = []
        for out in func.outputs:
            if isinstance(out.type, ArrayType):
                shaped = arrays[out.name].reshape(
                    (out.type.rows, out.type.cols), order="F")
                outputs.append(shaped.copy())
            else:
                value = scalars.get(out.name)
                if value is None:
                    raise SimulationError(
                        f"{func.name}: output {out.name!r} never assigned")
                outputs.append(value)
        return outputs


class CompiledProgram:
    """A whole IRModule translated once, reusable across many runs."""

    def __init__(self, module: ir.IRModule,
                 processor: ProcessorDescription,
                 max_steps: int = 200_000_000,
                 profile_lines: bool = False):
        self.module = module
        self.processor = processor
        self.cost = CostModel(processor)
        self.max_steps = max_steps
        self.profile_lines = profile_lines
        self.acc: list[int] = [0] * len(_CATEGORIES)
        self.icounts: dict[str, int] = {}
        self.line_cycles: dict[int, int] = {}
        self.steps: list[int] = [0]
        self.stdout: list[str] = []
        self.compiled: dict[str, CompiledFunction] = {}
        for func in module.functions:
            self.compiled[func.name] = CompiledFunction(self, func)

    def _reset(self) -> None:
        acc = self.acc
        for index in range(len(acc)):
            acc[index] = 0
        self.icounts.clear()
        self.line_cycles.clear()
        self.steps[0] = 0
        self.stdout.clear()

    def run(self, args: list[object],
            entry: str | None = None) -> ExecutionResult:
        self._reset()
        name = entry or self.module.entry
        cf = self.compiled.get(name)
        if cf is None:
            raise SimulationError(f"no function {name!r}")
        outputs = cf.call(list(args))
        report = CycleReport(
            total=sum(self.acc),
            by_category={_CATEGORIES[i]: v
                         for i, v in enumerate(self.acc) if v},
            instruction_counts=dict(self.icounts))
        line_cycles = dict(self.line_cycles) if self.profile_lines \
            else None
        return ExecutionResult(outputs=outputs, report=report,
                               stdout="".join(self.stdout),
                               line_cycles=line_cycles)

    def dump_source(self, name: str | None = None) -> str:
        """Generated Python of one function (debugging aid)."""
        cf = self.compiled[name or self.module.entry]
        return cf.source


class CompiledSimulator:
    """Drop-in replacement for :class:`~repro.sim.machine.Simulator`.

    Translation happens once in the constructor; every ``run`` reuses
    the compiled program, which is what makes repeated simulation of
    the same module (benchmark loops, instruction-mix queries) fast.
    """

    def __init__(self, module: ir.IRModule,
                 processor: ProcessorDescription,
                 max_steps: int = 200_000_000,
                 profile_lines: bool = False):
        self.module = module
        self.program = CompiledProgram(module, processor, max_steps,
                                       profile_lines=profile_lines)

    def run(self, args: list[object],
            entry: str | None = None) -> ExecutionResult:
        return self.program.run(args, entry)
