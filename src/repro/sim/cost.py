"""Cycle-cost model of the target ASIP.

Wraps a processor's :class:`~repro.asip.model.CostTable` and expands
complex scalar arithmetic into its real-operation equivalent — a complex
multiply on a plain scalar datapath is four multiplies and two adds,
which is exactly the gap the paper's ``cmul``/``cmac`` custom
instructions close.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asip.model import CostTable, ProcessorDescription
from repro.ir.types import ScalarKind, ScalarType


@dataclass
class CycleReport:
    """Accumulated cycles, broken down by category."""

    total: int = 0
    by_category: dict[str, int] = field(default_factory=dict)
    instruction_counts: dict[str, int] = field(default_factory=dict)

    def charge(self, category: str, cycles: int) -> None:
        self.total += cycles
        self.by_category[category] = self.by_category.get(category, 0) + cycles

    def count_instruction(self, name: str) -> None:
        self.instruction_counts[name] = \
            self.instruction_counts.get(name, 0) + 1

    def merge(self, other: "CycleReport") -> None:
        self.total += other.total
        for key, value in other.by_category.items():
            self.by_category[key] = self.by_category.get(key, 0) + value
        for key, value in other.instruction_counts.items():
            self.instruction_counts[key] = \
                self.instruction_counts.get(key, 0) + value

    def summary(self) -> str:
        parts = [f"total={self.total}"]
        for key in sorted(self.by_category):
            parts.append(f"{key}={self.by_category[key]}")
        return " ".join(parts)


class CostModel:
    """Per-operation cycle costs for one processor."""

    def __init__(self, processor: ProcessorDescription):
        self.processor = processor
        self.costs: CostTable = processor.costs

    # -- scalar operations ------------------------------------------------

    def binop(self, op: str, operand: ScalarType) -> int:
        base = self.costs.for_binop(op)
        if not operand.is_complex:
            return base
        if op in ("add", "sub"):
            return 2 * self.costs.add
        if op == "mul":
            return 4 * self.costs.mul + 2 * self.costs.add
        if op == "div":
            # (4 mul + 2 add) numerator, |d|^2, two divides.
            return 4 * self.costs.mul + 3 * self.costs.add + \
                2 * self.costs.div
        if op in ("eq", "ne"):
            return 2 * self.costs.compare
        return 2 * base

    def unop(self, op: str, operand: ScalarType) -> int:
        if operand.is_complex:
            return 2 * self.costs.add
        return self.costs.add

    def math(self, name: str, operand: ScalarType) -> int:
        base = self.costs.for_math(name)
        if not operand.is_complex:
            return base
        if name in ("real", "imag"):
            return self.costs.move
        if name == "conj":
            return self.costs.add
        if name == "abs":
            return 2 * self.costs.mul + self.costs.add + self.costs.sqrt
        return 4 * base  # complex transcendental via real routines

    def load(self, elem: ScalarType) -> int:
        return 2 * self.costs.load if elem.is_complex else self.costs.load

    def store(self, elem: ScalarType) -> int:
        return 2 * self.costs.store if elem.is_complex else self.costs.store

    def cast(self) -> int:
        return self.costs.move

    def move(self) -> int:
        return self.costs.move

    def branch(self) -> int:
        return self.costs.branch

    def call(self) -> int:
        return self.costs.call

    def copy_element(self, elem: ScalarType) -> int:
        return self.load(elem) + self.store(elem)

    def intrinsic(self, cycles: int) -> int:
        return cycles


def kind_of(expr_type) -> ScalarKind:
    if isinstance(expr_type, ScalarType):
        return expr_type.kind
    return ScalarKind.F64
