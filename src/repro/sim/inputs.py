"""Deterministic input generation for simulation runs.

One seed, one entry signature -> one input vector, bit-identical on
every host and in every process.  Shared by ``repro-mc --simulate``,
the service workers (``CompileJob.simulate_seed``), and the
design-space-exploration engine, whose seed-determinism contract
(same seed => byte-identical Pareto front at ``--jobs 1`` and
``--jobs 8``) leans on this: every worker that simulates a kernel
must feed it exactly the same numbers.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.ir.types import ArrayType
from repro.sim.machine import numpy_dtype


def mix_seed(seed: int, label: str) -> int:
    """Stable per-label derivation of a sub-seed from a run seed.

    ``zlib.crc32`` rather than ``hash()``: the latter is salted per
    process (PYTHONHASHSEED), which would break cross-process
    determinism.
    """
    return (int(seed) ^ zlib.crc32(label.encode("utf-8"))) & 0x7FFFFFFF


def random_inputs(entry_function, seed: int) -> list:
    """Deterministic random inputs matching an entry's parameter types.

    Arrays are standard-normal draws in the parameter's dtype (complex
    kinds get independent real/imaginary draws); scalars are a single
    float draw.  Draw order is the parameter order, so the vector is a
    pure function of ``(signature, seed)``.
    """
    rng = np.random.default_rng(seed)
    inputs = []
    for param in entry_function.params:
        if isinstance(param.type, ArrayType):
            data = rng.standard_normal(param.type.numel)
            if param.type.elem.is_complex:
                data = data + 1j * rng.standard_normal(param.type.numel)
            inputs.append(data.astype(numpy_dtype(param.type.elem.kind)))
        else:
            inputs.append(float(rng.standard_normal()))
    return inputs
