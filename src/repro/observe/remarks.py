"""Structured optimization remarks (LLVM ``-Rpass`` style).

A remark records one optimizer decision — a transformation that
*passed* (was applied), one that was *missed* (and why), or a neutral
*analysis* note — together with the pass that made it, the function it
applies to, and the 1-based MATLAB source line it maps back to.

Passes do not take a session argument; they emit through
:func:`emit` / :func:`passed` / :func:`missed` / :func:`analysis`,
which route into the ambient :func:`repro.observe.trace.current`
session (a no-op when observability is disabled).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Remark kinds, mirroring LLVM's -Rpass / -Rpass-missed / -Rpass-analysis.
PASSED = "passed"
MISSED = "missed"
ANALYSIS = "analysis"

KINDS = (PASSED, MISSED, ANALYSIS)


@dataclass
class Remark:
    """One optimizer decision with its source location."""

    kind: str                    # "passed" | "missed" | "analysis"
    pass_name: str               # e.g. "simd-vectorize"
    message: str                 # human-readable reason/description
    function: str = ""           # IR function the remark applies to
    line: int = 0                # 1-based MATLAB line (0 = unknown)
    args: dict = field(default_factory=dict)

    def format(self, filename: str = "") -> str:
        """Render one clang-like diagnostic line."""
        where = f"{filename or '<source>'}:{self.line}: " if self.line \
            else ""
        func = f" in {self.function}" if self.function else ""
        return f"{where}{self.kind} [{self.pass_name}]{func}: " \
               f"{self.message}"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "pass": self.pass_name,
            "message": self.message,
            "function": self.function,
            "line": self.line,
            "args": dict(self.args),
        }


def emit(kind: str, pass_name: str, message: str, *, function: str = "",
         line: int = 0, **args) -> Remark:
    """Emit one remark into the ambient trace session."""
    from repro.observe import trace
    remark = Remark(kind, pass_name, message, function, line, args)
    trace.current().remark(remark)
    return remark


def passed(pass_name: str, message: str, *, function: str = "",
           line: int = 0, **args) -> Remark:
    return emit(PASSED, pass_name, message, function=function, line=line,
                **args)


def missed(pass_name: str, message: str, *, function: str = "",
           line: int = 0, **args) -> Remark:
    return emit(MISSED, pass_name, message, function=function, line=line,
                **args)


def analysis(pass_name: str, message: str, *, function: str = "",
             line: int = 0, **args) -> Remark:
    return emit(ANALYSIS, pass_name, message, function=function, line=line,
                **args)
