"""Trace sessions: nested spans, counters, and the ambient session.

A :class:`TraceSession` collects three event streams for one or more
compilations/simulations:

* **spans** — nested wall-clock intervals (``with session.span(...)``),
* **counters** — monotonically accumulated named integers,
* **remarks** — structured optimizer decisions
  (:class:`repro.observe.remarks.Remark`).

Sessions export the span/counter streams as Chrome trace-event JSON
(:meth:`TraceSession.to_chrome_trace`), loadable in Perfetto and
chrome://tracing.

Instrumented code never receives a session argument; it reads the
ambient one via :func:`current`.  Installing a session is scoped::

    session = TraceSession()
    with use(session):
        result = compile_source(...)

When no session is installed, :func:`current` returns a shared
*disabled* session whose ``span`` returns a reusable no-op context
manager and whose ``counter``/``remark`` are single ``if`` statements —
the disabled-mode overhead guarantee documented in DESIGN.md.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.observe.remarks import Remark
from repro.observe.telemetry import MetricsRegistry


@dataclass
class Span:
    """One timed interval.  Also its own context manager: entering
    starts the clock and registers the span with its session; exiting
    fixes ``duration``.  ``start``/``duration`` are seconds relative to
    the session origin.  ``id`` is session-unique and shared with the
    Chrome trace export and the JSONL event log, so events can be
    joined to the span they happened inside."""

    name: str
    category: str = "compile"
    start: float = 0.0
    duration: float = 0.0
    depth: int = 0
    id: int = 0
    parent: int = 0
    args: dict = field(default_factory=dict)
    session: "TraceSession | None" = field(default=None, repr=False)

    def set(self, **args) -> "Span":
        """Attach/overwrite argument key-values on the span."""
        self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        session = self.session
        self.depth = len(session._stack)
        self.id = session._next_span_id
        session._next_span_id += 1
        if session._stack:
            self.parent = session._stack[-1].id
        session._stack.append(self)
        session.spans.append(self)
        self.start = session._clock() - session._origin
        return self

    def __exit__(self, *exc) -> bool:
        session = self.session
        self.duration = session._clock() - session._origin - self.start
        session._stack.pop()
        return False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "start_s": self.start,
            "duration_s": self.duration,
            "depth": self.depth,
            "id": self.id,
            "parent": self.parent,
            "args": dict(self.args),
        }


class _NullSpan:
    """Shared no-op span used by disabled sessions (never allocated
    per call)."""

    __slots__ = ()
    duration = 0.0
    depth = 0
    id = 0
    parent = 0

    def set(self, **args) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class TraceSession:
    """Collects spans, counters, and remarks for one logical run."""

    def __init__(self, enabled: bool = True,
                 clock=time.perf_counter) -> None:
        self.enabled = enabled
        self.spans: list[Span] = []
        self.counters: dict[str, int] = {}
        self.remarks: list[Remark] = []
        #: Aggregated metrics (counters mirror + gauges + latency
        #: histograms); the substrate behind ``--metrics-prom`` and the
        #: service's cross-process aggregation.
        self.metrics = MetricsRegistry(enabled=enabled)
        #: Structured event stream (``event()``), exported as JSONL.
        self.events: list[dict] = []
        #: When True, PassManager prints the IR of a function to stderr
        #: after every pass that changed it (CLI ``--print-changed``).
        self.print_changed = False
        self._clock = clock
        self._origin = clock()
        self._stack: list[Span] = []
        self._next_span_id = 1

    def span(self, name: str, category: str = "compile", **args):
        """A context manager timing one interval; yields the Span so
        callers can read ``.duration`` afterwards or ``.set(...)``
        extra arguments."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(name=name, category=category, args=args, session=self)

    def counter(self, name: str, delta: int = 1) -> None:
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + delta
            self.metrics.counter(name, delta)

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency sample into the session's registry."""
        if self.enabled:
            self.metrics.observe(name, seconds)

    def event(self, kind: str, **fields) -> None:
        """Append one structured event, stamped with the session clock
        and the innermost open span's id (see
        :mod:`repro.observe.events`)."""
        if self.enabled:
            record = {"ts_s": round(self.elapsed(), 6), "kind": kind,
                      "span_id": self._stack[-1].id if self._stack
                      else 0}
            record.update(fields)
            self.events.append(record)

    def remark(self, remark: Remark) -> None:
        if self.enabled:
            self.remarks.append(remark)

    def elapsed(self) -> float:
        """Seconds since the session was created."""
        return self._clock() - self._origin

    def to_chrome_trace(self) -> dict:
        """Spans and counters in Chrome trace-event JSON form.

        Spans become complete ("X") events with microsecond ts/dur;
        counters become one "C" sample at the end of the trace.
        """
        events = []
        for span in self.spans:
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": 1,
                "tid": 1,
                # span_id joins trace intervals to --events-jsonl rows.
                "args": dict(span.args, span_id=span.id),
            })
        end_us = round(self.elapsed() * 1e6, 3)
        for name in sorted(self.counters):
            events.append({
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": end_us,
                "pid": 1,
                "tid": 1,
                "args": {"value": self.counters[name]},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}


#: Shared sink for all instrumentation when no session is installed.
_DISABLED = TraceSession(enabled=False)

#: Stack of installed sessions (innermost wins), carried in a
#: :class:`contextvars.ContextVar` so concurrent requests in a threaded
#: or async daemon each see only their own session.  A process-global
#: list here would cross-contaminate spans and counters between
#: requests: thread B's instrumentation would land in whatever session
#: thread A happened to have installed.  The stack is an immutable
#: tuple so ``use`` can install/restore with set/reset tokens and never
#: mutate state shared across contexts.
_ACTIVE: "ContextVar[tuple[TraceSession, ...]]" = ContextVar(
    "repro_trace_active", default=())


def current() -> TraceSession:
    """The ambient trace session (a disabled one when none installed).

    Context-local: each thread and each asyncio task resolves the
    sessions installed in *its* context only.
    """
    stack = _ACTIVE.get()
    return stack[-1] if stack else _DISABLED


class use:
    """Context manager installing ``session`` as the ambient one.

    Installation is context-local (see ``_ACTIVE``): a session
    installed in one thread or asyncio task is invisible to every
    other, so concurrent daemon requests never share counters.  Note
    that a ``threading.Thread`` starts in a *fresh* context — a worker
    thread that should report into a session must install it itself.
    """

    def __init__(self, session: TraceSession) -> None:
        self.session = session
        self._token = None

    def __enter__(self) -> TraceSession:
        self._token = _ACTIVE.set(_ACTIVE.get() + (self.session,))
        return self.session

    def __exit__(self, *exc) -> bool:
        _ACTIVE.reset(self._token)
        return False
