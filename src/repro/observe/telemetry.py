"""Process-wide metrics registry: counters, gauges, latency histograms.

A :class:`MetricsRegistry` is the aggregation substrate underneath the
trace layer: where spans answer "what happened *when* in this run",
the registry answers "what is the *distribution*" — how many cache
hits, what is the p99 compile-job latency — in a form that survives
process boundaries and merges exactly.

Three metric kinds:

* **counters** — monotonically accumulated named integers (the same
  vocabulary as :class:`~repro.observe.trace.TraceSession` counters;
  an enabled session mirrors every ``counter()`` call into its
  registry).
* **gauges** — last-known level values.  Gauges merge by ``max``, so
  name them for peaks (``service.queue_depth_peak``) when they must
  aggregate meaningfully across shards.
* **histograms** — fixed-bucket latency distributions.  Observations
  are quantized to **integer nanoseconds** and bucketed against a
  shared 1-2-5 log grid, so every histogram field (bucket counts, sum,
  min, max) is an integer and :meth:`MetricsRegistry.merge` is exactly
  associative and order-independent: merging N worker snapshots in any
  grouping yields bit-identical state to observing serially.  That is
  the invariant that lets the parallel compilation service ship
  per-worker snapshots back inside ``JobResult`` and aggregate them in
  the parent (``tests/test_telemetry.py`` proves it with hypothesis).

Registries serialize with :meth:`snapshot` (plain JSON-able dict) and
deserialize/accumulate with :meth:`merge`, which accepts either another
registry or a snapshot dict.  Summaries (:meth:`summaries`) render
p50/p90/p99 estimates by rank-interpolating within the bucket that
contains the requested rank — deterministic given the counts, hence
also merge-order independent.

Thread safety: one lock per registry around every mutation; snapshots
are consistent cuts.  A disabled registry (``enabled=False``) swallows
everything behind single-``if`` guards, matching the disabled-session
overhead contract in DESIGN.md.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from math import ceil

#: Schema tag carried by every snapshot.
SNAPSHOT_SCHEMA = "repro-metrics-v1"

#: Histogram bucket layout version; merging snapshots with a different
#: layout is a hard error (summing misaligned buckets would be silent
#: corruption).
BUCKET_LAYOUT = "ns-125-v1"


def _bucket_bounds() -> "tuple[int, ...]":
    """Upper bucket bounds in nanoseconds: a 1-2-5 series from 100 ns
    to 100 s (sub-microsecond covers warm in-memory cache hits; 100 s
    covers the longest service job deadlines)."""
    bounds = []
    decade = 100
    while decade <= 100_000_000_000:
        for step in (1, 2, 5):
            bounds.append(decade * step)
        decade *= 10
    return tuple(b for b in bounds if b <= 100_000_000_000)


#: Shared bucket upper bounds (ns); one extra overflow bucket follows.
BOUNDS: "tuple[int, ...]" = _bucket_bounds()


def _to_ns(seconds: float) -> int:
    return max(0, int(round(seconds * 1e9)))


class Histogram:
    """Fixed-bucket latency histogram over integer nanoseconds."""

    __slots__ = ("counts", "count", "sum_ns", "min_ns", "max_ns")

    def __init__(self) -> None:
        self.counts = [0] * (len(BOUNDS) + 1)
        self.count = 0
        self.sum_ns = 0
        self.min_ns: "int | None" = None
        self.max_ns: "int | None" = None

    def observe_ns(self, ns: int) -> None:
        self.counts[bisect_left(BOUNDS, ns)] += 1
        self.count += 1
        self.sum_ns += ns
        if self.min_ns is None or ns < self.min_ns:
            self.min_ns = ns
        if self.max_ns is None or ns > self.max_ns:
            self.max_ns = ns

    def merge(self, other: dict) -> None:
        """Accumulate one serialized histogram into this one."""
        if other.get("layout") != BUCKET_LAYOUT:
            raise ValueError(
                f"cannot merge histogram with bucket layout "
                f"{other.get('layout')!r}; this registry uses "
                f"{BUCKET_LAYOUT!r}")
        counts = other["counts"]
        if len(counts) != len(self.counts):
            raise ValueError("histogram bucket count mismatch")
        for index, value in enumerate(counts):
            self.counts[index] += value
        self.count += other["count"]
        self.sum_ns += other["sum_ns"]
        for bound, pick in (("min_ns", min), ("max_ns", max)):
            theirs = other.get(bound)
            if theirs is not None:
                ours = getattr(self, bound)
                setattr(self, bound,
                        theirs if ours is None else pick(ours, theirs))

    def percentile_ns(self, q: float) -> "int | None":
        """Nearest-rank percentile estimate (integer ns).

        Locates the bucket containing observation #``ceil(q*count)``
        and linearly interpolates the rank's position inside the
        bucket's bounds, clamped to the exact observed min/max.  Purely
        a function of the (integer) histogram state, so the estimate is
        identical no matter how the histogram was sharded and merged.
        """
        if self.count == 0:
            return None
        rank = min(max(1, ceil(q * self.count)), self.count)
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lo = BOUNDS[index - 1] if index > 0 else 0
                hi = BOUNDS[index] if index < len(BOUNDS) else self.max_ns
                position = (rank - cumulative) / bucket_count
                value = lo + position * (hi - lo)
                return int(min(max(value, self.min_ns), self.max_ns))
            cumulative += bucket_count
        return self.max_ns  # unreachable; counts sum to count

    def to_dict(self) -> dict:
        return {"layout": BUCKET_LAYOUT,
                "counts": list(self.counts),
                "count": self.count,
                "sum_ns": self.sum_ns,
                "min_ns": self.min_ns,
                "max_ns": self.max_ns}

    def summary(self) -> dict:
        """Human-facing seconds-valued digest (p50/p90/p99 + moments)."""
        if self.count == 0:
            return {"count": 0}
        digest = {"count": self.count,
                  "sum_s": round(self.sum_ns / 1e9, 9),
                  "mean_s": round(self.sum_ns / self.count / 1e9, 9),
                  "min_s": round(self.min_ns / 1e9, 9),
                  "max_s": round(self.max_ns / 1e9, 9)}
        for name, q in (("p50_s", 0.50), ("p90_s", 0.90),
                        ("p99_s", 0.99)):
            digest[name] = round(self.percentile_ns(q) / 1e9, 9)
        return digest


class _Timer:
    """Context manager produced by :meth:`MetricsRegistry.time`."""

    __slots__ = ("registry", "name", "start", "duration")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self.registry = registry
        self.name = name
        self.duration = 0.0

    def __enter__(self) -> "_Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.duration = time.perf_counter() - self.start
        self.registry.observe(self.name, self.duration)
        return False


class MetricsRegistry:
    """Thread-safe counters + gauges + latency histograms."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- recording -----------------------------------------------------

    def counter(self, name: str, delta: int = 1) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency sample (seconds) into histogram ``name``.

        By convention histogram names end in ``_s`` (seconds); the
        Prometheus exposition rewrites that suffix to ``_seconds``.
        """
        if not self.enabled:
            return
        ns = _to_ns(seconds)
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe_ns(ns)

    def time(self, name: str) -> _Timer:
        """``with registry.time("stage_s"): ...`` convenience timer."""
        return _Timer(self, name)

    # -- reading -------------------------------------------------------

    @property
    def counters(self) -> "dict[str, int]":
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> dict:
        """Consistent JSON-able cut of the whole registry."""
        with self._lock:
            return {
                "schema": SNAPSHOT_SCHEMA,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {name: h.to_dict()
                               for name, h in self._histograms.items()},
            }

    def summaries(self) -> "dict[str, dict]":
        """Per-histogram digest (count/sum/mean/min/max/p50/p90/p99)."""
        with self._lock:
            return {name: h.summary()
                    for name, h in sorted(self._histograms.items())}

    # -- aggregation ---------------------------------------------------

    def merge(self, other: "MetricsRegistry | dict | None") -> None:
        """Accumulate another registry (or a :meth:`snapshot` dict).

        Exactly associative and order-independent: counters and
        histogram fields are integer sums/mins/maxes, gauges merge by
        ``max``.
        """
        if other is None:
            return
        if isinstance(other, MetricsRegistry):
            other = other.snapshot()
        if not other:
            return
        with self._lock:
            for name, value in other.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in other.get("gauges", {}).items():
                mine = self._gauges.get(name)
                self._gauges[name] = value if mine is None \
                    else max(mine, value)
            for name, serialized in other.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = Histogram()
                histogram.merge(serialized)


def merged(snapshots: "list[dict | None]") -> MetricsRegistry:
    """One registry accumulating every snapshot (Nones skipped)."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry
