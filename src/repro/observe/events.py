"""Structured JSONL event log.

Where spans are *intervals* and registry metrics are *aggregates*,
events are the discrete things that happened, in order: a compile
started, a cache layer answered, a service job was submitted, retried,
or crashed, a fuzz verdict landed.  Each event is one JSON object per
line (JSONL — greppable, tail-able, trivially ingested), carrying:

* ``ts_s`` — seconds since the session origin (the same clock the
  Chrome trace uses, so timestamps line up);
* ``kind`` — dotted event name (``job.done``, ``compile.start``);
* ``span_id`` — the id of the innermost open span when the event was
  emitted (0 = no open span).  Span ids also appear on the Chrome
  trace events' ``args``, so an event can be joined to the exact trace
  interval it happened inside;
* free-form payload fields.

Events are collected in-memory on the :class:`TraceSession`
(``session.event(kind, **fields)``) and published atomically by
:func:`write_events_jsonl` — a crashed run never leaves a truncated
log.
"""

from __future__ import annotations

import json


def format_events(events: "list[dict]") -> str:
    """Events as JSONL text (one compact JSON object per line)."""
    return "".join(
        json.dumps(event, sort_keys=True, default=str) + "\n"
        for event in events)


def write_events_jsonl(path: str, events: "list[dict]") -> None:
    """Atomically publish one event stream as a JSONL file."""
    from repro.observe.metrics import atomic_write_text

    atomic_write_text(path, format_events(events))
