"""Per-source-line cycle attribution rendered as annotated source.

Both simulator backends can record ``line_cycles`` — a mapping from
1-based MATLAB source lines to the cycles charged while executing
statements lowered from that line (line 0 collects compiler-generated
statements with no source mapping, e.g. CSE temporaries).  The two
backends agree exactly on these totals; ``tests/test_observe.py``
checks the invariant differentially.
"""

from __future__ import annotations

from repro.frontend.source import SourceFile


def line_table(line_cycles: dict[int, int]) -> list[tuple[int, int]]:
    """(line, cycles) pairs sorted hottest-first (ties by line)."""
    return sorted(line_cycles.items(), key=lambda item: (-item[1], item[0]))


def annotate_source(source: SourceFile,
                    line_cycles: dict[int, int]) -> str:
    """Annotated-source hotspot table for one profiled run.

    Every source line is shown with its cycle count and share of the
    total; cycles attributed to compiler-generated statements (line 0)
    appear as a trailing row.
    """
    total = sum(line_cycles.values())
    denom = total or 1
    n_lines = source.text.count("\n") + 1
    rows = [f"hotspots: {source.filename} (total cycles: {total})",
            f"  {'cycles':>10}  {'%':>6}  {'line':>4}  source",
            f"  {'-' * 10}  {'-' * 6}  {'-' * 4}  {'-' * 6}"]
    for line in range(1, n_lines + 1):
        text = source.line_text(line)
        cycles = line_cycles.get(line, 0)
        if cycles:
            rows.append(f"  {cycles:>10}  {cycles / denom * 100:>6.1f}"
                        f"  {line:>4}  {text}")
        else:
            if not text.strip():
                continue
            rows.append(f"  {'':>10}  {'':>6}  {line:>4}  {text}")
    generated = line_cycles.get(0, 0)
    if generated:
        rows.append(f"  {generated:>10}  {generated / denom * 100:>6.1f}"
                    f"  {'':>4}  (compiler-generated)")
    return "\n".join(rows)
