"""Machine-readable metrics reports (one JSON document per run).

:func:`build_report` assembles everything the observability layer knows
about one compile (and optionally one simulation) into a single
JSON-serializable dict: stage timings, pass statistics, cache
statistics, counters, spans, optimization remarks, and — when the run
was profiled — the per-line hotspot attribution.  The CLI writes it via
``--metrics-json FILE``.
"""

from __future__ import annotations

import json

SCHEMA = "repro-observe-report-v1"


def build_report(result=None, run=None, session=None) -> dict:
    """Assemble one metrics report.

    Args:
        result: a :class:`repro.compiler.CompilationResult` (optional).
        run: a :class:`repro.sim.machine.ExecutionResult` (optional).
        session: a :class:`repro.observe.trace.TraceSession` whose
            spans/counters to include (optional).
    """
    from repro import cache

    report: dict = {"schema": SCHEMA}
    if result is not None:
        report["compile"] = {
            "entry": result.entry_name,
            "processor": result.processor.name,
            "mode": result.options.mode,
            "cache_hits": result.cache_hits,
            "stage_times_s": dict(result.stage_times),
            "pass_stats": dict(result.pass_stats),
            "remarks": [remark.to_dict() for remark in result.remarks],
        }
    if run is not None:
        sim: dict = {
            "cycles": run.report.total,
            "by_category": dict(run.report.by_category),
            "instruction_counts": dict(run.report.instruction_counts),
        }
        if run.line_cycles is not None:
            sim["hotspots"] = [
                {"line": line, "cycles": cycles}
                for line, cycles in run.hotspots()
            ]
        report["simulation"] = sim
    if session is not None:
        report["counters"] = dict(session.counters)
        report["spans"] = [span.to_dict() for span in session.spans]
    report["cache"] = cache.stats()
    from repro import native
    report["native"] = native.stats()
    return report


def write_report(path: str, report: dict) -> None:
    """Serialize one report to ``path`` as indented JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
