"""Machine-readable metrics reports (one JSON document per run).

:func:`build_report` assembles everything the observability layer knows
about one compile (and optionally one simulation) into a single
JSON-serializable dict.  Schema ``repro-observe-report-v2``: every v1
field is preserved under its old key (``compile``, ``simulation``,
``counters``, ``spans``, ``cache``, ``native``), with two changes of
meaning and two additions:

* ``cache`` / ``native`` are now scoped to **this run** (derived from
  the session's counter deltas), so two runs in one process no longer
  bleed statistics into each other's reports;
* ``process`` carries the old process-wide ``cache.stats()`` /
  ``native.stats()`` totals;
* ``metrics`` carries the session's :class:`MetricsRegistry` snapshot
  plus per-histogram p50/p90/p99 summaries;
* ``events`` counts the session's structured events (the full stream
  goes to ``--events-jsonl``).

All report/trace writers publish atomically (``mkstemp`` +
``os.replace``, the same discipline as the disk cache), so a crashed
run never leaves a truncated JSON document behind.
"""

from __future__ import annotations

import json
import os
import tempfile

SCHEMA = "repro-observe-report-v2"

#: Cache-stats field -> session counter that accumulates it, used to
#: scope the report's ``cache`` section to one run's deltas.
_CACHE_COUNTERS = {
    "hits": "cache.hit",
    "misses": "cache.miss",
    "disk_hits": "cache.disk_hit",
    "evictions": "cache.evict",
    "disk_reads": "cache.disk_read",
    "disk_writes": "cache.disk_write",
    "disk_write_races": "cache.disk_write_race",
    "disk_read_errors": "cache.disk_read_error",
    "disk_write_errors": "cache.disk_write_error",
}

#: Same mapping for the native artifact cache.
_NATIVE_COUNTERS = {
    "builds": "native.build",
    "cache_hits": "native.cache_hit",
    "disk_hits": "native.disk_hit",
    "build_errors": "native.build_error",
    "evictions": "native.evict",
}


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via ``mkstemp`` + atomic
    ``os.replace``: a reader (or a crash) never observes a partially
    written file.  The temp file lives in the destination directory so
    the final rename cannot cross a filesystem boundary."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{os.path.basename(path)[:24]}.tmp.", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def scoped_stats(counters: "dict[str, int]",
                 mapping: "dict[str, str]") -> "dict[str, int]":
    """Stats-shaped dict rebuilt from one session's counter deltas."""
    return {field: counters.get(counter, 0)
            for field, counter in mapping.items()}


def build_report(result=None, run=None, session=None) -> dict:
    """Assemble one metrics report.

    Args:
        result: a :class:`repro.compiler.CompilationResult` (optional).
        run: a :class:`repro.sim.machine.ExecutionResult` (optional).
        session: a :class:`repro.observe.trace.TraceSession` whose
            spans/counters/metrics to include (optional).
    """
    from repro import cache, native

    report: dict = {"schema": SCHEMA}
    if result is not None:
        report["compile"] = {
            "entry": result.entry_name,
            "processor": result.processor.name,
            "mode": result.options.mode,
            "cache_hits": result.cache_hits,
            "stage_times_s": dict(result.stage_times),
            "pass_stats": dict(result.pass_stats),
            "remarks": [remark.to_dict() for remark in result.remarks],
        }
    if run is not None:
        sim: dict = {
            "cycles": run.report.total,
            "by_category": dict(run.report.by_category),
            "instruction_counts": dict(run.report.instruction_counts),
        }
        if run.line_cycles is not None:
            sim["hotspots"] = [
                {"line": line, "cycles": cycles}
                for line, cycles in run.hotspots()
            ]
        report["simulation"] = sim
    if session is not None:
        report["counters"] = dict(session.counters)
        report["spans"] = [span.to_dict() for span in session.spans]
        report["metrics"] = {
            "snapshot": session.metrics.snapshot(),
            "summary": session.metrics.summaries(),
        }
        report["events"] = len(session.events)

    # Cache/native sections are scoped to this run: counter deltas from
    # the run's own session (falling back to the compile's private
    # session), never the process-wide totals — those live under
    # "process" so concurrent or sequential runs cannot bleed counts
    # into each other's reports.
    scope = session if session is not None else \
        (result.trace if result is not None else None)
    counters = dict(scope.counters) if scope is not None else {}
    report["cache"] = scoped_stats(counters, _CACHE_COUNTERS)
    report["native"] = scoped_stats(counters, _NATIVE_COUNTERS)
    report["process"] = {"cache": cache.stats(), "native": native.stats()}
    return report


def write_report(path: str, report: dict) -> None:
    """Serialize one report to ``path`` as indented JSON, atomically."""
    atomic_write_text(
        path, json.dumps(report, indent=2, sort_keys=False) + "\n")


def write_chrome_trace(path: str, trace: dict) -> None:
    """Serialize one Chrome trace-event document atomically."""
    atomic_write_text(path, json.dumps(trace, indent=1))
