"""Prometheus text exposition of a metrics-registry snapshot.

:func:`to_prometheus` renders one :meth:`MetricsRegistry.snapshot`
dict in the Prometheus text exposition format (version 0.0.4):
counters as ``<name>_total``, gauges as-is, histograms as cumulative
``_bucket{le="..."}`` series plus ``_sum``/``_count`` — exactly the
shape a ``/metrics`` endpoint (the ROADMAP's ``repro-serve`` daemon)
will serve, and what the ``--metrics-prom FILE`` CLI switches write
today.

Metric names are sanitized to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): dots become underscores, and the
registry's ``_s`` seconds-suffix convention is rewritten to the
canonical ``_seconds`` unit suffix.
"""

from __future__ import annotations

import re

from repro.observe.telemetry import BOUNDS

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Prefix applied to every exposed metric.
PREFIX = "repro"


def metric_name(name: str) -> str:
    """Registry metric name -> valid Prometheus metric name."""
    if name.endswith("_s"):
        name = name[:-2] + "_seconds"
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return f"{PREFIX}_{name}"


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_prometheus(snapshot: dict) -> str:
    """One snapshot as Prometheus text exposition format."""
    lines: list[str] = []

    for name in sorted(snapshot.get("counters", {})):
        exposed = metric_name(name) + "_total"
        lines.append(f"# TYPE {exposed} counter")
        lines.append(f"{exposed} {snapshot['counters'][name]}")

    for name in sorted(snapshot.get("gauges", {})):
        exposed = metric_name(name)
        lines.append(f"# TYPE {exposed} gauge")
        lines.append(
            f"{exposed} {_format_value(snapshot['gauges'][name])}")

    for name in sorted(snapshot.get("histograms", {})):
        serialized = snapshot["histograms"][name]
        exposed = metric_name(name)
        lines.append(f"# TYPE {exposed} histogram")
        cumulative = 0
        for bound, count in zip(BOUNDS, serialized["counts"]):
            cumulative += count
            lines.append(f'{exposed}_bucket{{le="{bound / 1e9:.9g}"}} '
                         f"{cumulative}")
        lines.append(f'{exposed}_bucket{{le="+Inf"}} '
                     f"{serialized['count']}")
        lines.append(f"{exposed}_sum {serialized['sum_ns'] / 1e9:.9g}")
        lines.append(f"{exposed}_count {serialized['count']}")

    return "\n".join(lines) + "\n"


def write_prometheus(path: str, snapshot: dict) -> None:
    """Atomically publish one snapshot as Prometheus text."""
    from repro.observe.metrics import atomic_write_text

    atomic_write_text(path, to_prometheus(snapshot))
