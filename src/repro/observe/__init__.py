"""Compiler-wide observability: tracing, remarks, hotspots, metrics.

One coherent event model threads through the whole Figure-1 pipeline:

* :mod:`repro.observe.trace` — nested wall-clock **spans** and named
  **counters** collected by a :class:`TraceSession`, exportable as
  Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
* :mod:`repro.observe.remarks` — LLVM-style **optimization remarks**
  (``passed`` / ``missed`` / ``analysis``) with MATLAB source lines,
  emitted by the vectorizer, the instruction selectors, the loop
  passes, and the pass manager.
* :mod:`repro.observe.hotspots` — per-source-line cycle attribution
  rendered as an annotated-source table.
* :mod:`repro.observe.metrics` — one machine-readable JSON report
  (spans + remarks + counters + hotspots) per compile/simulate.

The session in effect is ambient: instrumented code calls
:func:`current` and emits into whatever session the caller installed
with :func:`use`.  When no session is installed, a shared *disabled*
session swallows everything — every emit hook is a single attribute
check, so observability is zero-cost when off.
"""

from repro.observe.remarks import Remark
from repro.observe.trace import Span, TraceSession, current, use

__all__ = [
    "Remark",
    "Span",
    "TraceSession",
    "current",
    "use",
]
