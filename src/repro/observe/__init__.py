"""Compiler-wide observability: tracing, remarks, hotspots, metrics.

One coherent event model threads through the whole Figure-1 pipeline:

* :mod:`repro.observe.trace` — nested wall-clock **spans** and named
  **counters** collected by a :class:`TraceSession`, exportable as
  Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
* :mod:`repro.observe.remarks` — LLVM-style **optimization remarks**
  (``passed`` / ``missed`` / ``analysis``) with MATLAB source lines,
  emitted by the vectorizer, the instruction selectors, the loop
  passes, and the pass manager.
* :mod:`repro.observe.hotspots` — per-source-line cycle attribution
  rendered as an annotated-source table.
* :mod:`repro.observe.telemetry` — the process-wide
  :class:`MetricsRegistry`: counters, gauges, and fixed-bucket latency
  histograms with an exactly-associative ``merge``, so worker-process
  snapshots aggregate losslessly in the parent.
* :mod:`repro.observe.expo` — Prometheus text exposition of a registry
  snapshot (the CLI ``--metrics-prom`` switches).
* :mod:`repro.observe.events` — structured JSONL event log whose rows
  carry span ids correlating with the Chrome trace
  (``--events-jsonl``).
* :mod:`repro.observe.metrics` — one machine-readable JSON report
  (spans + remarks + counters + metrics + hotspots) per
  compile/simulate, schema ``repro-observe-report-v2``.

The session in effect is ambient: instrumented code calls
:func:`current` and emits into whatever session the caller installed
with :func:`use`.  When no session is installed, a shared *disabled*
session swallows everything — every emit hook is a single attribute
check, so observability is zero-cost when off.
"""

from repro.observe.remarks import Remark
from repro.observe.telemetry import MetricsRegistry
from repro.observe.trace import Span, TraceSession, current, use

__all__ = [
    "MetricsRegistry",
    "Remark",
    "Span",
    "TraceSession",
    "current",
    "use",
]
