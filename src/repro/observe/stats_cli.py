"""``repro-stats`` — aggregate, diff, and gate metric report files.

Works over the JSON documents the other CLIs emit: ``repro-mc
--metrics-json`` observe reports, ``repro-batch --metrics-json`` batch
reports, ``repro-fuzz --metrics-json`` summaries, and the committed
benchmark trajectories under ``benchmarks/results/BENCH_*.json``.

Examples::

    # Human-readable digest of any report file
    repro-stats show run.json

    # Field-by-field comparison of two runs
    repro-stats diff benchmarks/results/BENCH_e1.json fresh.json

    # Perf-regression gate (CI): fail when any *_wall_s field of the
    # fresh run exceeds the committed trajectory by more than the
    # noise tolerance
    repro-stats check fresh.json --against benchmarks/results/BENCH_e1.json \\
        --tolerance 1.0

The ``check`` gate compares every ``*_wall_s`` field, per kernel and
in the aggregate block.  A fresh value passes when::

    fresh <= base * (1 + tolerance) + abs_floor

``tolerance`` is relative headroom for machine noise (CI runners are
slow and noisy — be generous); ``abs_floor`` keeps sub-millisecond
measurements from failing on scheduler jitter alone.  Improvements
never fail, and a kernel present in the baseline but missing from the
fresh run is a failure (silent coverage loss must not read as a pass).
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback

from repro.errors import EXIT_FAILURE, EXIT_INTERNAL, EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stats",
        description="Aggregate, diff, and gate repro metric report "
                    "files (observe/batch/fuzz reports and benchmark "
                    "trajectories)")
    sub = parser.add_subparsers(dest="command", required=True)

    show_p = sub.add_parser(
        "show", help="pretty-print one or more report files")
    show_p.add_argument("files", nargs="+", metavar="FILE")

    diff_p = sub.add_parser(
        "diff", help="field-by-field comparison of two report files")
    diff_p.add_argument("base", metavar="BASE")
    diff_p.add_argument("fresh", metavar="FRESH")

    check_p = sub.add_parser(
        "check", help="perf-regression gate: fail when FRESH is slower "
                      "than BASE beyond the noise tolerance")
    check_p.add_argument("fresh", metavar="FRESH",
                         help="freshly measured report")
    check_p.add_argument("--against", required=True, metavar="BASE",
                         help="committed baseline trajectory to gate "
                              "against")
    check_p.add_argument("--tolerance", type=float, default=0.5,
                         help="relative slowdown allowed per field "
                              "(0.5 = 50%% headroom; default 0.5)")
    check_p.add_argument("--abs-floor", type=float, default=0.005,
                         metavar="SECONDS",
                         help="absolute slack added on top of the "
                              "relative tolerance, so sub-millisecond "
                              "fields don't fail on scheduler jitter "
                              "(default 0.005)")
    return parser


def _load(path: str) -> dict:
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: expected a JSON object report")
    return document


# -- document shapes ----------------------------------------------------

def _kernel_rows(document: dict) -> "dict[str, dict]":
    """``kernel name -> numeric fields`` for benchmark trajectories."""
    rows = {}
    for row in document.get("kernels", []):
        name = row.get("kernel")
        if name:
            rows[name] = {k: v for k, v in row.items()
                          if isinstance(v, (int, float))}
    return rows


def _aggregate_row(document: dict) -> dict:
    block = document.get("aggregate", {})
    return {k: v for k, v in block.items()
            if isinstance(v, (int, float))}


def _histogram_summaries(document: dict) -> "dict[str, dict]":
    """The per-histogram digests of any report carrying a metrics
    block (observe v2 / batch v2 / fuzz summaries)."""
    metrics = document.get("metrics", {})
    if isinstance(metrics, dict):
        summary = metrics.get("summary")
        if isinstance(summary, dict):
            return summary
    session = document.get("session", {})
    if isinstance(session, dict):
        metrics = session.get("metrics", {})
        if isinstance(metrics, dict):
            summary = metrics.get("summary")
            if isinstance(summary, dict):
                return summary
    return {}


def _counters(document: dict) -> "dict[str, int]":
    for scope in (document, document.get("session", {})):
        counters = scope.get("counters") if isinstance(scope, dict) \
            else None
        if isinstance(counters, dict) and counters:
            return counters
    return {}


# -- show ---------------------------------------------------------------

def _show(path: str) -> None:
    document = _load(path)
    label = document.get("schema") or document.get("experiment") \
        or "report"
    print(f"{path} ({label})")
    kernels = _kernel_rows(document)
    if kernels:
        fields = sorted({f for row in kernels.values() for f in row})
        header = "  {:<10}".format("kernel") + "".join(
            f" {f:>24}" for f in fields)
        print(header)
        for name in sorted(kernels):
            row = kernels[name]
            print("  {:<10}".format(name) + "".join(
                f" {row.get(f, ''):>24}" for f in fields))
        aggregate = _aggregate_row(document)
        if aggregate:
            print("  aggregate: " + ", ".join(
                f"{k}={v}" for k, v in sorted(aggregate.items())))
    counters = _counters(document)
    if counters:
        print("  counters:")
        for name in sorted(counters):
            print(f"    {name:<32} {counters[name]}")
    summaries = _histogram_summaries(document)
    if summaries:
        print("  latency histograms:")
        for name in sorted(summaries):
            digest = summaries[name]
            if not digest.get("count"):
                continue
            print(f"    {name:<28} n={digest['count']:<6} "
                  f"mean={digest['mean_s'] * 1e3:9.3f} ms  "
                  f"p50={digest['p50_s'] * 1e3:9.3f} ms  "
                  f"p99={digest['p99_s'] * 1e3:9.3f} ms")
    if not (kernels or counters or summaries):
        print("  (no kernels, counters, or histograms recognized)")


# -- diff ---------------------------------------------------------------

def _diff_rows(label: str, base: dict, fresh: dict) -> None:
    names = sorted(set(base) | set(fresh))
    for name in names:
        old, new = base.get(name), fresh.get(name)
        if old is None:
            print(f"  {label}.{name}: (new) {new}")
        elif new is None:
            print(f"  {label}.{name}: {old} (dropped)")
        elif old == new:
            continue
        else:
            change = f" ({(new - old) / old:+.1%})" if old else ""
            print(f"  {label}.{name}: {old} -> {new}{change}")


def _diff(base_path: str, fresh_path: str) -> int:
    base, fresh = _load(base_path), _load(fresh_path)
    print(f"diff {base_path} -> {fresh_path}")
    base_kernels, fresh_kernels = _kernel_rows(base), _kernel_rows(fresh)
    for name in sorted(set(base_kernels) | set(fresh_kernels)):
        _diff_rows(name, base_kernels.get(name, {}),
                   fresh_kernels.get(name, {}))
    _diff_rows("aggregate", _aggregate_row(base), _aggregate_row(fresh))
    _diff_rows("counters", _counters(base), _counters(fresh))
    return EXIT_OK


# -- check --------------------------------------------------------------

def _wall_fields(row: dict) -> "dict[str, float]":
    return {name: value for name, value in row.items()
            if name.endswith("_wall_s")}


def _check_row(label: str, base: dict, fresh: "dict | None",
               tolerance: float, abs_floor: float,
               failures: "list[str]") -> None:
    walls = _wall_fields(base)
    if fresh is None:
        if walls:
            failures.append(f"{label}: present in baseline but missing "
                            "from the fresh run")
        return
    for name, baseline in walls.items():
        measured = fresh.get(name)
        if measured is None:
            failures.append(f"{label}.{name}: field missing from the "
                            "fresh run")
            continue
        limit = baseline * (1.0 + tolerance) + abs_floor
        if measured > limit:
            failures.append(
                f"{label}.{name}: {measured:.6f}s exceeds "
                f"{baseline:.6f}s baseline + {tolerance:.0%} tolerance "
                f"(limit {limit:.6f}s)")


def _check(options) -> int:
    base = _load(options.against)
    fresh = _load(options.fresh)
    failures: list[str] = []
    base_kernels = _kernel_rows(base)
    fresh_kernels = _kernel_rows(fresh)
    checked = 0
    for name, row in sorted(base_kernels.items()):
        _check_row(name, row, fresh_kernels.get(name),
                   options.tolerance, options.abs_floor, failures)
        checked += len(_wall_fields(row))
    _check_row("aggregate", _aggregate_row(base),
               _aggregate_row(fresh), options.tolerance,
               options.abs_floor, failures)
    checked += len(_wall_fields(_aggregate_row(base)))
    if checked == 0:
        print(f"repro-stats: check: no *_wall_s fields found in "
              f"{options.against}; nothing was gated", file=sys.stderr)
        return EXIT_FAILURE
    if failures:
        print(f"FAIL {options.fresh} vs {options.against} "
              f"({len(failures)} regression(s) over {checked} fields):")
        for line in failures:
            print(f"  {line}")
        return EXIT_FAILURE
    print(f"OK {options.fresh} vs {options.against}: {checked} wall "
          f"fields within {options.tolerance:.0%} + "
          f"{options.abs_floor}s of baseline")
    return EXIT_OK


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    try:
        if options.command == "show":
            for path in options.files:
                _show(path)
            return EXIT_OK
        if options.command == "diff":
            return _diff(options.base, options.fresh)
        if options.command == "check":
            return _check(options)
        parser.error(f"unknown command {options.command!r}")
    except SystemExit:
        raise
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"repro-stats: error: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    except Exception:
        print("repro-stats: internal error:", file=sys.stderr)
        traceback.print_exc()
        return EXIT_INTERNAL
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
