"""Golden MATLAB interpreter (numpy-backed reference model)."""
