"""MATLAB value helpers for the golden interpreter.

Every numeric value is a 2-D numpy array (scalars are 1x1), mirroring
MATLAB; character data is carried as Python ``str``.  Helpers implement
MATLAB's coercion and display conventions needed by the interpreter.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InterpreterError

MValue = "np.ndarray | str"


def to_value(obj) -> np.ndarray | str:
    """Coerce a Python/numpy object to an interpreter value."""
    if isinstance(obj, str):
        return obj
    if isinstance(obj, bool):
        return np.atleast_2d(np.asarray(obj, dtype=np.bool_))
    array = np.atleast_2d(np.asarray(obj))
    if array.dtype.kind in "ui":
        array = array.astype(np.float64)
    return array


def is_scalar(value) -> bool:
    return isinstance(value, np.ndarray) and value.size == 1


def scalar_of(value) -> float | complex:
    if isinstance(value, str):
        raise InterpreterError("expected a numeric scalar, got a string")
    if value.size != 1:
        raise InterpreterError(
            f"expected a scalar, got a {value.shape[0]}x{value.shape[1]} "
            "array")
    item = value.reshape(-1)[0]
    if np.iscomplexobj(value):
        return complex(item)
    return float(item)


def truthy(value) -> bool:
    """MATLAB if/while semantics: true when non-empty and all non-zero."""
    if isinstance(value, str):
        return len(value) > 0
    if value.size == 0:
        return False
    return bool(np.all(value != 0))


def index_vector(value, extent: int) -> np.ndarray:
    """Convert a subscript value to 0-based integer indices."""
    if isinstance(value, str):
        raise InterpreterError("strings cannot be used as subscripts")
    if value.dtype == np.bool_:
        flat = value.reshape(-1, order="F")
        if flat.size > extent:
            raise InterpreterError("logical index is longer than the "
                                   "indexed dimension")
        return np.nonzero(flat)[0]
    flat = value.reshape(-1, order="F")
    if np.iscomplexobj(flat):
        raise InterpreterError("subscripts must be real")
    indices = flat.astype(np.int64)
    if not np.allclose(flat.real, indices):
        raise InterpreterError("subscripts must be integers")
    if indices.size and indices.min() < 1:
        raise InterpreterError("subscripts must be >= 1")
    return indices - 1


def display(name: str, value) -> str:
    """Rough MATLAB-style display used for unsuppressed statements."""
    if isinstance(value, str):
        return f"{name} =\n    '{value}'\n"
    with np.printoptions(precision=4, suppress=True):
        return f"{name} =\n{value}\n"
