"""Golden MATLAB interpreter.

Executes the frontend AST directly with numpy semantics — completely
independent of the compiler's inference/IR/codegen pipeline — and serves
as the reference model for differential testing: for every supported
program, compiled code (simulated or gcc-executed) must agree with this
interpreter.

Supported beyond the compiler subset (the golden model is deliberately
more permissive): logical indexing, array growth on indexed assignment,
anonymous functions, matrix iteration in ``for``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

import numpy as np

from repro.errors import InterpreterError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse
from repro.mlab import builtins_rt
from repro.mlab.values import (
    display,
    index_vector,
    is_scalar,
    scalar_of,
    to_value,
    truthy,
)
from repro.semantics.library import LIBRARY_SOURCES


class _BreakLoop(Exception):
    pass


class _ContinueLoop(Exception):
    pass


class _ReturnFunction(Exception):
    pass


class _MatlabRuntimeError(InterpreterError):
    """Raised by the error() builtin."""


@dataclass
class _AnonValue:
    """A first-class anonymous function value."""

    params: list[str]
    body: ast.Expr
    captured: dict[str, object] = field(default_factory=dict)


@dataclass
class _HandleValue:
    name: str


class MatlabInterpreter:
    """Interprets a parsed program (or raw source text)."""

    #: User-call nesting bound.  Deep enough for any legitimate helper
    #: chain in the supported subset, shallow enough that runaway
    #: recursion surfaces as a sourced diagnostic instead of a Python
    #: RecursionError.
    MAX_CALL_DEPTH = 64

    def __init__(self, program: "ast.Program | str"):
        self._source_text = program if isinstance(program, str) else None
        if isinstance(program, str):
            program = parse(program)
        self.program = program
        self.functions: dict[str, ast.Function] = {
            f.name: f for f in program.functions}
        self.stdout = io.StringIO()
        self._call_depth = 0
        # id -> (original kept alive, rewritten clone)
        self._end_cache: dict[int, tuple[ast.Expr, ast.Expr]] = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def call(self, name: str, args: list[object],
             nargout: int = 1) -> list[object]:
        """Call a user (or library) function with MATLAB values."""
        func = self.functions.get(name)
        if func is None:
            library_src = LIBRARY_SOURCES.get(name)
            if library_src is None:
                raise InterpreterError(f"unknown function {name!r}")
            func = parse(library_src).functions[0]
        return self._call_function(func, [to_value(a) for a in args],
                                   nargout)

    def run_script(self) -> dict[str, object]:
        """Execute a script program; returns the final workspace."""
        env: dict[str, object] = {}
        try:
            self._exec_body(self.program.script, env)
        except _ReturnFunction:
            pass
        return env

    # ------------------------------------------------------------------
    # Function machinery
    # ------------------------------------------------------------------

    def _call_function(self, func: ast.Function, args: list[object],
                       nargout: int) -> list[object]:
        if len(args) > len(func.params):
            raise InterpreterError(
                f"{func.name}: too many arguments ({len(args)} for "
                f"{len(func.params)})")
        if self._call_depth >= self.MAX_CALL_DEPTH:
            where = ""
            if self._source_text is not None:
                line = self._source_text.count("\n", 0, func.span.start) + 1
                where = f"{func.span.filename}:{line}: "
            raise InterpreterError(
                f"{where}call depth limit ({self.MAX_CALL_DEPTH}) exceeded "
                f"in {func.name!r} — recursive user functions are not "
                "supported")
        env: dict[str, object] = {}
        for param, value in zip(func.params, args):
            if param != "~":
                env[param] = value
        self._call_depth += 1
        try:
            self._exec_body(func.body, env)
        except _ReturnFunction:
            pass
        finally:
            self._call_depth -= 1
        results: list[object] = []
        for out in func.returns[:max(nargout, 1)]:
            if out not in env:
                raise InterpreterError(
                    f"{func.name}: output {out!r} never assigned")
            results.append(env[out])
        return results

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _exec_body(self, body: list[ast.Stmt], env: dict) -> None:
        for stmt in body:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.Stmt, env: dict) -> None:
        if isinstance(stmt, ast.ExprStmt):
            value = self._eval(stmt.expr, env)
            if not stmt.suppressed and value is not None:
                self.stdout.write(display("ans", value))
            if value is not None:
                env["ans"] = value
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            self._assign(stmt.target, value, env)
            if not stmt.suppressed and isinstance(stmt.target,
                                                  ast.Identifier):
                self.stdout.write(display(stmt.target.name,
                                          env[stmt.target.name]))
        elif isinstance(stmt, ast.MultiAssign):
            values = self._eval_multi(stmt.value, env, len(stmt.targets))
            if len(values) < len(stmt.targets):
                raise InterpreterError(
                    "not enough output values for multiple assignment")
            for target, value in zip(stmt.targets, values):
                if isinstance(target, ast.Identifier) and target.name == "~":
                    continue
                self._assign(target, value, env)
        elif isinstance(stmt, ast.If):
            for cond, body in stmt.branches:
                if truthy(self._eval(cond, env)):
                    self._exec_body(body, env)
                    return
            self._exec_body(stmt.else_body, env)
        elif isinstance(stmt, ast.While):
            while truthy(self._eval(stmt.condition, env)):
                try:
                    self._exec_body(stmt.body, env)
                except _BreakLoop:
                    break
                except _ContinueLoop:
                    continue
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, env)
        elif isinstance(stmt, ast.Switch):
            self._exec_switch(stmt, env)
        elif isinstance(stmt, ast.Break):
            raise _BreakLoop()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueLoop()
        elif isinstance(stmt, ast.Return):
            raise _ReturnFunction()
        else:
            raise InterpreterError(
                f"cannot interpret {type(stmt).__name__}")

    def _exec_for(self, stmt: ast.For, env: dict) -> None:
        iterable = self._eval(stmt.iterable, env)
        if isinstance(iterable, str):
            raise InterpreterError("cannot iterate over a string")
        for j in range(iterable.shape[1]):
            # MATLAB binds each column *by value*: mutating the loop
            # variable must never write through into the iterable.
            env[stmt.var] = iterable[:, j:j + 1].copy()
            try:
                self._exec_body(stmt.body, env)
            except _BreakLoop:
                break
            except _ContinueLoop:
                continue

    def _exec_switch(self, stmt: ast.Switch, env: dict) -> None:
        subject = self._eval(stmt.subject, env)
        for match, body in stmt.cases:
            value = self._eval(match, env)
            if self._switch_matches(subject, value):
                self._exec_body(body, env)
                return
        self._exec_body(stmt.otherwise, env)

    def _switch_matches(self, subject, value) -> bool:
        if isinstance(subject, str) or isinstance(value, str):
            return isinstance(subject, str) and isinstance(value, str) and \
                subject == value
        if subject.size != 1 or value.size != 1:
            return False
        return scalar_of(subject) == scalar_of(value)

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------

    def _assign(self, target: ast.Expr, value, env: dict) -> None:
        if isinstance(target, ast.Identifier):
            env[target.name] = value
            return
        if not isinstance(target, ast.CallIndex) or not isinstance(
                target.target, ast.Identifier):
            raise InterpreterError("invalid assignment target")
        name = target.target.name
        current = env.get(name)
        if current is None:
            current = np.zeros((0, 0))
        if isinstance(current, str):
            raise InterpreterError("cannot index-assign into a string")
        env[name] = self._indexed_store(current, target, value, env)

    def _indexed_store(self, array: np.ndarray, target: ast.CallIndex,
                       value, env: dict) -> np.ndarray:
        value = to_value(value)
        if np.iscomplexobj(value) and not np.iscomplexobj(array):
            array = array.astype(np.complex128)
        else:
            # MATLAB value semantics: `q = a; q(i,j) = x` must never write
            # through into `a`.  Plain assignment aliases, so copy before
            # the in-place store below.
            array = array.copy()
        args = target.args
        if len(args) == 1:
            return self._linear_store(array, args[0], value, env)
        if len(args) != 2:
            raise InterpreterError("at most two subscripts are supported")
        rows = self._subscript(args[0], array, env, dim=0)
        cols = self._subscript(args[1], array, env, dim=1)
        need_rows = int(rows.max()) + 1 if rows.size else 0
        need_cols = int(cols.max()) + 1 if cols.size else 0
        if need_rows > array.shape[0] or need_cols > array.shape[1]:
            grown = np.zeros((max(need_rows, array.shape[0]),
                              max(need_cols, array.shape[1])),
                             dtype=array.dtype)
            grown[:array.shape[0], :array.shape[1]] = array
            array = grown
        if value.size == 1:
            array[np.ix_(rows, cols)] = value.reshape(-1)[0]
        else:
            array[np.ix_(rows, cols)] = value.reshape(
                (rows.size, cols.size), order="F")
        return array

    def _linear_store(self, array: np.ndarray, subscript: ast.Expr,
                      value, env: dict) -> np.ndarray:
        if isinstance(subscript, ast.ColonAll):
            flat = array.reshape(-1, order="F").copy()
            flat[:] = value.reshape(-1, order="F")
            return flat.reshape(array.shape, order="F")
        indices = index_vector(
            self._eval_index_arg(subscript, array, env, dim=None), 1 << 60)
        if array.size == 0 and indices.size:
            # Keep the dtype chosen by _indexed_store (complex promotion
            # for a complex stored value) when growing from empty.
            array = np.zeros((1, int(indices.max()) + 1), dtype=array.dtype)
        if indices.size and indices.max() >= array.size:
            if array.shape[0] == 1:
                grown = np.zeros((1, int(indices.max()) + 1),
                                 dtype=array.dtype)
                grown[0, :array.shape[1]] = array[0]
                array = grown
            elif array.shape[1] == 1:
                grown = np.zeros((int(indices.max()) + 1, 1),
                                 dtype=array.dtype)
                grown[:array.shape[0], 0] = array[:, 0]
                array = grown
            else:
                raise InterpreterError(
                    "linear indexed assignment cannot grow a matrix")
        flat = array.reshape(-1, order="F").copy()
        if value.size == 1:
            flat[indices] = value.reshape(-1)[0]
        else:
            flat[indices] = value.reshape(-1, order="F")
        return flat.reshape(array.shape, order="F")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _eval(self, expr: ast.Expr, env: dict):
        result = self._eval_multi_expr(expr, env, 1)
        return result[0] if result else None

    def _eval_multi(self, expr: ast.Expr, env: dict,
                    nargout: int) -> list[object]:
        return self._eval_multi_expr(expr, env, nargout)

    def _eval_multi_expr(self, expr: ast.Expr, env: dict,
                         nargout: int) -> list[object]:
        if isinstance(expr, ast.NumberLit):
            return [to_value(expr.value)]
        if isinstance(expr, ast.ImagLit):
            return [to_value(complex(0.0, expr.value))]
        if isinstance(expr, ast.StringLit):
            return [expr.value]
        if isinstance(expr, ast.Identifier):
            return [self._eval_identifier(expr, env)]
        if isinstance(expr, ast.UnaryOp):
            return [self._eval_unary(expr, env)]
        if isinstance(expr, ast.BinaryOp):
            return [self._eval_binary(expr, env)]
        if isinstance(expr, ast.Transpose):
            operand = self._eval(expr.operand, env)
            if isinstance(operand, str):
                raise InterpreterError("cannot transpose a string")
            if expr.conjugate:
                return [operand.conj().T.copy()]
            return [operand.T.copy()]
        if isinstance(expr, ast.Range):
            return [self._eval_range(expr, env)]
        if isinstance(expr, ast.MatrixLit):
            return [self._eval_matrix(expr, env)]
        if isinstance(expr, ast.CallIndex):
            return self._eval_call_index(expr, env, nargout)
        if isinstance(expr, ast.AnonFunc):
            captured = {k: v for k, v in env.items()}
            return [_AnonValue(expr.params, expr.body, captured)]
        if isinstance(expr, ast.FuncHandle):
            return [_HandleValue(expr.name)]
        if isinstance(expr, ast.EndMarker):
            raise InterpreterError("'end' outside of an index expression")
        if isinstance(expr, ast.ColonAll):
            raise InterpreterError("':' outside of an index expression")
        raise InterpreterError(f"cannot evaluate {type(expr).__name__}")

    def _eval_identifier(self, expr: ast.Identifier, env: dict):
        if expr.name in env:
            return env[expr.name]
        constant = builtins_rt.constant(expr.name)
        if constant is not None:
            return constant
        if expr.name in self.functions or \
                expr.name in LIBRARY_SOURCES or \
                builtins_rt.is_builtin(expr.name):
            values = self._dispatch_call(expr.name, [], env, 1,
                                         span_node=expr)
            return values[0] if values else None
        raise InterpreterError(
            f"undefined variable or function {expr.name!r}")

    def _eval_unary(self, expr: ast.UnaryOp, env: dict):
        operand = self._eval(expr.operand, env)
        if isinstance(operand, str):
            operand = builtins_rt.char_to_double(operand)
        if expr.op == "-":
            return -operand
        if expr.op == "+":
            return +operand
        return (operand == 0)

    def _eval_binary(self, expr: ast.BinaryOp, env: dict):
        op = expr.op
        if op in ("&&", "||"):
            left = truthy(self._eval(expr.left, env))
            if op == "&&" and not left:
                return to_value(False)
            if op == "||" and left:
                return to_value(True)
            return to_value(truthy(self._eval(expr.right, env)))
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if isinstance(left, str):
            left = builtins_rt.char_to_double(left)
        if isinstance(right, str):
            right = builtins_rt.char_to_double(right)
        return builtins_rt.binary_op(op, left, right)

    def _eval_range(self, expr: ast.Range, env: dict) -> np.ndarray:
        start = scalar_of(self._eval(expr.start, env))
        stop = scalar_of(self._eval(expr.stop, env))
        step = scalar_of(self._eval(expr.step, env)) \
            if expr.step is not None else 1.0
        return builtins_rt.colon(start, step, stop)

    def _eval_matrix(self, expr: ast.MatrixLit, env: dict) -> np.ndarray:
        if not expr.rows:
            return np.zeros((0, 0))
        row_arrays = []
        for row in expr.rows:
            pieces = [to_value(self._eval(e, env)) for e in row]
            row_arrays.append(np.hstack(pieces) if len(pieces) > 1
                              else pieces[0])
        return np.vstack(row_arrays) if len(row_arrays) > 1 else row_arrays[0]

    # ------------------------------------------------------------------
    # Calls and indexing
    # ------------------------------------------------------------------

    def _eval_call_index(self, expr: ast.CallIndex, env: dict,
                         nargout: int) -> list[object]:
        if not isinstance(expr.target, ast.Identifier):
            base = self._eval(expr.target, env)
            if isinstance(base, (_AnonValue, _HandleValue)):
                args = [self._eval(a, env) for a in expr.args]
                return self._call_callable(base, args, env, nargout)
            raise InterpreterError(
                "indexing the result of an expression is not supported")
        name = expr.target.name
        if name in env:
            value = env[name]
            if isinstance(value, (_AnonValue, _HandleValue)):
                args = [self._eval(a, env) for a in expr.args]
                return self._call_callable(value, args, env, nargout)
            if isinstance(value, str):
                return [self._index_string(value, expr, env)]
            return [self._index_array(value, expr, env)]
        args = [self._eval(a, env) for a in expr.args
                if not isinstance(a, ast.ColonAll)]
        if any(isinstance(a, ast.ColonAll) for a in expr.args):
            raise InterpreterError(f"':' argument in a call to {name!r}")
        return self._dispatch_call(name, args, env, nargout, span_node=expr)

    def _call_callable(self, value, args: list[object], env: dict,
                       nargout: int) -> list[object]:
        if isinstance(value, _HandleValue):
            return self._dispatch_call(value.name, args, env, nargout,
                                       span_node=None)
        inner_env = dict(value.captured)
        if len(args) != len(value.params):
            raise InterpreterError(
                f"anonymous function expects {len(value.params)} "
                f"argument(s), got {len(args)}")
        for param, arg in zip(value.params, args):
            inner_env[param] = to_value(arg)
        return [self._eval(value.body, inner_env)]

    def _dispatch_call(self, name: str, args: list[object], env: dict,
                       nargout: int, span_node) -> list[object]:
        func = self.functions.get(name)
        if func is not None:
            return self._call_function(func, [to_value(a) for a in args],
                                       nargout)
        if builtins_rt.is_builtin(name):
            return builtins_rt.call(name, args, nargout, self.stdout)
        if name in LIBRARY_SOURCES:
            library_func = parse(LIBRARY_SOURCES[name]).functions[0]
            return self._call_function(
                library_func, [to_value(a) for a in args], nargout)
        raise InterpreterError(f"undefined function {name!r}")

    def _index_string(self, value: str, expr: ast.CallIndex,
                      env: dict) -> str:
        if len(expr.args) != 1:
            raise InterpreterError("strings support linear indexing only")
        as_array = builtins_rt.char_to_double(value)
        indices = index_vector(
            self._eval_index_arg(expr.args[0], as_array, env, dim=None),
            len(value))
        return "".join(value[i] for i in indices)

    def _index_array(self, array: np.ndarray, expr: ast.CallIndex,
                     env: dict) -> np.ndarray:
        args = expr.args
        if len(args) == 0:
            return array
        if len(args) == 1:
            arg = args[0]
            if isinstance(arg, ast.ColonAll):
                return array.reshape(-1, 1, order="F").copy()
            subscript = self._eval_index_arg(arg, array, env, dim=None)
            indices = index_vector(subscript, array.size)
            if indices.size and indices.max() >= array.size:
                raise InterpreterError("index out of bounds")
            flat = array.reshape(-1, order="F")
            taken = flat[indices]
            if isinstance(subscript, np.ndarray) and \
                    subscript.dtype != np.bool_ and not is_scalar(subscript):
                return taken.reshape(subscript.shape, order="F")
            if subscript.dtype == np.bool_:
                return taken.reshape(-1, 1) if array.shape[1] == 1 else \
                    taken.reshape(1, -1)
            return np.atleast_2d(taken)
        if len(args) != 2:
            raise InterpreterError("at most two subscripts are supported")
        rows = self._subscript(args[0], array, env, dim=0)
        cols = self._subscript(args[1], array, env, dim=1)
        if rows.size and rows.max() >= array.shape[0]:
            raise InterpreterError("row index out of bounds")
        if cols.size and cols.max() >= array.shape[1]:
            raise InterpreterError("column index out of bounds")
        return array[np.ix_(rows, cols)].copy()

    def _subscript(self, arg: ast.Expr, array: np.ndarray, env: dict,
                   dim: int) -> np.ndarray:
        if isinstance(arg, ast.ColonAll):
            return np.arange(array.shape[dim])
        value = self._eval_index_arg(arg, array, env, dim)
        return index_vector(value, array.shape[dim])

    def _eval_index_arg(self, arg: ast.Expr, array: np.ndarray, env: dict,
                        dim: int | None):
        """Evaluate a subscript with ``end`` bound to the right extent."""
        extent = array.size if dim is None else array.shape[dim]
        return self._eval_with_end(arg, env, extent)

    def _eval_with_end(self, arg: ast.Expr, env: dict, extent: int):
        marker = "__end__"
        saved = env.get(marker)
        env[marker] = to_value(float(extent))
        try:
            return self._eval(self._replace_end(arg), env)
        finally:
            if saved is None:
                env.pop(marker, None)
            else:
                env[marker] = saved

    def _replace_end(self, arg: ast.Expr) -> ast.Expr:
        """Rewrite EndMarker nodes to reads of the __end__ pseudo-var."""
        cached = self._end_cache.get(id(arg))
        if cached is not None:
            return cached[1]
        import copy

        def rewrite(node: ast.Expr) -> ast.Expr:
            if isinstance(node, ast.EndMarker):
                return ast.Identifier(span=node.span, name="__end__")
            for name in list(getattr(node, "__dataclass_fields__", {})):
                value = getattr(node, name)
                if isinstance(value, ast.Expr):
                    setattr(node, name, rewrite(value))
                elif isinstance(value, list):
                    setattr(node, name,
                            [rewrite(v) if isinstance(v, ast.Expr) else v
                             for v in value])
            return node

        clone = copy.deepcopy(arg)
        result = rewrite(clone)
        self._end_cache[id(arg)] = (arg, result)
        return result
