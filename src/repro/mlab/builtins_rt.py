"""Numpy-backed MATLAB builtins for the golden interpreter.

These implement MATLAB semantics (column-major linearization, scalar
expansion, default reduction dimensions, round-half-away-from-zero, ...)
directly over numpy — independent of the compiler's IR lowering, so a
disagreement between interpreter and simulator genuinely localizes a
compiler bug.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InterpreterError
from repro.mlab.values import scalar_of, to_value
from repro.numeric import range_count

_CONSTANTS = {
    "pi": math.pi,
    "eps": np.finfo(np.float64).eps,
    "Inf": math.inf,
    "inf": math.inf,
    "NaN": math.nan,
    "nan": math.nan,
    "i": 1j,
    "j": 1j,
    "true": True,
    "false": False,
}


def constant(name: str):
    value = _CONSTANTS.get(name)
    if value is None:
        return None
    return to_value(value)


def char_to_double(text: str) -> np.ndarray:
    return np.array([[float(ord(c)) for c in text]])


def colon(start: float, step: float, stop: float) -> np.ndarray:
    """MATLAB colon operator with its inclusive-stop fencepost rule.

    The fencepost tolerance is the magnitude-relative rule shared with
    the compile-time shape inferencer (:mod:`repro.numeric`), so the
    interpreter and compiled code always agree on range lengths.
    """
    try:
        count = range_count(start, step, stop)
    except OverflowError:
        raise InterpreterError(
            "range with infinite bounds has no element count") from None
    if count <= 0:
        return np.zeros((1, 0))
    return (start + step * np.arange(count, dtype=np.float64)).reshape(1, -1)


# ----------------------------------------------------------------------
# Binary operators
# ----------------------------------------------------------------------


def _conform(op: str, a: np.ndarray, b: np.ndarray) -> None:
    if a.size == 1 or b.size == 1:
        return
    if a.shape != b.shape:
        raise InterpreterError(
            f"operator {op!r}: nonconformant operands "
            f"{a.shape[0]}x{a.shape[1]} and {b.shape[0]}x{b.shape[1]}")


def binary_op(op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if op in ("+", "-", ".*", "./", ".\\", ".^", "==", "~=", "<", "<=",
              ">", ">=", "&", "|"):
        _conform(op, a, b)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == ".*":
        return a * b
    if op == "./":
        return _divide(a, b)
    if op == ".\\":
        return _divide(b, a)
    if op == ".^":
        return _power(a, b)
    if op == "*":
        if a.size == 1 or b.size == 1:
            return a * b
        if a.shape[1] != b.shape[0]:
            raise InterpreterError(
                f"matrix product: inner dimensions {a.shape[1]} and "
                f"{b.shape[0]} disagree")
        return a @ b
    if op == "/":
        if b.size == 1:
            return _divide(a, b)
        raise InterpreterError("matrix right-division is not supported")
    if op == "\\":
        if a.size == 1:
            return _divide(b, a)
        raise InterpreterError("matrix left-division is not supported")
    if op == "^":
        if a.size == 1 and b.size == 1:
            return _power(a, b)
        raise InterpreterError("matrix power is not supported")
    if op == "==":
        return a == b
    if op == "~=":
        return a != b
    if op == "<":
        return _real_compare(np.less, a, b)
    if op == "<=":
        return _real_compare(np.less_equal, a, b)
    if op == ">":
        return _real_compare(np.greater, a, b)
    if op == ">=":
        return _real_compare(np.greater_equal, a, b)
    if op == "&":
        return (a != 0) & (b != 0)
    if op == "|":
        return (a != 0) | (b != 0)
    raise InterpreterError(f"unknown operator {op!r}")


def _real_compare(fn, a, b):
    return fn(np.real(a), np.real(b))


def _divide(a, b):
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.true_divide(a, b)


def _power(a, b):
    # Negative base with fractional exponent goes complex in MATLAB.
    # Overflow-to-HUGE_VAL is intentional (matches c_pow in the C
    # runtime and both simulator backends), so "over" is suppressed
    # alongside the usual divide/invalid edge cases.
    if not np.iscomplexobj(a) and not np.iscomplexobj(b):
        base = np.asarray(a, dtype=np.float64)
        expo = np.asarray(b, dtype=np.float64)
        needs_complex = np.any((base < 0) & (expo != np.round(expo)))
        if needs_complex:
            with np.errstate(over="ignore", invalid="ignore"):
                return np.power(base.astype(np.complex128), expo)
        with np.errstate(divide="ignore", invalid="ignore",
                         over="ignore"):
            return np.power(base, expo)
    with np.errstate(over="ignore", invalid="ignore"):
        return np.power(a, b)


# ----------------------------------------------------------------------
# Builtin functions
# ----------------------------------------------------------------------


def is_builtin(name: str) -> bool:
    return name in _BUILTINS


def call(name: str, args: list[object], nargout: int,
         stdout) -> list[object]:
    fn = _BUILTINS.get(name)
    if fn is None:
        raise InterpreterError(f"unknown builtin {name!r}")
    return fn(args, nargout, stdout)


def _simple(fn):
    """Wrap an args->value function into the builtin calling convention."""

    def wrapper(args, nargout, stdout):
        result = fn(*[to_value(a) if not isinstance(a, str) else a
                      for a in args])
        return [to_value(result)]

    return wrapper


def _dims_from_args(args) -> tuple[int, int]:
    if not args:
        return 1, 1
    if len(args) == 1:
        n = int(scalar_of(to_value(args[0])))
        return n, n
    return (int(scalar_of(to_value(args[0]))),
            int(scalar_of(to_value(args[1]))))


def _zeros(args, nargout, stdout):
    return [np.zeros(_dims_from_args(args))]


def _ones(args, nargout, stdout):
    return [np.ones(_dims_from_args(args))]


def _eye(args, nargout, stdout):
    rows, cols = _dims_from_args(args)
    return [np.eye(rows, cols)]


def _length(args, nargout, stdout):
    a = to_value(args[0])
    if isinstance(args[0], str):
        return [to_value(float(len(args[0])))]
    if a.size == 0:
        return [to_value(0.0)]
    return [to_value(float(max(a.shape)))]


def _numel(args, nargout, stdout):
    if isinstance(args[0], str):
        return [to_value(float(len(args[0])))]
    return [to_value(float(to_value(args[0]).size))]


def _size(args, nargout, stdout):
    a = to_value(args[0]) if not isinstance(args[0], str) else \
        char_to_double(args[0])
    if len(args) == 2:
        d = int(scalar_of(to_value(args[1])))
        dim = a.shape[d - 1] if d <= 2 else 1
        return [to_value(float(dim))]
    if nargout >= 2:
        return [to_value(float(a.shape[0])), to_value(float(a.shape[1]))]
    return [to_value([[float(a.shape[0]), float(a.shape[1])]])]


def _reduction(np_fn, identity=None):
    def run(args, nargout, stdout):
        a = to_value(args[0])
        if len(args) == 2:
            dim = int(scalar_of(to_value(args[1])))
            return [np.atleast_2d(np_fn(a, axis=dim - 1, keepdims=True))]
        if a.size == 0:
            return [to_value(identity if identity is not None else 0.0)]
        if a.shape[0] == 1 or a.shape[1] == 1:
            return [to_value(np_fn(a))]
        return [np.atleast_2d(np_fn(a, axis=0, keepdims=True))]

    return run


def _minmax(np_fn, arg_fn, pair_fn):
    def run(args, nargout, stdout):
        if len(args) == 2:
            a, b = to_value(args[0]), to_value(args[1])
            _conform("min/max", a, b)
            return [pair_fn(a, b)]
        a = to_value(args[0])
        if a.shape[0] == 1 or a.shape[1] == 1:
            flat = a.reshape(-1, order="F")
            index = int(arg_fn(np.real(flat)))
            results = [to_value(flat[index])]
            if nargout >= 2:
                results.append(to_value(float(index + 1)))
            return results
        values = np_fn(np.real(a), axis=0, keepdims=True)
        results = [np.atleast_2d(values)]
        if nargout >= 2:
            results.append(np.atleast_2d(
                arg_fn(np.real(a), axis=0).astype(np.float64) + 1))
        return results

    return run


def _norm(args, nargout, stdout):
    a = to_value(args[0])
    return [to_value(float(np.linalg.norm(a.reshape(-1, order="F"))))]


def _var(args, nargout, stdout):
    a = to_value(args[0]).reshape(-1, order="F")
    if a.size <= 1:
        return [to_value(0.0)]
    return [to_value(float(np.var(np.real(a), ddof=1)))]


def _std(args, nargout, stdout):
    a = to_value(args[0]).reshape(-1, order="F")
    if a.size <= 1:
        return [to_value(0.0)]
    return [to_value(float(np.std(np.real(a), ddof=1)))]


def _any(args, nargout, stdout):
    return [to_value(bool(np.any(to_value(args[0]) != 0)))]


def _all(args, nargout, stdout):
    return [to_value(bool(np.all(to_value(args[0]) != 0)))]


def _cumsum(args, nargout, stdout):
    a = to_value(args[0])
    flat = np.cumsum(a.reshape(-1, order="F"))
    return [flat.reshape(a.shape, order="F")]


def _sort(args, nargout, stdout):
    a = to_value(args[0])
    flat = a.reshape(-1, order="F")
    order = np.argsort(np.real(flat), kind="stable")
    results = [flat[order].reshape(a.shape, order="F")]
    if nargout >= 2:
        results.append((order.astype(np.float64) + 1)
                       .reshape(a.shape, order="F"))
    return results


def _dot(args, nargout, stdout):
    a, b = to_value(args[0]), to_value(args[1])
    if a.size != b.size:
        raise InterpreterError("dot(): vectors must have equal length")
    return [to_value(np.vdot(a.reshape(-1, order='F'),
                             b.reshape(-1, order='F')))]


def _round(args, nargout, stdout):
    a = to_value(args[0])
    return [np.where(np.real(a) >= 0, np.floor(np.real(a) + 0.5),
                     np.ceil(np.real(a) - 0.5)) + 0.0]


def _fix(args, nargout, stdout):
    return [np.trunc(np.real(to_value(args[0]))) + 0.0]


def _mod(args, nargout, stdout):
    a, b = to_value(args[0]), to_value(args[1])
    _conform("mod", a, b)
    result = np.where(b != 0, a - np.floor(_safe_div(a, b)) * b, a)
    return [np.atleast_2d(result)]


def _rem(args, nargout, stdout):
    a, b = to_value(args[0]), to_value(args[1])
    _conform("rem", a, b)
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.where(b != 0, np.fmod(a, b), np.nan)
    return [np.atleast_2d(result)]


def _safe_div(a, b):
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(b != 0, a / np.where(b == 0, 1, b), 0)


def _sqrt(args, nargout, stdout):
    a = to_value(args[0])
    if not np.iscomplexobj(a) and np.any(a < 0):
        return [np.sqrt(a.astype(np.complex128))]
    return [np.sqrt(a)]


def _log(args, nargout, stdout):
    a = to_value(args[0])
    if not np.iscomplexobj(a) and np.any(a < 0):
        return [np.log(a.astype(np.complex128))]
    with np.errstate(divide="ignore"):
        return [np.log(a)]


def _complex_build(args, nargout, stdout):
    real = to_value(args[0]).astype(np.float64)
    imag = to_value(args[1]).astype(np.float64) if len(args) > 1 else 0.0
    return [real + 1j * imag]


def _reshape(args, nargout, stdout):
    a = to_value(args[0])
    rows = int(scalar_of(to_value(args[1])))
    cols = int(scalar_of(to_value(args[2])))
    if rows * cols != a.size:
        raise InterpreterError(
            f"reshape(): {a.size} elements cannot become {rows}x{cols}")
    return [a.reshape((rows, cols), order="F").copy()]


def _linspace(args, nargout, stdout):
    start = scalar_of(to_value(args[0]))
    stop = scalar_of(to_value(args[1]))
    n = int(scalar_of(to_value(args[2]))) if len(args) > 2 else 100
    return [np.linspace(start, stop, n).reshape(1, -1)]


def _filter(args, nargout, stdout):
    b = to_value(args[0]).reshape(-1, order="F")
    a = to_value(args[1]).reshape(-1, order="F")
    x = to_value(args[2])
    orig_shape = x.shape
    flat = x.reshape(-1, order="F")
    if a[0] == 0:
        raise InterpreterError("filter(): a(1) must be nonzero")
    dtype = np.complex128 if any(np.iscomplexobj(v) for v in (a, b, x)) \
        else np.float64
    y = np.zeros(flat.size, dtype=dtype)
    for n in range(flat.size):
        acc = dtype(0)
        for k in range(min(n + 1, b.size)):
            acc += b[k] * flat[n - k]
        for k in range(1, min(n + 1, a.size)):
            acc -= a[k] * y[n - k]
        y[n] = acc / a[0]
    return [y.reshape(orig_shape, order="F")]


def _conv(args, nargout, stdout):
    a = to_value(args[0])
    b = to_value(args[1])
    flat = np.convolve(a.reshape(-1, order="F"), b.reshape(-1, order="F"))
    if a.shape[1] == 1 and b.shape[1] == 1 and a.size > 1 and b.size > 1:
        return [flat.reshape(-1, 1)]
    return [flat.reshape(1, -1)]


def _fft(args, nargout, stdout):
    a = to_value(args[0])
    n = int(scalar_of(to_value(args[1]))) if len(args) > 1 else None
    flat = a.reshape(-1, order="F")
    out = np.fft.fft(flat, n)
    return [out.reshape(-1, 1) if a.shape[0] > 1 else out.reshape(1, -1)]


def _ifft(args, nargout, stdout):
    a = to_value(args[0])
    n = int(scalar_of(to_value(args[1]))) if len(args) > 1 else None
    flat = a.reshape(-1, order="F")
    out = np.fft.ifft(flat, n)
    return [out.reshape(-1, 1) if a.shape[0] > 1 else out.reshape(1, -1)]


def _disp(args, nargout, stdout):
    value = args[0]
    if isinstance(value, str):
        stdout.write(value + "\n")
    else:
        with np.printoptions(precision=4, suppress=True):
            stdout.write(str(to_value(value)) + "\n")
    return []


def _fprintf(args, nargout, stdout):
    if not args or not isinstance(args[0], str):
        raise InterpreterError("fprintf() requires a format string")
    fmt = args[0].replace("\\n", "\n").replace("\\t", "\t")
    scalars = []
    for arg in args[1:]:
        value = to_value(arg)
        scalars.extend(np.real(value.reshape(-1, order="F")).tolist())
    try:
        stdout.write(_printf(fmt, scalars))
    except (TypeError, ValueError) as exc:
        raise InterpreterError(f"fprintf(): {exc}") from exc
    return []


def _printf(fmt: str, values: list[float]) -> str:
    """MATLAB fprintf recycles the format over the value list."""
    import re
    spec = re.compile(r"%[-+ #0]*\d*(?:\.\d+)?[diouxXeEfgGcs%]")
    count = len([m for m in spec.finditer(fmt) if m.group() != "%%"])
    if count == 0 or not values:
        return fmt % () if "%" not in fmt.replace("%%", "") else fmt
    out = []
    index = 0
    while index < len(values):
        chunk = values[index:index + count]
        if len(chunk) < count:
            chunk = chunk + [0.0] * (count - len(chunk))
        converted = tuple(int(v) if abs(v - int(v)) < 1e-12 else v
                          for v in chunk)
        try:
            out.append(fmt % converted)
        except TypeError:
            out.append(fmt % tuple(float(v) for v in chunk))
        index += count
    return "".join(out)


def _error(args, nargout, stdout):
    message = args[0] if isinstance(args[0], str) else "error"
    raise InterpreterError(message)


def _isreal(args, nargout, stdout):
    return [to_value(not np.iscomplexobj(to_value(args[0])))]


def _isempty(args, nargout, stdout):
    if isinstance(args[0], str):
        return [to_value(len(args[0]) == 0)]
    return [to_value(to_value(args[0]).size == 0)]


def _cast(dtype, logical=False):
    def run(args, nargout, stdout):
        a = to_value(args[0]) if not isinstance(args[0], str) else \
            char_to_double(args[0])
        if logical:
            return [a != 0]
        if np.iscomplexobj(a) and dtype in (np.float32, np.float64):
            return [a.astype(np.complex64 if dtype is np.float32
                             else np.complex128)]
        if np.iscomplexobj(a):
            a = np.real(a)
        if dtype in (np.int8, np.int16, np.int32):
            info = np.iinfo(dtype)
            return [np.clip(np.where(np.real(a) >= 0,
                                     np.floor(np.real(a) + 0.5),
                                     np.ceil(np.real(a) - 0.5)),
                            info.min, info.max).astype(np.float64)]
        return [a.astype(dtype)]

    return run


_BUILTINS = {
    "zeros": _zeros,
    "ones": _ones,
    "eye": _eye,
    "length": _length,
    "numel": _numel,
    "size": _size,
    "sum": _reduction(np.sum, identity=0.0),
    "prod": _reduction(np.prod, identity=1.0),
    "mean": _reduction(np.mean),
    "min": _minmax(np.min, np.argmin, np.minimum),
    "max": _minmax(np.max, np.argmax, np.maximum),
    "dot": _dot,
    "norm": _norm,
    "var": _var,
    "std": _std,
    "any": _any,
    "all": _all,
    "cumsum": _cumsum,
    "sort": _sort,
    "abs": _simple(np.abs),
    "real": _simple(np.real),
    "imag": _simple(np.imag),
    "conj": _simple(np.conj),
    "angle": _simple(np.angle),
    "sqrt": _sqrt,
    "exp": _simple(np.exp),
    "log": _log,
    "sin": _simple(np.sin),
    "cos": _simple(np.cos),
    "tan": _simple(np.tan),
    "atan": _simple(np.arctan),
    "atan2": _simple(np.arctan2),
    "hypot": _simple(np.hypot),
    "floor": _simple(lambda a: np.floor(np.real(a)) + 0.0),
    "ceil": _simple(lambda a: np.ceil(np.real(a)) + 0.0),
    "round": _round,
    "fix": _fix,
    "sign": _simple(lambda a: np.sign(np.real(a)) + 0.0),
    "mod": _mod,
    "rem": _rem,
    "power": _simple(_power),
    "complex": _complex_build,
    "transpose": _simple(lambda a: a.T.copy()),
    "ctranspose": _simple(lambda a: a.conj().T.copy()),
    "reshape": _reshape,
    "linspace": _linspace,
    "fliplr": _simple(np.fliplr),
    "flipud": _simple(np.flipud),
    "filter": _filter,
    "conv": _conv,
    "fft": _fft,
    "ifft": _ifft,
    "disp": _disp,
    "fprintf": _fprintf,
    "error": _error,
    "isreal": _isreal,
    "isempty": _isempty,
    "double": _cast(np.float64),
    "single": _cast(np.float32),
    "int8": _cast(np.int8),
    "int16": _cast(np.int16),
    "int32": _cast(np.int32),
    "logical": _cast(None, logical=True),
}
