"""Asyncio HTTP/1.1 front-end for the compile daemon.

A deliberately small, dependency-free HTTP server over asyncio streams
(the container ships no aiohttp): request-line + headers + explicit
``Content-Length`` bodies, keep-alive by default, one asyncio task per
connection.  It only implements what the daemon's API needs — no
chunked encoding, no TLS, no pipelining guarantees beyond sequential
request/response on one connection.

Routes:

``POST /compile``
    JSON body ``{"source": ..., "args": [...], "entry": ...,
    "processor": ..., "options": {...}, "filename": ...,
    "timeout": ..., "include_c": true}`` ->
    :meth:`ServeResult.to_dict` JSON.  Status codes: 200 compile ok
    (cached or fresh), 400 malformed request, 422 the compile itself
    failed (error/timeout/crash — structured body, deterministic, not
    retryable), 429 shed by admission control, 503 shed because the
    daemon is draining.

``GET /healthz``
    200 ``{"status": "ok" | "draining", ...}`` (503 when draining, so
    load balancers stop routing during shutdown).

``GET /metrics``
    Prometheus text exposition 0.0.4 of the daemon registry (serve
    counters/histograms plus merged worker-side metrics) — the text
    :func:`repro.observe.expo.to_prometheus` renders.

``GET /stats``
    The same registry as a JSON snapshot plus histogram summaries.

The server binds a unix socket (``path``) or TCP (``host``/``port``);
both can be served by the same process in tests.  :meth:`Server.stop`
closes the listeners, lets in-flight handlers finish, and returns —
daemon drain is the caller's job (see :mod:`repro.serve.cli`).
"""

from __future__ import annotations

import asyncio
import json

from repro.observe.expo import to_prometheus
from repro.serve.daemon import CompileDaemon, CompileRequest, RequestError

#: Bound on header block + body sizes: a compile request is MATLAB
#: source measured in KB; anything bigger is a client bug, not a
#: workload.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            422: "Unprocessable Entity", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}

#: ServeResult.status -> HTTP status for /compile responses.
_COMPILE_STATUS = {"ok": 200, "error": 422, "timeout": 422, "crash": 422}


class _BadRequest(Exception):
    """Protocol-level parse failure; the connection is answered 400
    and closed."""


class Server:
    """One daemon exposed over HTTP on a unix socket and/or TCP."""

    def __init__(self, daemon: CompileDaemon,
                 path: "str | None" = None,
                 host: "str | None" = None,
                 port: "int | None" = None):
        if path is None and host is None:
            raise ValueError("need a unix socket path or a TCP host")
        self.daemon = daemon
        self.path = path
        self.host = host
        self.port = port
        self._servers: "list[asyncio.AbstractServer]" = []
        self._writers: "set[asyncio.StreamWriter]" = set()

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "Server":
        if self.path is not None:
            self._servers.append(await asyncio.start_unix_server(
                self._handle_connection, path=self.path))
        if self.host is not None:
            server = await asyncio.start_server(
                self._handle_connection, host=self.host,
                port=self.port or 0)
            self.port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        return self

    async def stop(self) -> None:
        """Close the listeners; established connections keep running
        (drain delivers their in-flight responses)."""
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers = []

    async def close_connections(self, timeout: float = 5.0) -> None:
        """Close the remaining (idle, post-drain) connections and wait
        for their handler tasks to unwind — an EOF-driven goodbye
        instead of event-loop-teardown task cancellation."""
        for writer in list(self._writers):
            writer.close()
        deadline = asyncio.get_running_loop().time() + timeout
        while self._writers and \
                asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.01)

    def endpoints(self) -> "list[str]":
        out = []
        if self.path is not None:
            out.append(f"unix:{self.path}")
        if self.host is not None:
            out.append(f"http://{self.host}:{self.port}")
        return out

    # -- connection handling --------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._write_json(writer, 400, {
                        "status": "bad_request", "detail": str(exc)})
                    break
                if request is None:
                    break
                method, target, headers, body = request
                status, content_type, payload = await self._route(
                    method, target, body)
                keep_alive = headers.get("connection", "").lower() \
                    != "close"
                await self._write_response(writer, status, content_type,
                                           payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """One request -> (method, target, headers, body); None on a
        cleanly closed connection."""
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as exc:
            raise _BadRequest(f"oversized request line: {exc}") from exc
        if not line:
            return None
        parts = line.decode("latin-1").rstrip("\r\n").split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(f"malformed request line {line!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                raise _BadRequest("header block too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length", "0")
        try:
            length = int(length)
        except ValueError as exc:
            raise _BadRequest(
                f"bad Content-Length {length!r}") from exc
        if length > MAX_BODY_BYTES:
            raise _BadRequest(
                f"body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    # -- routing --------------------------------------------------------

    async def _route(self, method: str, target: str, body: bytes):
        """-> (status, content_type, payload_bytes)."""
        target = target.split("?", 1)[0]
        try:
            if target == "/compile":
                if method != "POST":
                    return self._json(405, {"status": "bad_request",
                                            "detail": "POST required"})
                return await self._compile(body)
            if target == "/healthz":
                if method != "GET":
                    return self._json(405, {"status": "bad_request",
                                            "detail": "GET required"})
                health = self.daemon.health()
                code = 503 if health["status"] == "draining" else 200
                return self._json(code, health)
            if target == "/metrics":
                if method != "GET":
                    return self._json(405, {"status": "bad_request",
                                            "detail": "GET required"})
                text = to_prometheus(self.daemon.registry.snapshot())
                return (200, "text/plain; version=0.0.4",
                        text.encode("utf-8"))
            if target == "/stats":
                if method != "GET":
                    return self._json(405, {"status": "bad_request",
                                            "detail": "GET required"})
                return self._json(200, {
                    "snapshot": self.daemon.registry.snapshot(),
                    "summary": self.daemon.registry.summaries(),
                    "health": self.daemon.health(),
                })
            return self._json(404, {"status": "not_found",
                                    "detail": f"no route {target}"})
        except Exception as exc:  # never kill the connection loop
            return self._json(500, {
                "status": "internal",
                "detail": f"{type(exc).__name__}: {exc}"})

    async def _compile(self, body: bytes):
        try:
            fields = json.loads(body.decode("utf-8"))
            if not isinstance(fields, dict):
                raise ValueError("body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            return self._json(400, {"status": "bad_request",
                                    "detail": f"invalid JSON body: {exc}"})
        include_c = bool(fields.pop("include_c", True))
        try:
            request = CompileRequest(
                source=str(fields["source"]),
                args=[str(a) for a in fields.get("args", [])],
                entry=fields.get("entry"),
                processor=str(fields.get("processor", "vliw_simd_dsp")),
                options=dict(fields.get("options") or {}),
                filename=str(fields.get("filename", "<serve>")),
                timeout=fields.get("timeout"))
        except (KeyError, TypeError, ValueError) as exc:
            return self._json(400, {
                "status": "bad_request",
                "detail": f"malformed compile request: "
                          f"{type(exc).__name__}: {exc}"})
        try:
            ticket = self.daemon.submit(request)
        except RequestError as exc:
            return self._json(400, {"status": "bad_request",
                                    "detail": str(exc)})
        if ticket.result is not None:
            result = ticket.result
        else:
            result = await asyncio.wrap_future(ticket.future)
        if result.status == "shed":
            code = 503 if self.daemon.draining else 429
            payload = result.to_dict(include_c=False)
            payload["retry_after_s"] = 0.5
            return self._json(code, payload)
        return self._json(_COMPILE_STATUS.get(result.status, 500),
                          result.to_dict(include_c=include_c))

    # -- response writing -----------------------------------------------

    @staticmethod
    def _json(status: int, payload: dict):
        return (status, "application/json",
                json.dumps(payload).encode("utf-8"))

    async def _write_json(self, writer, status: int,
                          payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        await self._write_response(writer, status, "application/json",
                                   body, keep_alive=False)

    @staticmethod
    async def _write_response(writer, status: int, content_type: str,
                              payload: bytes, keep_alive: bool) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                "\r\n\r\n")
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
