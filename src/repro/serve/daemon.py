"""The compile daemon engine: warm cache, coalescing, admission control.

:class:`CompileDaemon` is the transport-agnostic core of
``repro-serve``.  It sits between a front-end (the asyncio HTTP layer
in :mod:`repro.serve.httpd`, or a test calling :meth:`submit`
directly) and the existing :class:`~repro.service.CompileService`
worker pool, and adds the three things a long-lived resident process
needs that a batch tool does not:

* **A persistent warm cache.**  The daemon owns an in-process
  :class:`~repro.cache.CompilationCache` layered above the same
  on-disk store its workers publish into.  A repeated request is
  answered from memory without touching the pool; a request another
  worker compiled in a previous life of the disk cache is answered
  after one pickle load.  The cache key is the full content hash of
  ``(source, args, entry, processor, options, filename)`` — exactly
  :func:`repro.cache.cache_key`, schema-salted so entries from older
  code revisions read as misses.

* **Request coalescing.**  Concurrent requests for an identical key
  elect one *leader* that occupies a pool slot; every *follower*
  attaches to the leader's future and is answered by the same compile.
  A thousand simultaneous requests for one cold kernel cost one
  compile, not a thousand (``tests/test_serve.py`` proves exactly
  one).

* **Admission control.**  Distinct in-flight compiles are bounded by
  ``queue_depth``; beyond it, new *leaders* are shed immediately with
  a structured refusal (HTTP 429 upstream) instead of growing an
  unbounded queue.  Followers are always admitted — they add no pool
  work — and cache hits bypass admission entirely.  Accepted work is
  never dropped: shedding happens at admission or never.

Execution model: a single dispatcher thread drains accepted leaders
from a queue and feeds them to ``CompileService.compile_batch`` in
micro-batches (up to ``max_batch`` jobs, i.e. one pool wave).  This
keeps the service's crash-isolation/retry machinery intact — a
poisoned request burns its own retry budget, never the daemon — at the
cost of new arrivals waiting for the current micro-batch; ``max_batch``
bounds that tail.  After each batch the dispatcher *warms* the
in-process cache (loading the worker-published disk entry) **before**
publishing the result and removing the in-flight entry, so a request
that misses coalescing can only land after the cache is already warm.

Shutdown (:meth:`stop`) is drain-first: admission closes (new work is
shed with ``"draining"``), queued leaders finish, every outstanding
future resolves, then the worker pool is closed.  SIGTERM in the CLI
maps to exactly this.
"""

from __future__ import annotations

import itertools
import os
import queue
import tempfile
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro import cache as _cache
from repro.cache import CompilationCache
from repro.observe.telemetry import MetricsRegistry
from repro.service.jobs import CompileJob, JobResult, resolve_processor
from repro.service.pool import CompileService

#: Ticket outcomes (`Ticket.outcome`).
OUTCOMES = ("hit", "accepted", "coalesced", "shed")

_POISON = object()


class RequestError(ValueError):
    """Malformed compile request (bad arg spec, unknown processor or
    option) — the daemon refuses it before admission; HTTP 400."""


@dataclass
class CompileRequest:
    """One compile request by value (the JSON body of ``POST
    /compile``, minus transport concerns)."""

    source: str
    args: "list[str]"
    entry: "str | None" = None
    processor: str = "vliw_simd_dsp"
    options: dict = field(default_factory=dict)
    filename: str = "<serve>"
    timeout: "float | None" = None


@dataclass
class ServeResult:
    """Terminal outcome of one admitted request."""

    status: str               #: ok | error | timeout | crash | shed
    key: str = ""
    entry_name: str = ""
    c_source: "str | None" = None
    detail: str = ""
    error_type: str = ""
    #: Served from the warm in-process/disk cache (no pool work).
    cached: bool = False
    #: Answered by another request's in-flight compile.
    coalesced: bool = False
    #: Seconds from admission to resolution (0 for cache hits).
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self, include_c: bool = True) -> dict:
        body = {
            "status": self.status,
            "key": self.key,
            "entry": self.entry_name,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "wall_s": round(self.wall_s, 6),
        }
        if self.detail:
            body["detail"] = self.detail
        if self.error_type:
            body["error_type"] = self.error_type
        if include_c and self.c_source is not None:
            body["c_source"] = self.c_source
        return body


@dataclass
class Ticket:
    """Admission decision for one request.

    ``outcome`` is one of :data:`OUTCOMES`; ``result`` is set for
    immediately-answered tickets (hits and sheds), ``future`` resolves
    to a :class:`ServeResult` for accepted/coalesced ones.
    """

    outcome: str
    key: str = ""
    result: "ServeResult | None" = None
    future: "Future[ServeResult] | None" = None

    def wait(self, timeout: "float | None" = None) -> ServeResult:
        """Block until the request resolves (front-end helper)."""
        if self.result is not None:
            return self.result
        return self.future.result(timeout=timeout)


class _Pending:
    """One in-flight unique compile (the coalescing unit)."""

    __slots__ = ("key", "job", "future", "admitted_at", "followers")

    def __init__(self, key: str, job: CompileJob):
        self.key = key
        self.job = job
        self.future: "Future[ServeResult]" = Future()
        self.admitted_at = time.perf_counter()
        self.followers = 0


class CompileDaemon:
    """Long-lived compile engine over a :class:`CompileService` pool.

    Args:
        workers: worker process count (default: CPU count capped at 4 —
            a resident daemon should not monopolize the host by
            default).
        queue_depth: max distinct in-flight compiles before new leaders
            are shed.
        max_batch: max jobs per dispatcher micro-batch (default:
            2x workers, one service wave).
        timeout: default per-job deadline applied to requests that do
            not carry their own.
        cache_dir: shared on-disk cache; created under the system temp
            directory when omitted (the disk layer is what lets worker
            compiles warm the daemon's in-process cache).
        cache_size: in-process LRU capacity.
        registry: metrics sink; a fresh one is created when omitted.
            Worker metric snapshots are merged in after every batch,
            so ``/metrics`` exposes pool-side latencies too.
    """

    def __init__(self, workers: "int | None" = None,
                 queue_depth: int = 64,
                 max_batch: "int | None" = None,
                 timeout: "float | None" = None,
                 cache_dir: "str | None" = None,
                 cache_size: int = 512,
                 registry: "MetricsRegistry | None" = None,
                 allow_test_hooks: bool = False):
        self.workers = max(1, workers if workers is not None
                           else min(os.cpu_count() or 1, 4))
        self.queue_depth = max(1, queue_depth)
        self.max_batch = max(1, max_batch if max_batch is not None
                             else self.workers * 2)
        self.timeout = timeout
        self._owned_dir: "tempfile.TemporaryDirectory | None" = None
        if cache_dir is None:
            self._owned_dir = tempfile.TemporaryDirectory(
                prefix="repro-serve-cache-")
            cache_dir = self._owned_dir.name
        self.cache_dir = str(cache_dir)
        self.cache = CompilationCache(maxsize=cache_size,
                                      cache_dir=self.cache_dir)
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.allow_test_hooks = allow_test_hooks
        self.started_at = time.time()

        self._service: "CompileService | None" = None
        self._queue: "queue.Queue" = queue.Queue()
        self._inflight: "dict[str, _Pending]" = {}
        self._lock = threading.Lock()
        self._closed = False
        self._dispatcher: "threading.Thread | None" = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "CompileDaemon":
        if self._dispatcher is not None:
            return self
        self._service = CompileService(
            jobs=self.workers, timeout=self.timeout,
            cache_dir=self.cache_dir,
            allow_test_hooks=self.allow_test_hooks)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch",
            daemon=True)
        self._dispatcher.start()
        return self

    def __enter__(self) -> "CompileDaemon":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    def stop(self, drain: bool = True,
             timeout: "float | None" = None) -> None:
        """Shut down: close admission, then either finish the queued
        work (``drain=True``, the SIGTERM path) or fail the outstanding
        futures immediately."""
        with self._lock:
            if self._closed and self._dispatcher is None:
                return
            self._closed = True
        if not drain:
            # Discard queued-but-unstarted leaders so the dispatcher
            # does not spend shutdown compiling work nobody will read,
            # then resolve every outstanding future as shed.
            while True:
                try:
                    self._queue.get_nowait()
                except queue.Empty:
                    break
            self._abort_outstanding("daemon stopped without drain")
        dispatcher = self._dispatcher
        if dispatcher is not None:
            # FIFO: the poison pill lands behind every already-queued
            # leader, so a draining dispatcher finishes them first.
            self._queue.put(_POISON)
            dispatcher.join(timeout=timeout)
            self._dispatcher = None
        if not drain:
            self._abort_outstanding("daemon stopped without drain")
        if self._service is not None:
            self._service.close()
            self._service = None
        if self._owned_dir is not None:
            self._owned_dir.cleanup()
            self._owned_dir = None
        self.registry.counter("serve.stopped")

    def _abort_outstanding(self, detail: str) -> None:
        with self._lock:
            pending = list(self._inflight.values())
            self._inflight.clear()
        for item in pending:
            if not item.future.done():
                item.future.set_result(ServeResult(
                    status="shed", key=item.key, detail=detail))

    # -- admission ------------------------------------------------------

    def submit(self, request: CompileRequest) -> Ticket:
        """Admit one request: answer from cache, attach to an in-flight
        compile, enqueue a new leader, or shed.  Never blocks on
        compilation; raises :class:`RequestError` for requests
        malformed beyond compiling."""
        t0 = time.perf_counter()
        self.registry.counter("serve.requests")
        key = self._request_key(request)

        # Fast path: warm in-process LRU, then the shared disk layer.
        result = self.cache.get(key)
        if result is not None:
            self.registry.counter("serve.cache_hits")
            self.registry.observe("serve.request_s",
                                  time.perf_counter() - t0)
            return Ticket(outcome="hit", key=key,
                          result=self._from_cached(key, result))

        with self._lock:
            if self._closed:
                self.registry.counter("serve.shed_draining")
                return Ticket(outcome="shed", key=key,
                              result=ServeResult(
                                  status="shed", key=key,
                                  detail="draining: daemon is "
                                         "shutting down"))
            pending = self._inflight.get(key)
            if pending is not None:
                pending.followers += 1
                self.registry.counter("serve.coalesced")
                return Ticket(outcome="coalesced", key=key,
                              future=pending.future)
            # The dispatcher warms the cache *before* dropping the
            # in-flight entry, so a key absent from ``_inflight`` whose
            # compile already finished must be visible here; the peek
            # closes the miss-then-absent race without disk I/O or
            # stat-skewing the public get path.
            result = self.cache.peek(key)
            if result is not None:
                self.registry.counter("serve.cache_hits")
                return Ticket(outcome="hit", key=key,
                              result=self._from_cached(key, result))
            if len(self._inflight) >= self.queue_depth:
                self.registry.counter("serve.shed")
                return Ticket(outcome="shed", key=key,
                              result=ServeResult(
                                  status="shed", key=key,
                                  detail=f"overloaded: {self.queue_depth} "
                                         "compiles already in flight"))
            pending = _Pending(key, self._make_job(request))
            self._inflight[key] = pending
            depth = len(self._inflight)
        self.registry.counter("serve.accepted")
        self.registry.gauge("serve.queue_depth_peak", depth)
        self._queue.put(pending)
        return Ticket(outcome="accepted", key=key, future=pending.future)

    def _request_key(self, request: CompileRequest) -> str:
        """Content hash of the request; rejects malformed specs."""
        from repro.cli import parse_arg_spec
        from repro.compiler import CompilerOptions

        try:
            specs = [parse_arg_spec(spec) for spec in request.args]
            processor = resolve_processor(request.processor)
            options = CompilerOptions(**dict(request.options))
        except (TypeError, ValueError, KeyError) as exc:
            raise RequestError(f"{type(exc).__name__}: {exc}") from exc
        return _cache.cache_key(request.source, specs, request.entry,
                                processor, options,
                                filename=request.filename)

    def _make_job(self, request: CompileRequest) -> CompileJob:
        return CompileJob(
            job_id=f"serve-{next(_serve_ids)}",
            source=request.source, args=list(request.args),
            entry=request.entry, processor=request.processor,
            options=dict(request.options), filename=request.filename,
            timeout=request.timeout if request.timeout is not None
            else self.timeout)

    def _from_cached(self, key: str, result) -> ServeResult:
        return ServeResult(status="ok", key=key,
                           entry_name=result.entry_name,
                           c_source=result.c_source(), cached=True)

    # -- dispatch -------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _POISON:
                return
            batch = [item]
            while len(batch) < self.max_batch:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _POISON:
                    # Keep draining this batch; re-arm the pill for the
                    # next loop so FIFO shutdown still holds.
                    self._queue.put(_POISON)
                    break
                batch.append(extra)
            self._run_batch(batch)

    def _run_batch(self, batch: "list[_Pending]") -> None:
        now = time.perf_counter()
        for pending in batch:
            self.registry.observe("serve.queue_wait_s",
                                  now - pending.admitted_at)
        try:
            result = self._service.compile_batch(
                [pending.job for pending in batch])
        except Exception as exc:  # service-level failure: fail the batch
            self.registry.counter("serve.batch_errors")
            for pending in batch:
                self._resolve(pending, ServeResult(
                    status="crash", key=pending.key,
                    detail=f"service failure: "
                           f"{type(exc).__name__}: {exc}"))
            return
        self.registry.counter("serve.compile_batches")
        self.registry.observe("serve.batch_s",
                              time.perf_counter() - now)
        for job_result in result.results:
            if job_result.metrics:
                self.registry.merge(job_result.metrics)
        for pending, job_result in zip(batch, result.results):
            self._resolve(pending, self._to_serve_result(pending,
                                                         job_result))

    def _to_serve_result(self, pending: _Pending,
                         job_result: JobResult) -> ServeResult:
        if job_result.ok:
            self.registry.counter("serve.compiles")
            # Pull the worker-published disk entry into the warm LRU
            # *before* the in-flight entry is dropped (in _resolve), so
            # post-coalescing requests land on a warm cache.
            self.cache.get(pending.key)
            return ServeResult(
                status="ok", key=pending.key,
                entry_name=job_result.entry_name,
                c_source=job_result.c_source,
                wall_s=time.perf_counter() - pending.admitted_at)
        self.registry.counter(f"serve.compile_{job_result.status}")
        return ServeResult(
            status=job_result.status, key=pending.key,
            detail=job_result.detail,
            error_type=job_result.error_type,
            wall_s=time.perf_counter() - pending.admitted_at)

    def _resolve(self, pending: _Pending, result: ServeResult) -> None:
        self.registry.observe("serve.request_s", result.wall_s)
        with self._lock:
            self._inflight.pop(pending.key, None)
        if not pending.future.done():
            pending.future.set_result(result)

    # -- introspection --------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._closed

    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def health(self) -> dict:
        return {
            "status": "draining" if self._closed else "ok",
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "inflight": self.inflight(),
            "uptime_s": round(time.time() - self.started_at, 3),
            "cache": self.cache.stats(),
        }


_serve_ids = itertools.count(1)
