"""``repro-serve``: the long-lived compile daemon.

Public surface::

    from repro.serve import CompileDaemon, CompileRequest, ServeClient

    with CompileDaemon(workers=4, queue_depth=32) as daemon:
        ticket = daemon.submit(CompileRequest(
            source=src, args=["single:1x256", "single:1x32"]))
        result = ticket.wait()
    assert result.ok

The HTTP front-end (:class:`repro.serve.httpd.Server`) and the
``repro-serve`` CLI (:mod:`repro.serve.cli`) wrap the same engine; the
blocking :class:`ServeClient` talks to a running daemon over a unix
socket or TCP.
"""

from repro.serve.client import ServeClient, ServeUnavailable
from repro.serve.daemon import (OUTCOMES, CompileDaemon, CompileRequest,
                                RequestError, ServeResult, Ticket)
from repro.serve.httpd import Server

__all__ = [
    "OUTCOMES",
    "CompileDaemon",
    "CompileRequest",
    "RequestError",
    "Server",
    "ServeClient",
    "ServeResult",
    "ServeUnavailable",
    "Ticket",
]
