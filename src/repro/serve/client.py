"""Blocking client for a running ``repro-serve`` daemon.

Thin ``http.client`` wrapper speaking the daemon's JSON API over a
unix socket or TCP, with keep-alive connection reuse and a single
transparent reconnect (a daemon restart between two calls looks like
one slow call, not an error).  One :class:`ServeClient` wraps one
connection and is **not** thread-safe — the load harness gives each
worker thread its own client, which is also how a real multi-client
deployment behaves.

    client = ServeClient(path="/tmp/repro-serve.sock")
    reply = client.compile(source, ["single:1x256", "single:1x32"])
    assert reply["status"] == "ok" and reply["http_status"] == 200
"""

from __future__ import annotations

import http.client
import json
import socket
import time


class ServeUnavailable(ConnectionError):
    """The daemon cannot be reached (not started, socket gone)."""


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` stream socket."""

    def __init__(self, path: str, timeout: "float | None" = None):
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        try:
            sock.connect(self._unix_path)
        except BaseException:
            # A failed dial must not leak the socket object (surfaced
            # as a ResourceWarning by the reconnect test tier).
            sock.close()
            raise
        self.sock = sock


class ServeClient:
    """One keep-alive connection to a daemon."""

    def __init__(self, path: "str | None" = None,
                 host: "str | None" = None,
                 port: "int | None" = None,
                 timeout: float = 120.0):
        if path is None and host is None:
            raise ValueError("need a unix socket path or a TCP host")
        self.path = path
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: "http.client.HTTPConnection | None" = None

    # -- transport ------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._conn is None:
            if self.path is not None:
                self._conn = _UnixHTTPConnection(self.path,
                                                 timeout=self.timeout)
            else:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def request(self, method: str, target: str,
                body: "dict | None" = None):
        """-> (http_status, content_type, body_bytes); reconnects once
        on a dropped keep-alive connection."""
        payload = json.dumps(body).encode("utf-8") \
            if body is not None else None
        headers = {"Content-Type": "application/json"} \
            if payload is not None else {}
        for attempt in (0, 1):
            conn = self._connect()
            try:
                conn.request(method, target, body=payload,
                             headers=headers)
                response = conn.getresponse()
                data = response.read()
                return (response.status,
                        response.getheader("Content-Type", ""),
                        data)
            except (http.client.HTTPException, ConnectionError,
                    BrokenPipeError, FileNotFoundError, OSError) as exc:
                self.close()
                if attempt:
                    raise ServeUnavailable(
                        f"daemon unreachable: "
                        f"{type(exc).__name__}: {exc}") from exc

    def request_json(self, method: str, target: str,
                     body: "dict | None" = None) -> dict:
        status, _ctype, data = self.request(method, target, body)
        try:
            document = json.loads(data.decode("utf-8")) if data else {}
        except ValueError:
            document = {"status": "bad_response",
                        "detail": data[:200].decode("latin-1")}
        if not isinstance(document, dict):
            document = {"status": "bad_response", "detail": document}
        document["http_status"] = status
        return document

    # -- API ------------------------------------------------------------

    def compile(self, source: str, args: "list[str]",
                entry: "str | None" = None,
                processor: str = "vliw_simd_dsp",
                options: "dict | None" = None,
                filename: str = "<serve>",
                timeout: "float | None" = None,
                include_c: bool = True) -> dict:
        """One compile request; the response dict always carries
        ``status`` (``ok``/``error``/``timeout``/``crash``/``shed``/
        ``bad_request``) and ``http_status``."""
        body = {"source": source, "args": list(args),
                "processor": processor, "filename": filename,
                "include_c": include_c}
        if entry is not None:
            body["entry"] = entry
        if options:
            body["options"] = dict(options)
        if timeout is not None:
            body["timeout"] = timeout
        return self.request_json("POST", "/compile", body)

    def healthz(self) -> dict:
        return self.request_json("GET", "/healthz")

    def stats(self) -> dict:
        return self.request_json("GET", "/stats")

    def metrics(self) -> str:
        status, _ctype, data = self.request("GET", "/metrics")
        if status != 200:
            raise ServeUnavailable(f"/metrics returned {status}")
        return data.decode("utf-8")

    def wait_ready(self, timeout: float = 30.0,
                   interval: float = 0.05) -> dict:
        """Poll ``/healthz`` until the daemon answers (daemon boots are
        asynchronous: the CLI prints its ready line only after bind,
        but callers starting the process themselves need this)."""
        deadline = time.monotonic() + timeout
        last: "Exception | None" = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (ServeUnavailable, OSError) as exc:
                last = exc
                time.sleep(interval)
        raise ServeUnavailable(
            f"daemon not ready after {timeout:.1f}s: {last}")
