"""``repro-serve`` — the long-lived compile daemon.

Examples::

    # Serve on a unix socket with 4 workers and a persistent cache
    repro-serve --socket /tmp/repro-serve.sock --workers 4 \\
        --cache-dir /var/cache/repro

    # TCP, bounded admission, 30 s per-job deadline
    repro-serve --host 127.0.0.1 --port 8732 \\
        --queue-depth 32 --timeout 30

The daemon prints one ``ready`` line once every listener is bound
(supervisors and tests key off it), then serves until SIGTERM/SIGINT.
The first signal starts a graceful drain: listeners close, queued
compiles finish, every in-flight response is delivered, the worker
pool shuts down, and the process exits 0.  A second signal aborts the
drain (outstanding requests are answered as shed) and exits 1.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
import traceback

from repro.errors import EXIT_FAILURE, EXIT_INTERNAL, EXIT_OK, EXIT_USAGE
from repro.serve.daemon import CompileDaemon
from repro.serve.httpd import Server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Long-lived MATLAB-to-C compile daemon: warm "
                    "cache, request coalescing, admission control, "
                    "Prometheus /metrics")
    parser.add_argument("--socket", metavar="PATH", default=None,
                        help="serve on this unix socket path")
    parser.add_argument("--host", default=None,
                        help="serve on this TCP host (with --port)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral, printed in the "
                             "ready line)")
    parser.add_argument("--workers", type=int, default=None,
                        help="compile worker processes (default: CPU "
                             "count capped at 4)")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="max distinct in-flight compiles before "
                             "requests are shed with 429 (default 64)")
    parser.add_argument("--max-batch", type=int, default=None,
                        help="max jobs per dispatch wave (default: "
                             "2x workers)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="default per-job deadline in seconds "
                             "(default 120)")
    parser.add_argument("--cache-dir", default=None,
                        help="shared on-disk compilation cache "
                             "(default: REPRO_CACHE_DIR, else a "
                             "daemon-private temp dir)")
    parser.add_argument("--cache-size", type=int, default=512,
                        help="warm in-process LRU capacity "
                             "(default 512)")
    return parser


async def _amain(options) -> int:
    cache_dir = options.cache_dir or os.environ.get("REPRO_CACHE_DIR") \
        or None
    daemon = CompileDaemon(
        workers=options.workers, queue_depth=options.queue_depth,
        max_batch=options.max_batch, timeout=options.timeout,
        cache_dir=cache_dir, cache_size=options.cache_size)
    daemon.start()
    server = Server(daemon, path=options.socket,
                    host=options.host,
                    port=options.port if options.host else None)
    try:
        await server.start()
    except OSError as exc:
        daemon.stop(drain=False)
        print(f"repro-serve: error: cannot bind: {exc}",
              file=sys.stderr)
        return EXIT_FAILURE

    print(f"repro-serve: ready on {' '.join(server.endpoints())} "
          f"(workers={daemon.workers}, "
          f"queue-depth={daemon.queue_depth}, "
          f"cache={daemon.cache_dir})", flush=True)

    loop = asyncio.get_running_loop()
    signals = asyncio.Queue()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, signals.put_nowait, signum)

    signum = await signals.get()
    print(f"repro-serve: {signal.Signals(signum).name} received, "
          f"draining ({daemon.inflight()} in flight)", flush=True)
    # Close the listeners first so no new work arrives, then drain the
    # daemon off-loop (it joins threads and the worker pool).  A second
    # signal during the drain aborts it.
    await server.stop()
    drain = loop.run_in_executor(None, daemon.stop)
    abort = asyncio.ensure_future(signals.get())
    done, _pending = await asyncio.wait(
        {drain, abort}, return_when=asyncio.FIRST_COMPLETED)
    if abort in done:
        print("repro-serve: second signal — aborting drain",
              flush=True)
        daemon.stop(drain=False)
        await drain
        return EXIT_FAILURE
    abort.cancel()
    await server.close_connections()
    print("repro-serve: drained, bye", flush=True)
    return EXIT_OK


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.socket is None and options.host is None:
        parser.print_usage(sys.stderr)
        print("repro-serve: error: need --socket PATH or --host HOST",
              file=sys.stderr)
        return EXIT_USAGE
    try:
        return asyncio.run(_amain(options))
    except KeyboardInterrupt:
        return EXIT_FAILURE
    except Exception:
        print("repro-serve: internal error:", file=sys.stderr)
        traceback.print_exc()
        return EXIT_INTERNAL


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
