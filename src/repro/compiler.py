"""Public compiler API.

One call does the whole flow of the paper's Figure-1 pipeline::

    from repro import compile_source, arg

    result = compile_source(matlab_source,
                            args=[arg((1, 256)), arg((1, 16))],
                            processor="vliw_simd_dsp")
    print(result.c_source())               # ANSI C with ASIP intrinsics
    outputs = result.simulate([x, h])      # cycle-accurate ASIP run

Stages: parse -> type/shape specialization (MATLAB Coder-style ``args``
specs) -> IR lowering -> scalar optimization -> SIMD vectorization +
complex/MAC instruction selection against the parameterized processor
description -> ANSI C emission with intrinsics.

``mode="baseline"`` instead produces the MATLAB-Coder-like comparator:
naive scalarized C with no target knowledge, measured on the same
processor model.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field

import numpy as np

from repro.asip.isa_library import load_processor
from repro.asip.model import ProcessorDescription
from repro.frontend.parser import parse
from repro.frontend.source import SourceFile
from repro.ir import nodes as ir
from repro.ir.builder import lower_program
from repro.ir.passes.manager import cleanup_pipeline, standard_pipeline
from repro.observe import trace as obs_trace
from repro.observe.remarks import Remark
from repro.observe.trace import TraceSession
from repro.semantics.inference import SpecializedProgram, specialize_program
from repro.semantics.shapes import Shape
from repro.semantics.types import MType, dtype_from_name
from repro.vectorize.complexops import ComplexInstructionSelector
from repro.vectorize.idioms import ClipSelector, ScalarMacSelector
from repro.vectorize.simd import SimdVectorizer


def arg(shape: tuple[int, int] = (1, 1), dtype: str = "double",
        complex: bool = False, value: object = None) -> MType:
    """Describe one entry-point argument (like MATLAB Coder ``-args``).

    Args:
        shape: (rows, cols); scalars are (1, 1).
        dtype: MATLAB class name ('double', 'single', 'int16', ...).
        complex: True for complex-valued input.
        value: optional compile-time constant (scalars only) — the
            compiler will specialize on it.
    """
    numeric = dtype_from_name(dtype)
    if numeric is None:
        raise ValueError(f"unknown dtype {dtype!r}")
    rows, cols = shape
    return MType(numeric, complex, Shape(rows, cols), value)


@dataclass
class CompilerOptions:
    """Feature switches of the optimization pipeline (for ablations)."""

    mode: str = "optimized"          # "optimized" | "baseline"
    scalar_opt: bool = True          # folding/propagation/fusion/CSE/DCE
    inline: bool = True              # cross-function inlining
    simd: bool = True                # SIMD loop vectorization
    complex_isel: bool = True        # complex-arithmetic instructions
    scalar_mac: bool = True          # scalar MAC + clip idioms

    @staticmethod
    def baseline() -> "CompilerOptions":
        return CompilerOptions(mode="baseline", scalar_opt=False,
                               inline=False, simd=False,
                               complex_isel=False, scalar_mac=False)


#: Execution backends accepted by :meth:`CompilationResult.simulate`:
#: the two cycle-accounting simulators plus the native ``.so`` tier.
SIM_BACKENDS = ("compiled", "reference", "native")

#: Lazily-built per-result runtime state that must never be pickled
#: (the compiled program holds exec'd code objects, the native program
#: a dlopened library) or shared through the compilation cache's disk
#: layer.
_RUNTIME_ATTRS = ("_compiled_program", "_compiled_program_profiled",
                  "_native_programs", "_sim_runs", "_trace")

#: Bound on the per-result (args, backend) -> ExecutionResult store
#: that backs :meth:`CompilationResult.instruction_mix` reuse.
_SIM_RUN_LIMIT = 8


def _args_signature(args: list[object]) -> tuple:
    """Cheap value-identity token for one simulate() argument list."""
    parts = []
    for value in args:
        if isinstance(value, (bool, int, float, complex, np.generic)):
            parts.append(("s", type(value).__name__, repr(value)))
            continue
        array = np.asarray(value)
        digest = hashlib.sha256(
            np.ascontiguousarray(array).tobytes()).hexdigest()
        parts.append(("a", array.shape, array.dtype.str, digest))
    return tuple(parts)


@dataclass
class CompilationResult:
    """Everything produced for one entry point."""

    module: ir.IRModule
    sprog: SpecializedProgram
    processor: ProcessorDescription
    options: CompilerOptions
    source: SourceFile
    pass_stats: dict[str, int] = field(default_factory=dict)
    stage_times: dict[str, float] = field(default_factory=dict)
    #: Optimization remarks collected while this result was compiled
    #: (passed/missed/analysis decisions with MATLAB source lines).
    remarks: list[Remark] = field(default_factory=list)
    #: Times this exact result was served from the compilation cache
    #: (0 for a fresh compile).  ``stage_times`` always describe the
    #: original compilation, so cache hits keep their provenance.
    cache_hits: int = 0

    @property
    def entry_name(self) -> str:
        return self.module.entry

    @property
    def trace(self) -> "TraceSession | None":
        """The trace session of the compile that produced this result
        (None on cache-shared or unpickled results)."""
        return getattr(self, "_trace", None)

    def c_source(self, with_main: bool = False) -> str:
        """Generated ANSI C (one translation unit, including intrinsics
        header content when emitted standalone)."""
        from repro.backend.emitter import emit_c
        return emit_c(self.module, self.processor, with_main=with_main)

    def intrinsics_header(self) -> str:
        from repro.asip.header_gen import generate_header
        return generate_header(self.processor)

    def compiled_program(self, profile_lines: bool = False):
        """The compiled-closure executor for this module (built once;
        the line-profiling variant is compiled and cached separately)."""
        attr = "_compiled_program_profiled" if profile_lines \
            else "_compiled_program"
        program = getattr(self, attr, None)
        if program is None:
            from repro.sim.compiled import CompiledProgram
            program = CompiledProgram(self.module, self.processor,
                                      profile_lines=profile_lines)
            setattr(self, attr, program)
        return program

    def native_program(self, cc: str = "gcc"):
        """The in-process native executor for this module.

        Built once per (result, compiler): the emitted translation unit
        plus the fixed-ABI dispatch wrapper is compiled to a ``.so``
        behind the content-addressed native artifact cache
        (:mod:`repro.native.builder`), dlopened, and reused for every
        subsequent call.  A warm artifact cache means zero compiler
        invocations here.
        """
        programs = getattr(self, "_native_programs", None)
        if programs is None:
            programs = {}
            self._native_programs = programs
        program = programs.get(cc)
        if program is None:
            from repro.native import NativeProgram
            program = NativeProgram(self.module, self.processor, cc=cc)
            programs[cc] = program
        return program

    @staticmethod
    def _resolve_backend(backend: str | None) -> str:
        if backend is None:
            backend = os.environ.get("REPRO_SIM_BACKEND", "compiled")
        if backend not in SIM_BACKENDS:
            raise ValueError(
                f"unknown simulator backend {backend!r}; "
                f"expected one of {SIM_BACKENDS}")
        return backend

    def simulate(self, args: list[object], backend: str | None = None,
                 hotspots: bool = False):
        """Run on the cycle-accurate ASIP model; returns ExecutionResult.

        Args:
            args: runtime argument values matching the compiled
                signature.
            backend: ``"compiled"`` (default; one-time translation to
                Python closures, reused across runs), ``"reference"``
                (the tree-walking interpreter), or ``"native"`` (the
                emitted C compiled once to a shared object and called
                in-process — host-hardware speed, but no cycle
                accounting: the returned report is empty).  The default
                can be overridden with the ``REPRO_SIM_BACKEND``
                environment variable.  The two simulator backends
                produce identical outputs and identical cycle reports;
                the native tier produces value-identical outputs up to
                host-libm/printf differences (the fuzz oracle's gcc
                tolerances).
            hotspots: also record per-source-line cycle attribution
                (``ExecutionResult.line_cycles`` / ``hotspots()``).
                Both simulator backends attribute identically; the
                native tier does not support profiling.
        """
        backend = self._resolve_backend(backend)
        if backend == "native" and hotspots:
            raise ValueError(
                "the native backend performs no cycle accounting; "
                "use backend='compiled' or 'reference' for hotspots")
        session = obs_trace.current()
        with session.span("simulate", "sim", backend=backend,
                          entry=self.entry_name) as span:
            if backend == "compiled":
                result = self.compiled_program(
                    profile_lines=hotspots).run(args)
            elif backend == "native":
                result = self.native_program().run(args)
            else:
                from repro.sim.machine import Simulator
                result = Simulator(self.module, self.processor,
                                   profile_lines=hotspots).run(args)
            span.set(cycles=result.report.total)
        session.counter("sim.runs")
        session.counter(f"sim.runs.{backend}")
        session.observe(f"sim.{backend}.run_s", span.duration)
        session.event("sim.run", backend=backend, entry=self.entry_name,
                      wall_s=round(span.duration, 6),
                      cycles=result.report.total, span_id=span.id)
        runs = getattr(self, "_sim_runs", None)
        if runs is None:
            runs = {}
            self._sim_runs = runs
        runs[(_args_signature(args), backend)] = result
        while len(runs) > _SIM_RUN_LIMIT:
            del runs[next(iter(runs))]
        return result

    def ir_dump(self) -> str:
        from repro.ir.printer import format_module
        return format_module(self.module)

    def instruction_mix(self, args: list[object],
                        backend: str | None = None) -> dict[str, int]:
        """Custom-instruction counts for one input set.

        Reuses a previous :meth:`simulate` result when one was produced
        from value-identical arguments on the same backend, instead of
        re-running the whole simulation.  The reuse store is keyed per
        (argument values, backend) so cache-shared results never serve
        another caller's run.
        """
        backend = self._resolve_backend(backend)
        key = (_args_signature(args), backend)
        runs = getattr(self, "_sim_runs", None)
        run = runs.get(key) if runs is not None else None
        if run is None:
            run = self.simulate(args, backend=backend)
        return run.report.instruction_counts

    def __getstate__(self):
        state = dict(self.__dict__)
        for name in _RUNTIME_ATTRS:
            state.pop(name, None)
        return state

    def __setstate__(self, state):
        # Disk-cache entries written by older versions predate the
        # remarks/cache_hits fields; default them on load.
        self.__dict__.update(state)
        self.__dict__.setdefault("remarks", [])
        self.__dict__.setdefault("cache_hits", 0)


def compile_source(source: str,
                   args: list[MType],
                   entry: str | None = None,
                   processor: "ProcessorDescription | str" = "vliw_simd_dsp",
                   options: CompilerOptions | None = None,
                   filename: str = "<string>",
                   use_cache: bool = True,
                   observer: "TraceSession | None" = None) \
        -> CompilationResult:
    """Compile MATLAB ``source`` for one entry-point signature.

    Args:
        source: MATLAB source text (one or more functions).
        args: entry-point argument types, built with :func:`arg`.
        entry: entry function name; defaults to the first function.
        processor: a ProcessorDescription or the name of a shipped one.
        options: pipeline switches; defaults to the full optimizer.
        filename: name used in diagnostics.
        use_cache: consult the content-addressed compilation cache
            (:mod:`repro.cache`).  Results are shared on a hit — treat
            them as immutable.
        observer: trace session to collect spans/counters/remarks into;
            defaults to the ambient session
            (:func:`repro.observe.trace.current`) or, when none is
            installed, a private one (so stage timings and remarks are
            always available on the result).
    """
    from repro import cache as _cache

    if isinstance(processor, str):
        processor = load_processor(processor)
    options = options or CompilerOptions()

    session = observer if observer is not None else obs_trace.current()
    if not session.enabled:
        session = TraceSession()
    remark_mark = len(session.remarks)

    with obs_trace.use(session):
        key = None
        if use_cache:
            key = _cache.cache_key(source, args, entry, processor,
                                   options, filename)
            cached = _cache.default_cache().get(key)
            if cached is not None:
                # Shared hit: stage_times/remarks keep describing the
                # original compile; only the hit marker advances.
                cached.cache_hits += 1
                return cached
        result = _compile_uncached(source, args, entry, processor,
                                   options, filename, session,
                                   remark_mark)
        if key is not None:
            _cache.default_cache().put(key, result)
    return result


def _compile_uncached(source, args, entry, processor, options, filename,
                      session, remark_mark) -> CompilationResult:
    times: dict[str, float] = {}
    session.event("compile.start", processor=processor.name,
                  mode=options.mode, filename=filename)
    with session.span("compile", "compile", processor=processor.name,
                      mode=options.mode) as total_span:
        with session.span("parse", "stage") as span:
            source_file = SourceFile(source, filename)
            program = parse(source, filename)
        times["parse"] = span.duration
        if entry is None:
            main = program.main_function()
            if main is None:
                raise ValueError(
                    "source defines no functions; scripts cannot "
                    "be compiled (wrap the code in a function)")
            entry = main.name

        with session.span("specialize", "stage") as span:
            sprog = specialize_program(program, entry, list(args),
                                       source_file)
        times["specialize"] = span.duration
        lowering_mode = "naive" if options.mode == "baseline" else "fused"
        with session.span("lower", "stage") as span:
            module = lower_program(sprog, mode=lowering_mode)
        times["lower"] = span.duration

        stats: dict[str, int] = {}
        if options.inline:
            from repro.ir.passes.inline import FunctionInlining
            with session.span("inline", "stage") as span:
                if FunctionInlining().run_module(module):
                    stats["inline"] = 1
            times["inline"] = span.duration
        if options.scalar_opt:
            with session.span("scalar-opt", "stage") as span:
                _merge_stats(stats, standard_pipeline().run(module))
            times["scalar-opt"] = span.duration

        if options.simd:
            with session.span("simd", "stage") as span:
                vectorizer = SimdVectorizer(processor)
                for func in module.functions:
                    if vectorizer.run(func):
                        stats["simd-vectorize"] = \
                            stats.get("simd-vectorize", 0) + 1
            times["simd"] = span.duration
        if options.complex_isel:
            with session.span("complex-isel", "stage") as span:
                selector = ComplexInstructionSelector(processor)
                for func in module.functions:
                    if selector.run(func):
                        stats["complex-select"] = \
                            stats.get("complex-select", 0) + 1
            times["complex-isel"] = span.duration
        if options.scalar_mac:
            with session.span("idiom-select", "stage") as span:
                mac = ScalarMacSelector(processor)
                clip = ClipSelector(processor)
                for func in module.functions:
                    if clip.run(func):
                        stats["clip-idiom"] = \
                            stats.get("clip-idiom", 0) + 1
                    if mac.run(func):
                        stats["scalar-mac"] = \
                            stats.get("scalar-mac", 0) + 1
            times["idiom-select"] = span.duration
        if options.scalar_opt:
            # CSE + cleanup after instruction selection (CSE before the
            # vectorizer would hide its loop patterns behind
            # temporaries).
            with session.span("cleanup", "stage") as span:
                _merge_stats(stats, cleanup_pipeline().run(module))
            times["cleanup"] = span.duration

    times["total"] = total_span.duration
    for stage, seconds in times.items():
        session.observe(f"compile.stage.{stage}_s", seconds)
    session.event("compile.done", entry=module.entry,
                  wall_s=round(total_span.duration, 6),
                  span_id=total_span.id)
    result = CompilationResult(module=module, sprog=sprog,
                               processor=processor, options=options,
                               source=source_file, pass_stats=stats,
                               stage_times=times,
                               remarks=list(
                                   session.remarks[remark_mark:]))
    result._trace = session
    return result


def _merge_stats(stats: dict[str, int], new: dict[str, int]) -> None:
    """Accumulate pipeline statistics additively (the standard and
    cleanup pipelines both report pass counts and per-function round
    counts; later runs add to earlier ones instead of overwriting)."""
    for name, count in new.items():
        stats[name] = stats.get(name, 0) + count
