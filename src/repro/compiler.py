"""Public compiler API.

One call does the whole flow of the paper's Figure-1 pipeline::

    from repro import compile_source, arg

    result = compile_source(matlab_source,
                            args=[arg((1, 256)), arg((1, 16))],
                            processor="vliw_simd_dsp")
    print(result.c_source())               # ANSI C with ASIP intrinsics
    outputs = result.simulate([x, h])      # cycle-accurate ASIP run

Stages: parse -> type/shape specialization (MATLAB Coder-style ``args``
specs) -> IR lowering -> scalar optimization -> SIMD vectorization +
complex/MAC instruction selection against the parameterized processor
description -> ANSI C emission with intrinsics.

``mode="baseline"`` instead produces the MATLAB-Coder-like comparator:
naive scalarized C with no target knowledge, measured on the same
processor model.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.asip.isa_library import load_processor
from repro.asip.model import ProcessorDescription
from repro.frontend.parser import parse
from repro.frontend.source import SourceFile
from repro.ir import nodes as ir
from repro.ir.builder import lower_program
from repro.ir.passes.manager import (
    PassManager,
    cleanup_pipeline,
    standard_pipeline,
)
from repro.semantics.inference import SpecializedProgram, specialize_program
from repro.semantics.shapes import Shape
from repro.semantics.types import DType, MType, dtype_from_name
from repro.vectorize.complexops import ComplexInstructionSelector
from repro.vectorize.idioms import ClipSelector, ScalarMacSelector
from repro.vectorize.simd import SimdVectorizer


def arg(shape: tuple[int, int] = (1, 1), dtype: str = "double",
        complex: bool = False, value: object = None) -> MType:
    """Describe one entry-point argument (like MATLAB Coder ``-args``).

    Args:
        shape: (rows, cols); scalars are (1, 1).
        dtype: MATLAB class name ('double', 'single', 'int16', ...).
        complex: True for complex-valued input.
        value: optional compile-time constant (scalars only) — the
            compiler will specialize on it.
    """
    numeric = dtype_from_name(dtype)
    if numeric is None:
        raise ValueError(f"unknown dtype {dtype!r}")
    rows, cols = shape
    return MType(numeric, complex, Shape(rows, cols), value)


@dataclass
class CompilerOptions:
    """Feature switches of the optimization pipeline (for ablations)."""

    mode: str = "optimized"          # "optimized" | "baseline"
    scalar_opt: bool = True          # folding/propagation/fusion/CSE/DCE
    inline: bool = True              # cross-function inlining
    simd: bool = True                # SIMD loop vectorization
    complex_isel: bool = True        # complex-arithmetic instructions
    scalar_mac: bool = True          # scalar MAC + clip idioms

    @staticmethod
    def baseline() -> "CompilerOptions":
        return CompilerOptions(mode="baseline", scalar_opt=False,
                               inline=False, simd=False,
                               complex_isel=False, scalar_mac=False)


#: Simulator backends accepted by :meth:`CompilationResult.simulate`.
SIM_BACKENDS = ("compiled", "reference")

#: Lazily-built per-result runtime state that must never be pickled
#: (the compiled program holds exec'd code objects) or shared through
#: the compilation cache's disk layer.
_RUNTIME_ATTRS = ("_compiled_program", "_last_sim_key", "_last_sim_result")


def _args_signature(args: list[object]) -> tuple:
    """Cheap value-identity token for one simulate() argument list."""
    parts = []
    for value in args:
        if isinstance(value, (bool, int, float, complex, np.generic)):
            parts.append(("s", type(value).__name__, repr(value)))
            continue
        array = np.asarray(value)
        digest = hashlib.sha256(
            np.ascontiguousarray(array).tobytes()).hexdigest()
        parts.append(("a", array.shape, array.dtype.str, digest))
    return tuple(parts)


@dataclass
class CompilationResult:
    """Everything produced for one entry point."""

    module: ir.IRModule
    sprog: SpecializedProgram
    processor: ProcessorDescription
    options: CompilerOptions
    source: SourceFile
    pass_stats: dict[str, int] = field(default_factory=dict)
    stage_times: dict[str, float] = field(default_factory=dict)

    @property
    def entry_name(self) -> str:
        return self.module.entry

    def c_source(self, with_main: bool = False) -> str:
        """Generated ANSI C (one translation unit, including intrinsics
        header content when emitted standalone)."""
        from repro.backend.emitter import emit_c
        return emit_c(self.module, self.processor, with_main=with_main)

    def intrinsics_header(self) -> str:
        from repro.asip.header_gen import generate_header
        return generate_header(self.processor)

    def compiled_program(self):
        """The compiled-closure executor for this module (built once)."""
        program = getattr(self, "_compiled_program", None)
        if program is None:
            from repro.sim.compiled import CompiledProgram
            program = CompiledProgram(self.module, self.processor)
            self._compiled_program = program
        return program

    def simulate(self, args: list[object], backend: str | None = None):
        """Run on the cycle-accurate ASIP model; returns ExecutionResult.

        Args:
            args: runtime argument values matching the compiled
                signature.
            backend: ``"compiled"`` (default; one-time translation to
                Python closures, reused across runs) or ``"reference"``
                (the tree-walking interpreter).  The default can be
                overridden with the ``REPRO_SIM_BACKEND`` environment
                variable.  Both backends produce identical outputs and
                identical cycle reports.
        """
        if backend is None:
            backend = os.environ.get("REPRO_SIM_BACKEND", "compiled")
        if backend == "compiled":
            result = self.compiled_program().run(args)
        elif backend == "reference":
            from repro.sim.machine import Simulator
            result = Simulator(self.module, self.processor).run(args)
        else:
            raise ValueError(
                f"unknown simulator backend {backend!r}; "
                f"expected one of {SIM_BACKENDS}")
        self._last_sim_key = _args_signature(args)
        self._last_sim_result = result
        return result

    def ir_dump(self) -> str:
        from repro.ir.printer import format_module
        return format_module(self.module)

    def instruction_mix(self, args: list[object]) -> dict[str, int]:
        """Custom-instruction counts for one input set.

        Reuses the most recent :meth:`simulate` result when it was
        produced from value-identical arguments instead of re-running
        the whole simulation.
        """
        key = _args_signature(args)
        if getattr(self, "_last_sim_key", None) != key:
            self.simulate(args)
        return self._last_sim_result.report.instruction_counts

    def __getstate__(self):
        state = dict(self.__dict__)
        for name in _RUNTIME_ATTRS:
            state.pop(name, None)
        return state


def compile_source(source: str,
                   args: list[MType],
                   entry: str | None = None,
                   processor: "ProcessorDescription | str" = "vliw_simd_dsp",
                   options: CompilerOptions | None = None,
                   filename: str = "<string>",
                   use_cache: bool = True) -> CompilationResult:
    """Compile MATLAB ``source`` for one entry-point signature.

    Args:
        source: MATLAB source text (one or more functions).
        args: entry-point argument types, built with :func:`arg`.
        entry: entry function name; defaults to the first function.
        processor: a ProcessorDescription or the name of a shipped one.
        options: pipeline switches; defaults to the full optimizer.
        filename: name used in diagnostics.
        use_cache: consult the content-addressed compilation cache
            (:mod:`repro.cache`).  Results are shared on a hit — treat
            them as immutable.
    """
    from repro import cache as _cache

    if isinstance(processor, str):
        processor = load_processor(processor)
    options = options or CompilerOptions()

    key = None
    if use_cache:
        key = _cache.cache_key(source, args, entry, processor, options,
                               filename)
        cached = _cache.default_cache().get(key)
        if cached is not None:
            return cached

    times: dict[str, float] = {}
    t_total = time.perf_counter()

    t0 = time.perf_counter()
    source_file = SourceFile(source, filename)
    program = parse(source, filename)
    times["parse"] = time.perf_counter() - t0
    if entry is None:
        main = program.main_function()
        if main is None:
            raise ValueError("source defines no functions; scripts cannot "
                             "be compiled (wrap the code in a function)")
        entry = main.name

    t0 = time.perf_counter()
    sprog = specialize_program(program, entry, list(args), source_file)
    times["specialize"] = time.perf_counter() - t0
    lowering_mode = "naive" if options.mode == "baseline" else "fused"
    t0 = time.perf_counter()
    module = lower_program(sprog, mode=lowering_mode)
    times["lower"] = time.perf_counter() - t0

    stats: dict[str, int] = {}
    if options.inline:
        from repro.ir.passes.inline import FunctionInlining
        t0 = time.perf_counter()
        if FunctionInlining().run_module(module):
            stats["inline"] = 1
        times["inline"] = time.perf_counter() - t0
    if options.scalar_opt:
        t0 = time.perf_counter()
        stats.update(standard_pipeline().run(module))
        times["scalar-opt"] = time.perf_counter() - t0

    if options.simd:
        t0 = time.perf_counter()
        vectorizer = SimdVectorizer(processor)
        for func in module.functions:
            if vectorizer.run(func):
                stats["simd-vectorize"] = stats.get("simd-vectorize", 0) + 1
        times["simd"] = time.perf_counter() - t0
    if options.complex_isel:
        t0 = time.perf_counter()
        selector = ComplexInstructionSelector(processor)
        for func in module.functions:
            if selector.run(func):
                stats["complex-select"] = stats.get("complex-select", 0) + 1
        times["complex-isel"] = time.perf_counter() - t0
    if options.scalar_mac:
        t0 = time.perf_counter()
        mac = ScalarMacSelector(processor)
        clip = ClipSelector(processor)
        for func in module.functions:
            if clip.run(func):
                stats["clip-idiom"] = stats.get("clip-idiom", 0) + 1
            if mac.run(func):
                stats["scalar-mac"] = stats.get("scalar-mac", 0) + 1
        times["idiom-select"] = time.perf_counter() - t0
    if options.scalar_opt:
        # CSE + cleanup after instruction selection (CSE before the
        # vectorizer would hide its loop patterns behind temporaries).
        t0 = time.perf_counter()
        stats.update(cleanup_pipeline().run(module))
        times["cleanup"] = time.perf_counter() - t0

    times["total"] = time.perf_counter() - t_total
    result = CompilationResult(module=module, sprog=sprog,
                               processor=processor, options=options,
                               source=source_file, pass_stats=stats,
                               stage_times=times)
    if key is not None:
        _cache.default_cache().put(key, result)
    return result
