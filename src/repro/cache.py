"""Content-addressed compilation cache.

Benchmark and service workloads compile the same kernel for the same
signature over and over (every pytest parametrization, every CLI
invocation in a sweep).  The pipeline is deterministic — the result is
a pure function of the MATLAB source, the argument signatures, the
entry point, the processor description and the option switches — so
``compile_source`` results can be memoized under a content hash of
exactly those inputs.

Two layers:

* an in-process LRU (:class:`CompilationCache`), always available;
* an optional on-disk pickle store (``cache_dir`` argument or the
  ``REPRO_CACHE_DIR`` environment variable) that survives process
  restarts and is shared between workers.

Cached :class:`~repro.compiler.CompilationResult` objects are shared
between callers; treat them as immutable (the compiler and both
simulator backends never mutate a finished module).

Concurrency protocol (the disk layer is shared by the parallel
compilation service's worker pool):

* **Writes are atomic.**  Every write serializes into a fresh unique
  temp file (``mkstemp`` in the destination directory, so the final
  ``os.replace`` never crosses a filesystem boundary) and publishes it
  with an atomic rename.  A concurrent reader therefore observes either
  no entry or a complete entry — never a partially serialized pickle.
* **Reads are lock-free.**  Readers just open the published path; the
  worst outcome of racing a writer is a miss.  A corrupt entry (e.g.
  version skew) is counted, unlinked, and treated as a miss.
* **Contention is counted, not blocked.**  When a writer finds the
  entry already published (another worker compiled the same key first),
  it still replaces it — the pipeline is deterministic, so the bytes
  are equivalent — and bumps ``disk_write_races`` so batch reports
  surface duplicated work instead of hiding it.

The in-memory LRU takes a plain ``threading.Lock`` around its mutations
so one :class:`CompilationCache` can back a thread-pooled caller.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.asip.model import ProcessorDescription
from repro.observe import trace as obs_trace
from repro.observe.remarks import ANALYSIS, Remark
from repro.semantics.types import MType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.compiler import CompilationResult, CompilerOptions

_OPTION_FIELDS = ("mode", "scalar_opt", "inline", "simd", "complex_isel",
                  "scalar_mac")

#: Cache-format version tag.  It salts every :func:`cache_key` and is
#: embedded in the on-disk pickle envelope, so a long-lived shared
#: ``REPRO_CACHE_DIR`` (service pools, the ``repro-serve`` daemon)
#: can never serve an entry written by an older code revision whose
#: pickle still *loads* but carries stale semantics.  Bump it whenever
#: the meaning of a cached :class:`CompilationResult` changes (IR
#: layout, emitter output, option semantics); skewed entries then read
#: as counted misses, never as wrong answers.
CACHE_SCHEMA = "repro-cache-v2"


def _arg_token(mtype: MType) -> str:
    shape = mtype.shape
    return (f"{mtype.dtype.value}:{int(mtype.is_complex)}:"
            f"{shape.rows}x{shape.cols}:{mtype.value!r}")


def cache_key(source: str,
              args: Iterable[MType],
              entry: str | None,
              processor: ProcessorDescription,
              options: "CompilerOptions",
              filename: str = "<string>") -> str:
    """Content hash identifying one compilation exactly.

    Anything that can change the produced module must be in here: the
    source text, every argument signature (dtype, complexness, shape,
    specialization value), the entry point, the processor fingerprint
    (name + cost table + instruction list) and every option switch.
    ``filename`` participates because it is baked into diagnostics
    carried by the result.  :data:`CACHE_SCHEMA` salts the hash so a
    revision that changes cached semantics addresses a disjoint key
    space from older on-disk entries.
    """
    hasher = hashlib.sha256()
    hasher.update(CACHE_SCHEMA.encode("ascii"))
    hasher.update(b"\x00")
    hasher.update(source.encode("utf-8"))
    hasher.update(b"\x00")
    for mtype in args:
        hasher.update(_arg_token(mtype).encode("utf-8"))
        hasher.update(b"\x00")
    hasher.update(repr(entry).encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(processor.fingerprint().encode("ascii"))
    hasher.update(b"\x00")
    for name in _OPTION_FIELDS:
        hasher.update(f"{name}={getattr(options, name)}".encode("utf-8"))
        hasher.update(b"\x00")
    hasher.update(filename.encode("utf-8"))
    return hasher.hexdigest()


class CompilationCache:
    """LRU of compilation results, optionally backed by a disk store."""

    def __init__(self, maxsize: int = 256,
                 cache_dir: "str | Path | None" = None):
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, CompilationResult]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0
        self.disk_reads = 0
        self.disk_writes = 0
        self.disk_write_races = 0
        self.disk_read_errors = 0
        self.disk_write_errors = 0
        self.disk_schema_skews = 0
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
        self.cache_dir = Path(cache_dir) if cache_dir else None

    # -- in-memory layer ----------------------------------------------

    def get(self, key: str) -> "CompilationResult | None":
        session = obs_trace.current()
        t0 = time.perf_counter()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if entry is not None:
            session.counter("cache.hit")
            session.observe("cache.mem_hit_s", time.perf_counter() - t0)
            return entry
        t1 = time.perf_counter()
        entry = self._disk_get(key)
        if entry is not None:
            with self._lock:
                self.hits += 1
                self.disk_hits += 1
            session.counter("cache.hit")
            session.counter("cache.disk_hit")
            session.observe("cache.disk_hit_s", time.perf_counter() - t1)
            self._remember(key, entry)
            return entry
        with self._lock:
            self.misses += 1
        session.counter("cache.miss")
        session.observe("cache.miss_s", time.perf_counter() - t0)
        return None

    def put(self, key: str, result: "CompilationResult") -> None:
        self._remember(key, result)
        self._disk_put(key, result)

    def _remember(self, key: str, result: "CompilationResult") -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            obs_trace.current().counter("cache.evict", evicted)

    # -- disk layer ----------------------------------------------------

    def _disk_path(self, key: str) -> "Path | None":
        if self.cache_dir is None:
            return None
        return self.cache_dir / key[:2] / f"{key}.pkl"

    def _disk_get(self, key: str) -> "CompilationResult | None":
        path = self._disk_path(key)
        if path is None or not path.is_file():
            return None
        try:
            with path.open("rb") as stream:
                envelope = pickle.load(stream)
            # Entries are published inside a schema-tagged envelope.
            # Anything else — a raw pre-envelope pickle, or an envelope
            # from a revision with a different CACHE_SCHEMA — unpickles
            # cleanly but must not be served: it is counted as a skew,
            # unlinked, and treated as a miss.
            if not (isinstance(envelope, dict)
                    and envelope.get("schema") == CACHE_SCHEMA):
                with self._lock:
                    self.disk_schema_skews += 1
                obs_trace.current().counter("cache.disk_schema_skew")
                try:
                    path.unlink()
                except OSError:
                    pass
                return None
            with self._lock:
                self.disk_reads += 1
            obs_trace.current().counter("cache.disk_read")
            return envelope["result"]
        except Exception as exc:
            # A corrupt or version-skewed entry behaves as a miss, but
            # never silently: corruption that goes uncounted looks like
            # a cold cache and hides real deployment problems.
            self._disk_error("read", path, exc)
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _disk_put(self, key: str, result: "CompilationResult") -> None:
        path = self._disk_path(key)
        if path is None:
            return
        t0 = time.perf_counter()
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # A fresh unique temp file per write: a shared pid-derived
            # name would let two writers of the same key interleave
            # their pickle streams and publish garbage.  mkstemp in the
            # destination directory keeps os.replace atomic (same
            # filesystem) and readers never see a partial entry.
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{key[:16]}.tmp.", dir=path.parent)
            try:
                with os.fdopen(fd, "wb") as stream:
                    pickle.dump({"schema": CACHE_SCHEMA, "result": result},
                                stream, pickle.HIGHEST_PROTOCOL)
                raced = path.exists()
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            with self._lock:
                self.disk_writes += 1
                if raced:
                    # Another worker published this key first; the
                    # pipeline is deterministic so replacing is
                    # harmless, but the duplicated compile is contention
                    # worth surfacing in batch reports.
                    self.disk_write_races += 1
            session = obs_trace.current()
            session.counter("cache.disk_write")
            session.observe("cache.disk_write_s",
                            time.perf_counter() - t0)
            if raced:
                session.counter("cache.disk_write_race")
        except Exception as exc:
            # Disk persistence is best-effort (the in-memory entry
            # already satisfies this process) but the failure is
            # counted and remarked so it shows up in metrics reports.
            self._disk_error("write", path, exc)

    def _disk_error(self, kind: str, path: Path, exc: Exception) -> None:
        """Record one disk-layer failure in the cache's own stats, the
        ambient trace session's counters, and an analysis remark."""
        with self._lock:
            if kind == "read":
                self.disk_read_errors += 1
            else:
                self.disk_write_errors += 1
        session = obs_trace.current()
        session.counter(f"cache.disk_{kind}_error")
        session.remark(Remark(
            kind=ANALYSIS, pass_name="cache",
            message=f"disk cache {kind} failed for {path.name}: "
                    f"{type(exc).__name__}: {exc}"))

    # -- maintenance ---------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.disk_hits = self.evictions = 0
            self.disk_reads = self.disk_writes = 0
            self.disk_write_races = 0
            self.disk_read_errors = self.disk_write_errors = 0
            self.disk_schema_skews = 0

    def __len__(self) -> int:
        # Same lock as every other accessor: an unlocked read could
        # observe the OrderedDict mid-resize under a concurrent writer.
        with self._lock:
            return len(self._entries)

    def peek(self, key: str) -> "CompilationResult | None":
        """Memory-layer-only lookup: no disk I/O, no hit/miss counting,
        no LRU reordering.  The serve daemon uses it to re-check for a
        concurrently-published entry while holding its own admission
        lock, where a full :meth:`get` (disk reads, stat skew) would be
        both slow and misleading."""
        with self._lock:
            return self._entries.get(key)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "disk_hits": self.disk_hits,
                    "evictions": self.evictions,
                    "disk_reads": self.disk_reads,
                    "disk_writes": self.disk_writes,
                    "disk_write_races": self.disk_write_races,
                    "disk_read_errors": self.disk_read_errors,
                    "disk_write_errors": self.disk_write_errors,
                    "disk_schema_skews": self.disk_schema_skews,
                    "size": len(self._entries)}


_default_cache = CompilationCache()

#: Serializes process-wide cache replacement.  The swap itself must be
#: atomic from the point of view of concurrent ``default_cache()``
#: callers: the new cache is fully constructed *before* the global is
#: rebound (one reference assignment, atomic in CPython), so an
#: in-flight reader observes either the complete old cache or the
#: complete new one — never a partially initialized object.  The lock
#: additionally keeps two concurrent ``configure()`` calls (a daemon
#: reconfigure racing a test fixture) from interleaving.
_configure_lock = threading.Lock()


def default_cache() -> CompilationCache:
    """The process-wide cache used by ``compile_source``."""
    return _default_cache


def configure(maxsize: "int | None" = None,
              cache_dir: "str | Path | None" = None) -> CompilationCache:
    """Replace the process-wide cache (tests, services with custom
    dirs).  Safe against in-flight ``default_cache()`` callers: they
    keep using the cache they already resolved; new callers see the
    replacement."""
    global _default_cache
    replacement = CompilationCache(
        maxsize=maxsize if maxsize is not None else 256,
        cache_dir=cache_dir)
    with _configure_lock:
        _default_cache = replacement
    return replacement


def clear() -> None:
    default_cache().clear()


def stats() -> dict[str, int]:
    return default_cache().stats()
