"""Aggregated batch results: one report for N workers' worth of work.

Each worker compiles in its own process with its own trace session and
cache; :class:`BatchResult` merges those observability streams back
into a single picture:

* **counters** are summed across jobs (plus batch-level counters for
  job statuses and retries);
* **cache statistics** are the sum of each job's *delta*, so
  ``hits + misses`` equals the number of compile attempts that
  actually ran — the add-up invariant the stress tests assert;
* **remarks** are concatenated in job submission order, each tagged
  with its job id;
* **trace spans** are re-based from each worker's private clock onto
  the parent timeline using the wall-clock origin the worker recorded
  at job start, and exported as one Chrome trace with one ``tid`` per
  worker process — a batch renders as parallel swimlanes in Perfetto.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.service.jobs import JobResult

BATCH_SCHEMA = "repro-batch-report-v1"


@dataclass
class BatchResult:
    """Everything produced by one :meth:`CompileService.compile_batch`."""

    results: "list[JobResult]"
    wall_s: float
    #: ``time.time()`` in the parent when the batch started (spans are
    #: re-based against this).
    wall_origin: float
    workers: int
    rebuilds: int = 0

    # -- convenience views ---------------------------------------------

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def by_status(self) -> "dict[str, int]":
        counts: dict[str, int] = {}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts

    def failed(self) -> "list[JobResult]":
        return [result for result in self.results if not result.ok]

    # -- aggregation ----------------------------------------------------

    def counters(self) -> "dict[str, int]":
        merged: dict[str, int] = {}
        for result in self.results:
            for name, value in result.counters.items():
                merged[name] = merged.get(name, 0) + value
        for status, count in self.by_status().items():
            merged[f"batch.jobs_{status}"] = count
        merged["batch.attempts"] = sum(r.attempts for r in self.results)
        merged["batch.rebuilds"] = self.rebuilds
        return merged

    def cache_stats(self) -> "dict[str, int]":
        merged: dict[str, int] = {}
        for result in self.results:
            for name, value in result.cache.items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def remarks(self) -> "list[dict]":
        out: list[dict] = []
        for result in self.results:
            for remark in result.remarks:
                tagged = dict(remark)
                tagged["job_id"] = result.job_id
                out.append(tagged)
        return out

    # -- exports --------------------------------------------------------

    def to_report(self) -> dict:
        """One JSON-serializable document for ``--metrics-json``."""
        return {
            "schema": BATCH_SCHEMA,
            "workers": self.workers,
            "wall_s": round(self.wall_s, 6),
            "rebuilds": self.rebuilds,
            "jobs": [result.to_dict() for result in self.results],
            "by_status": self.by_status(),
            "counters": self.counters(),
            "cache": self.cache_stats(),
        }

    def write_report(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_report(), handle, indent=2)
            handle.write("\n")

    def to_chrome_trace(self) -> dict:
        """All workers' spans on the parent timeline, one tid per
        worker pid, plus a parent-level span covering the batch."""
        events = [{
            "name": "batch", "cat": "service", "ph": "X",
            "ts": 0.0, "dur": round(self.wall_s * 1e6, 3),
            "pid": 1, "tid": 0,
            "args": {"workers": self.workers,
                     "jobs": len(self.results),
                     "rebuilds": self.rebuilds},
        }]
        for result in self.results:
            # Worker span starts are relative to the worker session's
            # origin == job start; re-base via the wall-clock offset
            # between job start and batch start.
            offset_s = max(result.wall_origin - self.wall_origin, 0.0)
            tid = result.worker_pid or 1
            for span in result.spans:
                events.append({
                    "name": span["name"],
                    "cat": span["category"],
                    "ph": "X",
                    "ts": round((offset_s + span["start_s"]) * 1e6, 3),
                    "dur": round(span["duration_s"] * 1e6, 3),
                    "pid": 1,
                    "tid": tid,
                    "args": dict(span["args"], job_id=result.job_id),
                })
        end_us = round(self.wall_s * 1e6, 3)
        for name, value in sorted(self.counters().items()):
            events.append({
                "name": name, "cat": "counter", "ph": "C",
                "ts": end_us, "pid": 1, "tid": 0,
                "args": {"value": value},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)
