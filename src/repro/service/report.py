"""Aggregated batch results: one report for N workers' worth of work.

Each worker compiles in its own process with its own trace session and
cache; :class:`BatchResult` merges those observability streams back
into a single picture:

* **counters** are summed across jobs (plus batch-level counters for
  job statuses and retries);
* **cache statistics** are the sum of each job's *delta*, so
  ``hits + misses`` equals the number of compile attempts that
  actually ran — the add-up invariant the stress tests assert;
* **remarks** are concatenated in job submission order, each tagged
  with its job id;
* **trace spans** are re-based from each worker's private clock onto
  the parent timeline using the wall-clock origin the worker recorded
  at job start, and exported as one Chrome trace with one ``tid`` per
  worker process — a batch renders as parallel swimlanes in Perfetto;
* **metric registries** (queue-wait/execution histograms, per-layer
  cache latencies, per-pass times) ship as
  :meth:`~repro.observe.telemetry.MetricsRegistry.snapshot` dicts in
  each result and merge associatively — the merged registry is
  bit-identical whether the batch ran on one worker or sixteen;
* **events** are re-based like spans, tagged with their job id, and
  exported as a JSONL stream whose ``span_id`` values join rows to the
  Chrome trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.observe.telemetry import MetricsRegistry
from repro.service.jobs import JobResult

BATCH_SCHEMA = "repro-batch-report-v2"


@dataclass
class BatchResult:
    """Everything produced by one :meth:`CompileService.compile_batch`."""

    results: "list[JobResult]"
    wall_s: float
    #: ``time.time()`` in the parent when the batch started (spans are
    #: re-based against this).
    wall_origin: float
    workers: int
    rebuilds: int = 0

    # -- convenience views ---------------------------------------------

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def by_status(self) -> "dict[str, int]":
        counts: dict[str, int] = {}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts

    def failed(self) -> "list[JobResult]":
        return [result for result in self.results if not result.ok]

    # -- aggregation ----------------------------------------------------

    def counters(self) -> "dict[str, int]":
        merged: dict[str, int] = {}
        for result in self.results:
            for name, value in result.counters.items():
                merged[name] = merged.get(name, 0) + value
        for status, count in self.by_status().items():
            merged[f"batch.jobs_{status}"] = count
        merged["batch.attempts"] = sum(r.attempts for r in self.results)
        merged["batch.rebuilds"] = self.rebuilds
        return merged

    def cache_stats(self) -> "dict[str, int]":
        merged: dict[str, int] = {}
        for result in self.results:
            for name, value in result.cache.items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def remarks(self) -> "list[dict]":
        out: list[dict] = []
        for result in self.results:
            for remark in result.remarks:
                tagged = dict(remark)
                tagged["job_id"] = result.job_id
                out.append(tagged)
        return out

    def metrics_registry(self) -> MetricsRegistry:
        """All workers' registry snapshots merged into one, plus the
        batch-level counters (job statuses, attempts, rebuilds).

        Merge is associative and order-independent, so the metric set —
        and every histogram's counts — is identical whether the batch
        ran under ``--jobs 1`` or ``--jobs 16``.
        """
        registry = MetricsRegistry()
        for result in self.results:
            if result.metrics:
                registry.merge(result.metrics)
        # Only the batch-level counters are added here: every per-job
        # counter already arrived inside its worker snapshot (adding
        # self.counters() wholesale would double-count them).
        for status, count in self.by_status().items():
            registry.counter(f"batch.jobs_{status}", count)
        registry.counter("batch.attempts",
                         sum(r.attempts for r in self.results))
        if self.rebuilds:
            registry.counter("batch.rebuilds", self.rebuilds)
        registry.gauge("batch.workers", self.workers)
        return registry

    def events(self) -> "list[dict]":
        """All workers' events on the parent timeline, tagged with
        their job id, in timestamp order."""
        out: list[dict] = []
        for result in self.results:
            offset_s = max(result.wall_origin - self.wall_origin, 0.0)
            for event in result.events:
                rebased = dict(event)
                rebased["ts_s"] = round(
                    offset_s + event.get("ts_s", 0.0), 6)
                rebased["job_id"] = result.job_id
                out.append(rebased)
        out.sort(key=lambda e: e.get("ts_s", 0.0))
        return out

    # -- exports --------------------------------------------------------

    def to_report(self) -> dict:
        """One JSON-serializable document for ``--metrics-json``."""
        registry = self.metrics_registry()
        return {
            "schema": BATCH_SCHEMA,
            "workers": self.workers,
            "wall_s": round(self.wall_s, 6),
            "rebuilds": self.rebuilds,
            "jobs": [result.to_dict() for result in self.results],
            "by_status": self.by_status(),
            "counters": self.counters(),
            "cache": self.cache_stats(),
            "metrics": {
                "snapshot": registry.snapshot(),
                "summary": registry.summaries(),
            },
        }

    def write_report(self, path: str) -> None:
        from repro.observe.metrics import atomic_write_text
        atomic_write_text(
            path, json.dumps(self.to_report(), indent=2) + "\n")

    def write_prometheus(self, path: str) -> None:
        """Prometheus text exposition of the merged batch registry."""
        from repro.observe.expo import write_prometheus
        write_prometheus(path, self.metrics_registry().snapshot())

    def write_events(self, path: str) -> None:
        """JSONL event stream (one object per line, parent timeline)."""
        from repro.observe.events import write_events_jsonl
        write_events_jsonl(path, self.events())

    def to_chrome_trace(self) -> dict:
        """All workers' spans on the parent timeline, one tid per
        worker pid, plus a parent-level span covering the batch."""
        events = [{
            "name": "batch", "cat": "service", "ph": "X",
            "ts": 0.0, "dur": round(self.wall_s * 1e6, 3),
            "pid": 1, "tid": 0,
            "args": {"workers": self.workers,
                     "jobs": len(self.results),
                     "rebuilds": self.rebuilds},
        }]
        for result in self.results:
            # Worker span starts are relative to the worker session's
            # origin == job start; re-base via the wall-clock offset
            # between job start and batch start.
            offset_s = max(result.wall_origin - self.wall_origin, 0.0)
            tid = result.worker_pid or 1
            for span in result.spans:
                events.append({
                    "name": span["name"],
                    "cat": span["category"],
                    "ph": "X",
                    "ts": round((offset_s + span["start_s"]) * 1e6, 3),
                    "dur": round(span["duration_s"] * 1e6, 3),
                    "pid": 1,
                    "tid": tid,
                    "args": dict(span["args"], job_id=result.job_id,
                                 span_id=span.get("id", 0)),
                })
        end_us = round(self.wall_s * 1e6, 3)
        for name, value in sorted(self.counters().items()):
            events.append({
                "name": name, "cat": "counter", "ph": "C",
                "ts": end_us, "pid": 1, "tid": 0,
                "args": {"value": value},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        from repro.observe.metrics import atomic_write_text
        atomic_write_text(
            path, json.dumps(self.to_chrome_trace(), indent=1) + "\n")
