"""Parallel compilation service: worker pool, crash isolation,
aggregated observability.

Public surface::

    from repro.service import CompileService, CompileJob

    with CompileService(jobs=8, timeout=30.0) as service:
        batch = service.compile_batch([
            CompileJob(job_id="fir.m", source=src,
                       args=["double:1x256", "double:1x16"]),
            ...
        ])
    assert batch.ok
    batch.write_report("batch.json")
"""

from repro.service.jobs import (CompileJob, JobResult, JOB_STATUSES,
                                next_job_id, resolve_processor)
from repro.service.pool import CompileService
from repro.service.report import BATCH_SCHEMA, BatchResult

__all__ = [
    "BATCH_SCHEMA",
    "BatchResult",
    "CompileJob",
    "CompileService",
    "JOB_STATUSES",
    "JobResult",
    "next_job_id",
    "resolve_processor",
]
