"""``repro-batch`` — the parallel batch compilation driver.

Examples::

    # Compile every example kernel over 8 workers (argument signatures
    # come from the manifest.json next to the sources)
    repro-batch compile 'examples/mlab/*.m' --jobs 8

    # Explicit ISA, per-job timeout, C output files, aggregated report
    repro-batch compile 'examples/mlab/*.m' --isa wide_simd_dsp \\
        --jobs 4 --timeout 30 --out-dir build/ \\
        --metrics-json batch.json --trace-json batch-trace.json

    # One signature for every file (bypasses the manifest)
    repro-batch compile kernels/*.m --args 'double:1x256,double:1x16'

Per-file argument signatures resolve in order: an explicit
``--manifest FILE``, a ``manifest.json`` sitting next to the source
file, then the ``--args`` fallback.  A manifest maps file names to
job fields::

    {"fir.m": {"args": "single:1x256,single:1x32", "entry": "fir"}}
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import traceback
from pathlib import Path

from repro.errors import EXIT_FAILURE, EXIT_INTERNAL, EXIT_OK
from repro.service.jobs import CompileJob
from repro.service.pool import CompileService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-batch",
        description="Parallel MATLAB-to-C batch compiler with crash "
                    "isolation, per-job timeouts, and an aggregated "
                    "observability report")
    sub = parser.add_subparsers(dest="command", required=True)

    compile_p = sub.add_parser(
        "compile", help="compile a set of .m files over a worker pool")
    compile_p.add_argument("patterns", nargs="+",
                           help="source files or glob patterns "
                                "(quote globs to let repro-batch "
                                "expand them)")
    compile_p.add_argument("--isa", "--processor", dest="processor",
                           default="vliw_simd_dsp",
                           help="target processor description name "
                                "(default vliw_simd_dsp)")
    compile_p.add_argument("--args", default=None,
                           help="argument signature applied to files "
                                "not covered by a manifest, e.g. "
                                "'double:1x256,double:1x16'")
    compile_p.add_argument("--manifest", default=None,
                           help="JSON file mapping source names to "
                                "{args, entry} (default: manifest.json "
                                "next to each source, when present)")
    compile_p.add_argument("--entry", default=None,
                           help="entry function name (default: first "
                                "function per file)")
    compile_p.add_argument("--baseline", action="store_true",
                           help="MATLAB-Coder-style baseline pipeline")
    compile_p.add_argument("--jobs", type=int, default=None,
                           help="worker process count "
                                "(default: CPU count)")
    compile_p.add_argument("--timeout", type=float, default=None,
                           help="per-job deadline in seconds")
    compile_p.add_argument("--retries", type=int, default=2,
                           help="crash retries per job (default 2)")
    compile_p.add_argument("--cache-dir", default=None,
                           help="shared on-disk compilation cache "
                                "(default: REPRO_CACHE_DIR)")
    compile_p.add_argument("--out-dir", default=None,
                           help="write one .c file per successful job "
                                "into this directory")
    compile_p.add_argument("--metrics-json", metavar="FILE", default=None,
                           help="write the aggregated batch report "
                                "to FILE")
    compile_p.add_argument("--trace-json", metavar="FILE", default=None,
                           help="write a merged Chrome trace (one "
                                "swimlane per worker) to FILE")
    compile_p.add_argument("--metrics-prom", metavar="FILE", default=None,
                           help="write the merged batch metrics as "
                                "Prometheus text exposition to FILE")
    compile_p.add_argument("--events-jsonl", metavar="FILE", default=None,
                           help="write the merged structured event log "
                                "(one JSON object per line) to FILE")
    compile_p.add_argument("--quiet", action="store_true",
                           help="only print the batch summary line")
    return parser


def _expand_patterns(patterns: "list[str]") -> "list[Path]":
    files: list[Path] = []
    for pattern in patterns:
        matches = sorted(glob.glob(pattern))
        if matches:
            files.extend(Path(m) for m in matches)
        elif os.path.exists(pattern):
            files.append(Path(pattern))
    seen: set[Path] = set()
    unique = []
    for path in files:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _load_manifest(path: Path) -> dict:
    with path.open() as handle:
        return json.load(handle)


def _job_fields(source: Path, options, manifests: dict) -> "dict | None":
    """Per-file {args, entry} from the manifest chain; None when the
    file has no signature anywhere."""
    if options.manifest:
        manifest = manifests.setdefault(
            "__explicit__", _load_manifest(Path(options.manifest)))
    else:
        key = source.parent
        if key not in manifests:
            side = key / "manifest.json"
            manifests[key] = _load_manifest(side) if side.is_file() else {}
        manifest = manifests[key]
    entry = dict(manifest.get(source.name, {}))
    if "args" not in entry and options.args is not None:
        entry["args"] = options.args
    if "args" not in entry:
        return None
    return entry


def _cmd_compile(options, parser) -> int:
    files = _expand_patterns(options.patterns)
    if not files:
        parser.error(f"no source files match {options.patterns!r}")

    manifests: dict = {}
    jobs: list[CompileJob] = []
    missing: list[str] = []
    for path in files:
        fields = _job_fields(path, options, manifests)
        if fields is None:
            missing.append(str(path))
            continue
        arg_specs = [s for s in str(fields["args"]).split(",") if s.strip()]
        jobs.append(CompileJob(
            job_id=path.name,
            source=path.read_text(),
            args=arg_specs,
            entry=fields.get("entry", options.entry),
            processor=options.processor,
            options={"mode": "baseline", "scalar_opt": False,
                     "inline": False, "simd": False,
                     "complex_isel": False, "scalar_mac": False}
            if options.baseline else {},
            filename=str(path),
            timeout=options.timeout))
    if missing:
        parser.error(
            "no argument signature for: " + ", ".join(missing) +
            " (add them to a manifest.json or pass --args)")

    with CompileService(jobs=options.jobs, timeout=options.timeout,
                        max_retries=options.retries,
                        cache_dir=options.cache_dir) as service:
        batch = service.compile_batch(jobs)

    out_dir = Path(options.out_dir) if options.out_dir else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    for result in batch.results:
        if result.ok and out_dir is not None:
            stem = Path(result.job_id).stem
            (out_dir / f"{stem}.c").write_text(result.c_source)
        if not options.quiet:
            if result.ok:
                print(f"ok      {result.job_id:<22} {result.entry_name} "
                      f"({result.wall_s * 1e3:.1f} ms, "
                      f"worker {result.worker_pid})")
            else:
                print(f"{result.status:<7} {result.job_id:<22} "
                      f"{result.detail}")

    if options.metrics_json:
        batch.write_report(options.metrics_json)
    if options.trace_json:
        batch.write_chrome_trace(options.trace_json)
    if options.metrics_prom:
        batch.write_prometheus(options.metrics_prom)
    if options.events_jsonl:
        batch.write_events(options.events_jsonl)

    counts = batch.by_status()
    summary = ", ".join(f"{counts[s]} {s}" for s in sorted(counts))
    print(f"{len(batch.results)} jobs over {batch.workers} workers "
          f"in {batch.wall_s:.2f}s: {summary}"
          + (f" ({batch.rebuilds} pool rebuilds)" if batch.rebuilds
             else ""))
    return EXIT_OK if batch.ok else EXIT_FAILURE


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    try:
        if options.command == "compile":
            return _cmd_compile(options, parser)
        parser.error(f"unknown command {options.command!r}")
    except SystemExit:
        raise
    except OSError as exc:
        print(f"repro-batch: error: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    except Exception:
        print("repro-batch: internal error:", file=sys.stderr)
        traceback.print_exc()
        return EXIT_INTERNAL
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
