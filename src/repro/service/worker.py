"""Worker-side execution of one :class:`CompileJob`.

Runs inside a ``ProcessPoolExecutor`` worker process.  Three
guarantees, in decreasing order of how much of the process survives:

* a compile **error** is caught and returned as a structured
  ``JobResult`` — the worker stays warm;
* a **timeout** is enforced in-process with ``SIGALRM`` (the executor
  runs jobs on the worker's main thread, so the alarm interrupts pure
  Python reliably) and also returned structurally;
* a worker **crash** (segfault, ``os._exit``, OOM kill) is the only
  case that escapes — the parent sees ``BrokenProcessPool`` and
  handles isolation/retry there.

The worker process owns a private in-memory LRU on top of the batch's
shared on-disk cache directory (configured once per worker by
:func:`init_worker`), so concurrent jobs contend only on the atomic
disk layer.
"""

from __future__ import annotations

import os
import signal
import time

from repro import cache as _cache
from repro.errors import ReproError
from repro.observe import trace as obs_trace
from repro.observe.trace import TraceSession
from repro.service.jobs import CompileJob, JobResult, resolve_processor


class _JobTimeout(Exception):
    """Raised by the SIGALRM handler when the per-job deadline fires."""


def _on_alarm(signum, frame):
    raise _JobTimeout()


def init_worker(cache_dir: "str | None", cache_size: int = 256) -> None:
    """Pool initializer: point this worker at the batch's shared disk
    cache (one in-memory LRU per worker, reused across its jobs) and
    at the sibling native ``.so`` store for ``warm_native`` jobs."""
    # Shed any signal plumbing inherited from the parent.  A worker
    # forked from an asyncio parent (the repro-serve daemon) inherits
    # its ``signal.set_wakeup_fd`` pipe and Python-level handlers; a
    # worker receiving SIGTERM (pool teardown uses terminate()) would
    # then write the signal byte into the *shared* pipe and the parent
    # loop would observe a phantom signal — observed as a daemon drain
    # aborting itself.  Workers must die silently and by default.
    if hasattr(signal, "set_wakeup_fd"):
        try:
            signal.set_wakeup_fd(-1)
        except (ValueError, OSError):
            pass
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):
            pass
    _cache.configure(maxsize=cache_size, cache_dir=cache_dir)
    if cache_dir:
        from repro import native
        native.configure(cache_dir=os.path.join(cache_dir, "native"))


def _apply_test_hook(hook: "str | None") -> None:
    """Fault injection for the concurrency test tier."""
    if not hook:
        return
    if hook == "crash":
        # Simulates a segfault/OOM kill: the process dies without
        # cleanup, so the parent's future gets BrokenProcessPool.
        os._exit(139)
    if hook == "hang":
        # Far past any sane deadline; the in-worker alarm (or, if the
        # job carries no timeout, the parent watchdog) must recover.
        time.sleep(3600.0)
    if hook == "exception":
        raise RuntimeError("injected worker exception (test hook)")
    raise ValueError(f"unknown test hook {hook!r}")


def _warm_native(compiled, session) -> None:
    """Best-effort: publish the job's native ``.so`` into the shared
    artifact store so later ``simulate(backend="native")`` callers open
    warm.  Never fails the job; a missing compiler or a build error is
    surfaced through the ``native.*`` counters the parent aggregates."""
    import shutil

    from repro import native
    from repro.native.abi import native_source

    if shutil.which("gcc") is None:
        session.counter("native.warm_skipped_no_cc")
        return
    try:
        source = native_source(compiled.module, compiled.processor)
        native.default_cache().warm(source)
    except Exception:
        # Build errors already counted as native.build_error by the
        # cache; anything else is still only a warming failure.
        session.counter("native.warm_failed")


def _simulate_job(job: CompileJob, compiled, result: JobResult,
                  session) -> None:
    """Run the compiled entry on deterministic seed-derived inputs and
    record the cycle count.  Cycle totals are a pure function of the
    job description, so a batch's counts are identical at any worker
    count — the merge-exactness the DSE engine's Pareto fronts build
    on."""
    from repro.sim.inputs import random_inputs

    t0 = time.perf_counter()
    inputs = random_inputs(compiled.module.entry_function,
                           job.simulate_seed)
    run = compiled.simulate(inputs, backend=job.simulate_backend)
    result.sim_wall_s = time.perf_counter() - t0
    result.cycles = run.report.total
    result.instruction_counts = dict(run.report.instruction_counts)
    session.observe("service.sim_s", result.sim_wall_s)
    session.counter("service.simulations")


def run_job(job: CompileJob, allow_test_hooks: bool = False) -> JobResult:
    """Execute one job; always returns (never raises) unless the
    process itself dies."""
    from repro.cli import parse_arg_spec
    from repro.compiler import CompilerOptions, compile_source

    wall_origin = time.time()
    t0 = time.perf_counter()
    session = TraceSession()
    cache_before = _cache.stats()

    result = JobResult(job_id=job.job_id, status="ok",
                       worker_pid=os.getpid(), wall_origin=wall_origin)
    if job.submitted_at is not None:
        # Queue wait is a cross-process wall-clock difference; clock
        # skew between parent and worker on one host is far below the
        # histogram bucket width, and negatives clamp to zero.
        result.queue_wait_s = max(0.0, wall_origin - job.submitted_at)
        session.observe("service.queue_wait_s", result.queue_wait_s)
    session.event("job.start", job_id=job.job_id,
                  worker_pid=result.worker_pid,
                  queue_wait_s=round(result.queue_wait_s, 6))
    alarm_set = False
    old_handler = None
    try:
        if job.timeout and hasattr(signal, "SIGALRM"):
            old_handler = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, job.timeout)
            alarm_set = True
        if allow_test_hooks:
            _apply_test_hook(job.test_hook)
        with obs_trace.use(session):
            specs = [parse_arg_spec(s) for s in job.args]
            compiled = compile_source(
                job.source, args=specs, entry=job.entry,
                processor=resolve_processor(job.processor),
                options=CompilerOptions(**job.options),
                filename=job.filename)
            result.c_source = compiled.c_source()
            if job.simulate_seed is not None:
                _simulate_job(job, compiled, result, session)
        result.entry_name = compiled.entry_name
        result.stage_times = dict(compiled.stage_times)
        result.pass_stats = dict(compiled.pass_stats)
        if job.warm_native:
            _warm_native(compiled, session)
    except _JobTimeout:
        result.status = "timeout"
        result.detail = (f"job exceeded its {job.timeout:.3g}s deadline "
                         "(killed by in-worker alarm)")
    except (ReproError, ValueError, KeyError) as exc:
        result.status = "error"
        result.error_type = type(exc).__name__
        result.detail = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # internal bug — still isolate it
        result.status = "error"
        result.error_type = type(exc).__name__
        result.detail = f"internal error: {type(exc).__name__}: {exc}"
    finally:
        if alarm_set:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)

    result.wall_s = time.perf_counter() - t0
    session.observe("service.exec_s", result.wall_s)
    session.counter(f"service.job_{result.status}")
    session.event("job.done", job_id=job.job_id, status=result.status,
                  wall_s=round(result.wall_s, 6))
    result.remarks = [remark.to_dict() for remark in session.remarks]
    result.spans = [span.to_dict() for span in session.spans]
    result.counters = dict(session.counters)
    result.metrics = session.metrics.snapshot()
    result.events = list(session.events)
    cache_after = _cache.stats()
    result.cache = {name: cache_after.get(name, 0) - before
                    for name, before in cache_before.items()
                    if name != "size"}
    return result
