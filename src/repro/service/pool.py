"""The parallel compilation service.

:class:`CompileService` fans :class:`CompileJob` batches out over a
``ProcessPoolExecutor`` and guarantees every job terminates in exactly
one structured :class:`JobResult` — no exceptions escape, no job is
lost, and no failure mode takes the service down:

* **Compile errors and timeouts** come back as structured results from
  the worker itself (see :mod:`repro.service.worker`); they are
  deterministic, so they are never retried.
* **Worker crashes** surface as ``BrokenProcessPool`` on every
  outstanding future (the executor cannot say which job killed it), so
  isolation is a scheduling problem: jobs are submitted in bounded
  waves, and any job carrying a crash strike is re-run *alone* in a
  single-job isolation round.  A crash there can only strike the
  guilty job; innocent bystanders of the original break are exonerated
  by succeeding in their own isolation rounds.  The pool is rebuilt
  with exponential backoff after each break, and a job whose strike
  count exceeds ``max_retries`` is finalized as ``crash``.
* **Stalls** (a worker wedged in something the alarm cannot interrupt,
  or a hung job with no deadline of its own) are caught by a parent
  watchdog: when no future completes for ``stall_grace`` seconds past
  the longest outstanding deadline, the pool is torn down and the
  in-flight jobs are treated like crashes (counted against the same
  budget, finalized as ``timeout``).

Results come back in submission order inside a
:class:`~repro.service.report.BatchResult` that merges every worker's
counters, remarks, trace spans (re-based onto the parent timeline) and
cache statistics into one aggregated report.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.service.jobs import CompileJob, JobResult
from repro.service.report import BatchResult
from repro.service.worker import init_worker, run_job

#: Upper bound on pool rebuilds per batch, over and above what the
#: per-job budgets already bound — a backstop against pathological
#: environments where fresh pools break without any job running.
_MAX_REBUILDS_SLACK = 4


class _JobState:
    """Parent-side bookkeeping for one job in flight."""

    __slots__ = ("job", "index", "attempts", "broken", "result")

    def __init__(self, job: CompileJob, index: int):
        self.job = job
        self.index = index
        self.attempts = 0      # times handed to a worker
        self.broken = 0        # crash/stall strikes
        self.result: "JobResult | None" = None


class CompileService:
    """Crash-isolated parallel compilation over a worker pool.

    Args:
        jobs: worker process count (default ``os.cpu_count()``).
        timeout: default per-job deadline in seconds, applied to jobs
            that do not carry their own (None = no deadline).
        max_retries: crash/stall strikes a job may accumulate before it
            is finalized as failed (its first run plus ``max_retries``
            re-runs).
        backoff: base seconds slept before rebuilding a broken pool;
            doubles per consecutive rebuild, capped at 2 s.
        cache_dir: shared on-disk compilation cache directory handed to
            every worker (None = workers inherit ``REPRO_CACHE_DIR``).
        cache_size: per-worker in-memory LRU size.
        stall_grace: seconds of batch-wide inactivity (past the longest
            outstanding job deadline) before the watchdog declares the
            pool wedged.
        allow_test_hooks: honor ``CompileJob.test_hook`` fault
            injection (concurrency tests only).
    """

    def __init__(self, jobs: "int | None" = None,
                 timeout: "float | None" = None,
                 max_retries: int = 2,
                 backoff: float = 0.05,
                 cache_dir: "str | None" = None,
                 cache_size: int = 256,
                 stall_grace: float = 60.0,
                 allow_test_hooks: bool = False):
        self.workers = max(1, jobs if jobs is not None
                           else (os.cpu_count() or 1))
        self.timeout = timeout
        self.max_retries = max(0, max_retries)
        self.backoff = backoff
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.cache_size = cache_size
        self.stall_grace = stall_grace
        self.allow_test_hooks = allow_test_hooks
        self._pool: "ProcessPoolExecutor | None" = None
        self._rebuilds = 0

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def close(self) -> None:
        self._teardown_pool(wait_for_workers=True)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=init_worker,
                initargs=(self.cache_dir, self.cache_size))
        return self._pool

    def _teardown_pool(self, wait_for_workers: bool = False) -> None:
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        # Kill lingering workers first: shutdown() alone would block on
        # a wedged job forever.
        processes = list(getattr(pool, "_processes", {}).values())
        for process in processes:
            try:
                process.terminate()
            except OSError:
                pass
        pool.shutdown(wait=wait_for_workers, cancel_futures=True)

    # -- submission -----------------------------------------------------

    def compile_batch(self, jobs: "list[CompileJob]") -> BatchResult:
        """Run every job; returns results in submission order.

        Every job terminates in exactly one JobResult regardless of
        worker crashes, timeouts, or stalls.
        """
        t0 = time.perf_counter()
        wall_origin = time.time()
        states = [_JobState(self._with_default_timeout(job), index)
                  for index, job in enumerate(jobs)]
        runnable = list(states)
        rebuilds = 0
        max_rebuilds = (len(states) * (self.max_retries + 1)
                        + _MAX_REBUILDS_SLACK)

        while runnable:
            # Clean jobs first (suspects sort to the back), submitted
            # in bounded waves so one break can only poison one wave.
            # Once only struck jobs remain, they run one per round: a
            # crash in an isolation round strikes nobody else, which is
            # what lets innocent bystanders of an earlier break finish
            # as ``ok`` while the poisoned job burns its own budget.
            runnable.sort(key=lambda s: (s.broken, s.index))
            if runnable[0].broken == 0:
                clean = sum(1 for s in runnable if s.broken == 0)
                wave = runnable[:min(clean, self.workers * 2)]
            else:
                wave = runnable[:1]
            rest = runnable[len(wave):]
            pool = self._ensure_pool()
            outstanding = {}
            for state in wave:
                # Stamped per submission (retries included) so the
                # worker's queue-wait histogram measures this attempt's
                # time in the pool queue, not time since first enqueue.
                state.job.submitted_at = time.time()
                outstanding[pool.submit(
                    run_job, state.job, self.allow_test_hooks)] = state
            for state in wave:
                state.attempts += 1
            runnable = rest
            broke = False

            while outstanding:
                done, _ = wait(set(outstanding),
                               timeout=self._stall_deadline(outstanding),
                               return_when=FIRST_COMPLETED)
                if not done:
                    self._mark_stalled(outstanding, runnable)
                    outstanding.clear()
                    broke = True
                    break
                for future in done:
                    state = outstanding.pop(future)
                    if future.cancelled():
                        # Never started (pool died before it ran):
                        # requeue without a strike.
                        runnable.append(state)
                        state.attempts -= 1
                        broke = True
                        continue
                    exc = future.exception()
                    if exc is None:
                        self._finish(state, future.result())
                    elif isinstance(exc, BrokenProcessPool):
                        self._strike(state, runnable, status="crash",
                                     detail="worker process died "
                                            "(BrokenProcessPool)")
                        broke = True
                    else:
                        self._strike(state, runnable, status="crash",
                                     detail=f"{type(exc).__name__}: {exc}")
                        broke = True

            if broke:
                self._teardown_pool()
                rebuilds += 1
                self._rebuilds += 1
                if rebuilds > max_rebuilds:
                    for state in runnable:
                        self._finalize(state, JobResult(
                            job_id=state.job.job_id, status="crash",
                            detail="pool rebuild budget exhausted",
                            attempts=state.attempts))
                    runnable = []
                elif runnable:
                    delay = min(self.backoff * (2 ** (rebuilds - 1)), 2.0)
                    time.sleep(delay)

        results = [state.result for state in states]
        return BatchResult(results=results, wall_s=time.perf_counter() - t0,
                           wall_origin=wall_origin, workers=self.workers,
                           rebuilds=rebuilds)

    def compile_sources(self, sources: "list[tuple[str, list[str]]]",
                        **job_fields) -> BatchResult:
        """Convenience wrapper: ``(source, arg_specs)`` pairs -> batch."""
        from repro.service.jobs import next_job_id

        jobs = [CompileJob(job_id=next_job_id(), source=source,
                           args=list(args), **job_fields)
                for source, args in sources]
        return self.compile_batch(jobs)

    # -- internals ------------------------------------------------------

    def _with_default_timeout(self, job: CompileJob) -> CompileJob:
        if job.timeout is None and self.timeout is not None:
            job.timeout = self.timeout
        return job

    def _stall_deadline(self, outstanding) -> "float | None":
        """Per-wait watchdog: longest outstanding job deadline plus
        grace.  None (wait forever) only when the batch carries no
        deadlines and the watchdog is disabled."""
        timeouts = [state.job.timeout for state in outstanding.values()]
        if self.stall_grace is None:
            return None
        longest = max((t for t in timeouts if t), default=0.0)
        return longest + self.stall_grace

    def _finish(self, state: _JobState, result: JobResult) -> None:
        result.attempts = state.attempts
        self._finalize(state, result)

    def _strike(self, state: _JobState, runnable: "list[_JobState]",
                status: str, detail: str) -> None:
        """One crash/stall strike; requeue or finalize."""
        state.broken += 1
        if state.broken <= self.max_retries:
            runnable.append(state)
            return
        self._finalize(state, JobResult(
            job_id=state.job.job_id, status=status,
            detail=f"{detail} ({state.broken} attempts)",
            attempts=state.attempts))

    def _mark_stalled(self, outstanding, runnable) -> None:
        for state in outstanding.values():
            self._strike(state, runnable, status="timeout",
                         detail="no completion before the stall "
                                "watchdog; worker killed")

    def _finalize(self, state: _JobState, result: JobResult) -> None:
        state.result = result
