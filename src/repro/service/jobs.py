"""Job and result records exchanged between the service and workers.

Everything that crosses the process boundary is built from plain data
(strings, numbers, dicts, lists) so pickling is cheap and version-skew
tolerant: a :class:`CompileJob` describes one compilation by *value*
(source text, textual argument specs, processor spec, option switches)
and a :class:`JobResult` carries the outcome plus the worker's
observability streams in already-serialized form.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

#: Terminal job states.
#:
#: * ``ok``       — compiled; ``c_source`` holds the generated C.
#: * ``error``    — the compile raised deterministically (bad source,
#:                  unknown dtype, ...).  Never retried.
#: * ``timeout``  — the per-job deadline fired (in-worker alarm) or the
#:                  parent watchdog killed a stalled worker.
#: * ``crash``    — the worker process died (segfault, ``os._exit``,
#:                  OOM kill) more times than the retry budget allows.
JOB_STATUSES = ("ok", "error", "timeout", "crash")

_job_ids = itertools.count(1)


def next_job_id(stem: str = "job") -> str:
    """Process-unique job id (``stem-N``)."""
    return f"{stem}-{next(_job_ids)}"


@dataclass
class CompileJob:
    """One compilation request, described entirely by value."""

    job_id: str
    source: str
    #: Textual argument specs (``"double:1x256"``, ``"cdouble:4x1"``),
    #: the same syntax the CLIs accept.
    args: list[str]
    entry: "str | None" = None
    #: Processor spec: a shipped description name, or
    #: ``"simd_width:N"`` for the parametric E6 family.
    processor: str = "vliw_simd_dsp"
    #: :class:`repro.compiler.CompilerOptions` field overrides
    #: (``{"mode": "baseline", "simd": False, ...}``); empty = full
    #: optimizer.
    options: dict = field(default_factory=dict)
    filename: str = "<string>"
    #: Per-job wall-clock deadline in seconds (None = no limit).
    timeout: "float | None" = None
    #: ``time.time()`` in the parent when the job was handed to the
    #: pool (set by the service at submission); the worker derives the
    #: queue-wait latency histogram from it.
    submitted_at: "float | None" = None
    #: Also build the native ``.so`` artifact into the shared native
    #: cache after compiling (benchmark/service pre-warm).  Best-effort:
    #: a missing host C compiler or a build failure is recorded in the
    #: result's counters, never fails the job.
    warm_native: bool = False
    #: When set, the worker also runs the compiled entry on
    #: deterministic random inputs drawn from this seed (see
    #: :mod:`repro.sim.inputs`) and reports the cycle count in
    #: ``JobResult.cycles``.  The design-space-exploration engine uses
    #: this to fan candidate evaluations out: cycle counts are a pure
    #: function of ``(program, processor, seed)``, so results are
    #: identical at any worker count.
    simulate_seed: "int | None" = None
    #: Simulation backend for ``simulate_seed`` (``compiled`` or
    #: ``reference``; both charge identical cycles).
    simulate_backend: str = "compiled"
    #: Fault-injection hook for the concurrency test tier; honored by
    #: the worker only when the service was built with
    #: ``allow_test_hooks=True``.  One of ``"crash"`` (``os._exit``),
    #: ``"hang"`` (sleep far past any deadline), ``"exception"``.
    test_hook: "str | None" = None


@dataclass
class JobResult:
    """Structured outcome of one job (never an exception)."""

    job_id: str
    status: str
    #: Generated C translation unit (``ok`` only).
    c_source: "str | None" = None
    entry_name: str = ""
    #: Human-readable failure detail (non-``ok``).
    detail: str = ""
    #: Exception class name for ``error`` results.
    error_type: str = ""
    #: Times the job was handed to a worker (1 = first try succeeded).
    attempts: int = 1
    worker_pid: int = 0
    #: Wall-clock seconds the final attempt spent in the worker.
    wall_s: float = 0.0
    #: Seconds the job sat in the pool queue before its final attempt
    #: started (0.0 when the parent recorded no submission time).
    queue_wait_s: float = 0.0
    #: ``time.time()`` in the worker when the attempt started; the
    #: parent uses it to re-base worker spans onto its own timeline.
    wall_origin: float = 0.0
    #: Total simulated cycle count (only when the job carried a
    #: ``simulate_seed``); deterministic for a given job description.
    cycles: "int | None" = None
    #: Custom-instruction execution counts from the simulated run
    #: (``simulate_seed`` jobs only).
    instruction_counts: dict = field(default_factory=dict)
    #: Wall-clock seconds of the simulation run (0.0 when the job did
    #: not simulate).
    sim_wall_s: float = 0.0
    stage_times: dict = field(default_factory=dict)
    pass_stats: dict = field(default_factory=dict)
    #: ``Remark.to_dict()`` records from the worker's trace session.
    remarks: list = field(default_factory=list)
    #: ``Span.to_dict()`` records from the worker's trace session.
    spans: list = field(default_factory=list)
    #: Worker trace-session counters accumulated while this job ran.
    counters: dict = field(default_factory=dict)
    #: Per-job *delta* of the worker's cache statistics, so summing
    #: across results gives batch-wide totals that add up.
    cache: dict = field(default_factory=dict)
    #: ``MetricsRegistry.snapshot()`` of the worker session while this
    #: job ran (queue-wait/execution histograms, per-layer cache
    #: latencies...); :class:`~repro.service.report.BatchResult` merges
    #: them associatively into one batch-wide registry.
    metrics: dict = field(default_factory=dict)
    #: Structured events from the worker session (JSONL rows after the
    #: parent re-bases and tags them).
    events: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "status": self.status,
            "entry": self.entry_name,
            "detail": self.detail,
            "error_type": self.error_type,
            "attempts": self.attempts,
            "worker_pid": self.worker_pid,
            "wall_s": round(self.wall_s, 6),
            "queue_wait_s": round(self.queue_wait_s, 6),
            "cycles": self.cycles,
            "sim_wall_s": round(self.sim_wall_s, 6),
            "stage_times_s": dict(self.stage_times),
            "pass_stats": dict(self.pass_stats),
            "remarks": list(self.remarks),
            "counters": dict(self.counters),
            "cache": dict(self.cache),
        }


def resolve_processor(spec: str):
    """Processor spec -> :class:`ProcessorDescription`.

    Accepts a shipped description name (``vliw_simd_dsp``), the
    parametric ``simd_width:N`` family used by the width-sweep
    benchmarks, or a ``dse:{...}`` design-point spec (JSON-encoded
    :class:`~repro.dse.space.DesignPoint` parameters) — the by-value
    form the design-space-exploration engine ships candidates to
    workers in.

    Raises :class:`~repro.errors.IsaError` (malformed parameter
    values, e.g. SIMD width 0 or a negative cycle cost), ``ValueError``
    (unparseable spec syntax) or ``KeyError`` (unknown shipped name).
    """
    from repro.asip.isa_library import load_processor, simd_dsp_with_width
    from repro.errors import IsaError

    if spec.startswith("simd_width:"):
        text = spec.split(":", 1)[1]
        try:
            width = int(text)
        except ValueError:
            raise IsaError(f"processor spec {spec!r}: SIMD width must "
                           f"be an integer, got {text!r}") from None
        return simd_dsp_with_width(width)
    if spec.startswith("dse:"):
        from repro.dse.space import DesignPoint
        return DesignPoint.from_spec(spec).processor()
    return load_processor(spec)
