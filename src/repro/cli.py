"""``repro-mc`` — the command-line compiler driver.

Examples::

    # Compile fir.m for the default SIMD ASIP and write fir.c
    repro-mc fir.m --args "double:1x256,double:1x16" -o fir.c

    # Baseline (MATLAB-Coder-style) code instead
    repro-mc fir.m --args "double:1x256,double:1x16" --baseline -o fir_base.c

    # Inspect the optimized IR and the selected custom instructions
    repro-mc fir.m --args "double:1x256,double:1x16" --dump-ir

    # List shipped processor descriptions
    repro-mc --list-processors
"""

from __future__ import annotations

import argparse
import os
import sys
import traceback

from repro.asip.isa_library import available_processors
from repro.compiler import CompilerOptions, arg as make_arg, compile_source
from repro.errors import (EXIT_FAILURE, EXIT_INTERNAL, EXIT_OK, IsaError,
                          ReproError)
from repro.observe import TraceSession, trace as obs_trace
from repro.observe.hotspots import annotate_source
from repro.observe.metrics import (build_report, write_chrome_trace,
                                   write_report)
from repro.semantics.types import dtype_from_name


def parse_arg_spec(spec: str):
    """Parse one ``dtype:RxC`` argument spec (``cdouble`` = complex)."""
    spec = spec.strip()
    if ":" in spec:
        dtype_name, shape_text = spec.split(":", 1)
    else:
        dtype_name, shape_text = spec, "1x1"
    dtype_name = dtype_name.strip()
    is_complex = dtype_name.startswith("c") and \
        dtype_from_name(dtype_name[1:]) is not None
    if is_complex:
        dtype_name = dtype_name[1:]
    if dtype_from_name(dtype_name) is None:
        raise ValueError(f"unknown dtype in argument spec {spec!r}")
    try:
        rows_text, cols_text = shape_text.lower().split("x")
        shape = (int(rows_text), int(cols_text))
    except ValueError:
        raise ValueError(f"bad shape in argument spec {spec!r}; "
                         "expected ROWSxCOLS") from None
    return make_arg(shape, dtype=dtype_name, complex=is_complex)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mc",
        description="Retargetable MATLAB-to-C compiler for ASIPs "
                    "(DATE 2016 reproduction)")
    parser.add_argument("source", nargs="?", help="MATLAB source file (.m)")
    parser.add_argument("--args", default="",
                        help="comma-separated entry argument specs, e.g. "
                             "'double:1x256,cdouble:1x64,double:1x1'")
    parser.add_argument("--entry", default=None,
                        help="entry function name (default: first function)")
    parser.add_argument("--processor", default="vliw_simd_dsp",
                        help="target processor: a shipped description "
                             "name, 'simd_width:N' for the parametric "
                             "SIMD family, or a 'dse:{...}' design-"
                             "point spec")
    parser.add_argument("--baseline", action="store_true",
                        help="MATLAB-Coder-style baseline pipeline")
    parser.add_argument("--no-simd", action="store_true",
                        help="disable SIMD vectorization")
    parser.add_argument("--no-complex", action="store_true",
                        help="disable complex-instruction selection")
    parser.add_argument("-o", "--output", default=None,
                        help="write generated C to this file "
                             "(default: stdout)")
    parser.add_argument("--dump-ir", action="store_true",
                        help="print the final IR instead of C")
    parser.add_argument("--simulate", action="store_true",
                        help="run the compiled entry on deterministic "
                             "random inputs and print the cycle report")
    parser.add_argument("--compare-baseline", action="store_true",
                        help="with --simulate: also run the baseline "
                             "pipeline and report the speedup")
    parser.add_argument("--seed", type=int, default=0,
                        help="random seed for --simulate inputs")
    parser.add_argument("--backend",
                        choices=["compiled", "reference", "native", "all"],
                        default=None,
                        help="execution backend for --simulate: 'compiled' "
                             "(default; one-time translation, fast), "
                             "'reference' (tree-walking interpreter), "
                             "'native' (emitted C built once into a "
                             "cached .so and called in-process; "
                             "host-hardware speed, no cycle accounting; "
                             "requires a host C compiler), or 'all' "
                             "(run every tier in one invocation and "
                             "compare wall times; native is skipped "
                             "when no host C compiler is available)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the content-addressed compilation "
                             "cache")
    parser.add_argument("--profile", action="store_true",
                        help="print per-stage compilation timing (and "
                             "simulation wall time with --simulate)")
    parser.add_argument("--trace-json", metavar="FILE",
                        default=os.environ.get("REPRO_TRACE") or None,
                        help="write a Chrome trace-event JSON of the "
                             "compile (and simulation) to FILE; loadable "
                             "in Perfetto / chrome://tracing (default: "
                             "the REPRO_TRACE environment variable)")
    parser.add_argument("--remarks", nargs="?", const="all", default=None,
                        metavar="PASS",
                        help="print optimization remarks to stderr; give "
                             "a pass name (e.g. simd-vectorize) to "
                             "filter, omit for all passes")
    parser.add_argument("--print-changed", action="store_true",
                        help="print the IR to stderr after every pass "
                             "that changed a function")
    parser.add_argument("--hotspots", action="store_true",
                        help="with --simulate: profile per-line cycles "
                             "and print an annotated-source hotspot "
                             "table")
    parser.add_argument("--metrics-json", metavar="FILE", default=None,
                        help="write a machine-readable JSON report of "
                             "compile/simulation metrics to FILE")
    parser.add_argument("--metrics-prom", metavar="FILE", default=None,
                        help="write the run's metric registry as "
                             "Prometheus text exposition format to FILE")
    parser.add_argument("--events-jsonl", metavar="FILE", default=None,
                        help="write the run's structured event log (one "
                             "JSON object per line; span_id fields join "
                             "rows to the Chrome trace) to FILE")
    parser.add_argument("--emit-header", action="store_true",
                        help="print only the intrinsics header")
    parser.add_argument("--list-processors", action="store_true",
                        help="list shipped processor descriptions")
    parser.add_argument("--describe-processor", action="store_true",
                        help="print the target's instruction table")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Exit codes are pinned (see :mod:`repro.errors`): 0 success,
    1 operational failure, 2 usage error (argparse), 3 internal error.
    """
    parser = build_parser()
    options = parser.parse_args(argv)
    try:
        return _run(options, parser)
    except SystemExit:
        raise
    except OSError as exc:
        # Unwritable --output/--trace-json/--metrics-json and friends.
        print(f"repro-mc: error: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    except Exception:
        print("repro-mc: internal error:", file=sys.stderr)
        traceback.print_exc()
        return EXIT_INTERNAL


def _run(options, parser) -> int:
    if options.list_processors:
        for name in available_processors():
            print(name)
        return EXIT_OK

    # Resolve the processor spec up front so every path (describe,
    # emit-header, compile) reports problems through the pinned
    # exit-code contract: an unknown shipped name is an operational
    # failure (EXIT_FAILURE, as ever), while a malformed parameter
    # value in a parametric spec (simd_width:0, a dse:{...} point with
    # a negative cycle cost) is a usage error (EXIT_USAGE) with the
    # sourced diagnostic — never a traceback.
    from repro.service.jobs import resolve_processor
    try:
        processor = resolve_processor(options.processor)
    except KeyError as exc:
        print(f"repro-mc: error: {exc.args[0]}", file=sys.stderr)
        return EXIT_FAILURE
    except (IsaError, ValueError) as exc:
        parser.error(str(exc))

    if options.describe_processor:
        print(processor.summary())
        return EXIT_OK
    if options.emit_header and options.source is None:
        from repro.asip.header_gen import generate_header
        text = generate_header(processor)
        _write_output(text, options.output)
        return EXIT_OK
    if options.source is None:
        parser.error("a MATLAB source file is required")
    if options.hotspots and not options.simulate:
        parser.error("--hotspots requires --simulate")
    if options.backend == "all" and not options.simulate:
        parser.error("--backend all requires --simulate")
    if options.backend in ("native", "all") and options.hotspots:
        parser.error("--hotspots needs cycle accounting on a single "
                     "backend (use --backend compiled or reference)")
    if options.backend in ("native", "all") and options.compare_baseline:
        parser.error("--compare-baseline reports cycle speedups on a "
                     "single backend (use --backend compiled or "
                     "reference)")

    try:
        with open(options.source) as handle:
            source = handle.read()
    except OSError as exc:
        print(f"repro-mc: cannot read {options.source}: {exc}",
              file=sys.stderr)
        return EXIT_FAILURE

    try:
        specs = [parse_arg_spec(s) for s in options.args.split(",") if s]
    except ValueError as exc:
        print(f"repro-mc: {exc}", file=sys.stderr)
        return EXIT_FAILURE

    # One explicit session spans compile and simulation when any
    # observability output was requested; otherwise stay on the
    # disabled ambient session (zero overhead beyond the compile's
    # own built-in event collection).
    observing = bool(options.trace_json or options.metrics_json
                     or options.metrics_prom or options.events_jsonl
                     or options.print_changed or options.profile)
    session = TraceSession() if observing else obs_trace.current()
    session.print_changed = options.print_changed

    pipeline = CompilerOptions.baseline() if options.baseline \
        else CompilerOptions(simd=not options.no_simd,
                             complex_isel=not options.no_complex)
    with obs_trace.use(session):
        try:
            result = compile_source(source, args=specs, entry=options.entry,
                                    processor=processor,
                                    options=pipeline,
                                    filename=options.source,
                                    use_cache=not options.no_cache)
        except (ReproError, ValueError) as exc:
            # ValueError covers script-only sources ("source defines no
            # functions") — a user error, not an internal one.
            print(f"repro-mc: error: {exc}", file=sys.stderr)
            return EXIT_FAILURE

        if options.remarks is not None:
            _print_remarks(result, options.remarks)
        if options.profile:
            _print_profile(result)

        status, run = EXIT_OK, None
        if options.simulate:
            status, run = _simulate(result, source, specs, options)
            if options.profile:
                _print_sim_latencies(session)

    if options.trace_json:
        write_chrome_trace(options.trace_json, session.to_chrome_trace())
    if options.metrics_json:
        write_report(options.metrics_json,
                     build_report(result=result, run=run, session=session))
    if options.metrics_prom:
        from repro.observe.expo import write_prometheus
        write_prometheus(options.metrics_prom, session.metrics.snapshot())
    if options.events_jsonl:
        from repro.observe.events import write_events_jsonl
        write_events_jsonl(options.events_jsonl, session.events)
    if options.simulate:
        return status

    if options.dump_ir:
        text = result.ir_dump()
    elif options.emit_header:
        text = result.intrinsics_header()
    else:
        text = result.c_source()
    _write_output(text, options.output)
    return EXIT_OK


def _print_remarks(result, which: str) -> None:
    """Print (optionally pass-filtered) optimization remarks to stderr."""
    filename = result.source.filename
    shown = 0
    for remark in result.remarks:
        if which not in ("all", remark.pass_name):
            continue
        print(remark.format(filename), file=sys.stderr)
        shown += 1
    if shown == 0:
        scope = "" if which == "all" else f" from pass {which!r}"
        print(f"repro-mc: no remarks{scope}", file=sys.stderr)


def _print_profile(result) -> None:
    """Per-stage compilation timing collected by compile_source."""
    if not result.stage_times:
        print("profile: (no stage timings recorded)")
        return
    hits = getattr(result, "cache_hits", 0)
    if hits:
        print(f"compilation profile (cache hit x{hits}; timings are "
              "from the original compile):")
    else:
        print("compilation profile:")
    for stage, seconds in result.stage_times.items():
        print(f"  {stage:<14} {seconds * 1e3:8.2f} ms")


def _simulate(result, source: str, specs, options):
    """Run the compiled entry on random inputs; print the cycle report.

    Returns ``(exit_status, ExecutionResult | None)`` so the caller can
    fold the run into ``--metrics-json``.
    """
    import time

    import numpy as np

    from repro.sim.inputs import random_inputs

    inputs = random_inputs(result.module.entry_function, options.seed)

    if options.backend == "all":
        return _simulate_all(result, inputs, options)

    t0 = time.perf_counter()
    try:
        run = result.simulate(inputs, backend=options.backend,
                              hotspots=options.hotspots)
    except (ReproError, ValueError) as exc:
        print(f"repro-mc: error: {exc}", file=sys.stderr)
        return EXIT_FAILURE, None
    sim_wall = time.perf_counter() - t0
    print(f"entry: {result.entry_name} on {result.processor.name} "
          f"(seed {options.seed})")
    if options.profile:
        backend = options.backend or "compiled"
        print(f"simulation wall time ({backend}): {sim_wall * 1e3:.2f} ms")
    if options.backend == "native":
        # The native tier runs the emitted C at host speed; it has no
        # cycle model, so report execution facts instead of cycles.
        from repro.native import stats as native_stats
        print(f"native run: {sim_wall * 1e3:.2f} ms wall "
              f"(cache: {native_stats()})")
        for index, value in enumerate(run.outputs):
            array = np.atleast_2d(np.asarray(value))
            print(f"  out{index}: shape {array.shape[0]}x{array.shape[1]} "
                  f"checksum {complex(array.astype(complex).sum()):.6g}")
        return EXIT_OK, run
    print(f"cycles: {run.report.total}")
    for category in sorted(run.report.by_category):
        print(f"  {category:<10} {run.report.by_category[category]}")
    if run.report.instruction_counts:
        print("custom instructions:")
        for name in sorted(run.report.instruction_counts):
            print(f"  {name:<20} x{run.report.instruction_counts[name]}")
    else:
        print("custom instructions: (none selected)")
    if options.hotspots:
        print()
        print(annotate_source(result.source, run.line_cycles))

    if options.compare_baseline:
        try:
            baseline = compile_source(source, args=specs,
                                      entry=options.entry,
                                      processor=result.processor,
                                      options=CompilerOptions.baseline(),
                                      use_cache=not options.no_cache)
            base_run = baseline.simulate(inputs, backend=options.backend)
        except (ReproError, ValueError) as exc:
            print(f"repro-mc: error: {exc}", file=sys.stderr)
            return EXIT_FAILURE, run
        speedup = base_run.report.total / max(run.report.total, 1)
        print(f"baseline cycles: {base_run.report.total}")
        print(f"speedup: {speedup:.2f}x")
    return EXIT_OK, run


def _simulate_all(result, inputs, options):
    """``--backend all``: run every execution tier on the same inputs
    and compare wall times; the cycle report comes from the compiled
    run (the reference and native tiers agree on values, not cycles).

    Returns ``(exit_status, ExecutionResult | None)`` like
    :func:`_simulate`; the returned run is the compiled-tier one.
    """
    import shutil
    import time

    import numpy as np

    print(f"entry: {result.entry_name} on {result.processor.name} "
          f"(seed {options.seed}, all backends)")
    # Cross-check tolerances mirror the fuzz oracle's table
    # (repro.fuzz.oracle._TOLERANCE): the reference tier differs from
    # the compiled one only by float64-vs-per-op-float32 evaluation
    # order, while the native tier additionally runs through the host
    # libm, whose single-precision results drift further from numpy's.
    single = any(np.asarray(v).dtype in (np.float32, np.complex64)
                 for v in inputs)
    rtols = {"reference": 2e-4 if single else 1e-9,
             "native": 2e-4 if single else 1e-7}
    first_run = None
    for backend in ("compiled", "reference", "native"):
        if backend == "native" and shutil.which("gcc") is None:
            print(f"  {backend:<10} skipped (no host C compiler)")
            continue
        t0 = time.perf_counter()
        try:
            run = result.simulate(inputs, backend=backend)
        except (ReproError, ValueError) as exc:
            print(f"repro-mc: error ({backend}): {exc}", file=sys.stderr)
            return EXIT_FAILURE, first_run
        wall = time.perf_counter() - t0
        cycles = run.report.total if run.report is not None else "-"
        print(f"  {backend:<10} {wall * 1e3:9.2f} ms wall   "
              f"cycles: {cycles}")
        if first_run is None:
            first_run = run
        else:
            rtol = rtols[backend]
            for mine, theirs in zip(first_run.outputs, run.outputs):
                if not np.allclose(np.asarray(mine), np.asarray(theirs),
                                   rtol=rtol, atol=rtol):
                    print(f"repro-mc: error: {backend} outputs diverge "
                          "from the compiled tier", file=sys.stderr)
                    return EXIT_FAILURE, first_run
    report = first_run.report
    print(f"cycles (compiled): {report.total}")
    for category in sorted(report.by_category):
        print(f"  {category:<10} {report.by_category[category]}")
    return EXIT_OK, first_run


def _print_sim_latencies(session) -> None:
    """Per-backend ``simulate()`` call latency digests (``--profile``)."""
    digests = {name: digest
               for name, digest in session.metrics.summaries().items()
               if name.startswith("sim.") and name.endswith(".run_s")
               and digest.get("count")}
    if not digests:
        return
    print("simulate-call latency by backend:")
    for name, digest in sorted(digests.items()):
        backend = name[len("sim."):-len(".run_s")]
        print(f"  {backend:<10} n={digest['count']} "
              f"mean={digest['mean_s'] * 1e3:.2f} ms "
              f"p50={digest['p50_s'] * 1e3:.2f} ms "
              f"p99={digest['p99_s'] * 1e3:.2f} ms")


def _write_output(text: str, path: str | None) -> None:
    if path is None:
        sys.stdout.write(text)
        if not text.endswith("\n"):
            sys.stdout.write("\n")
    else:
        with open(path, "w") as handle:
            handle.write(text)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
