"""Multi-way differential oracle.

Runs one MATLAB program through every available execution path and
compares the outputs:

* ``interp`` — the golden numpy-backed :class:`MatlabInterpreter`;
* ``reference`` — the tree-walking IR simulator;
* ``compiled`` — the compiled-closure simulator backend;
* ``gcc`` — the emitted ANSI C compiled by a host C compiler and
  executed (only when a compiler is on PATH).  Two harnesses: the
  default ``"native"`` builds one ``.so`` per program behind the
  content-addressed native artifact cache and calls it in-process
  (one compiler invocation per program, however many input points are
  evaluated); ``"exec"`` is the legacy text-mode path — a fresh
  main()-wrapper executable per call with inputs embedded and outputs
  parsed back from stdout — kept as a fallback and as a regression
  path for the printf round-trip itself.

The interpreter is the golden model: every other engine is compared
against it.  Comparison is NaN-aware (NaN positions must match
exactly; comparison happens on the non-NaN remainder, where matching
infinities pass) and dtype-aware (single-precision programs and the
printf-roundtripped gcc path get looser tolerances than pure-double
simulator runs).

``interp``-mode programs (growth-by-assignment, logical indexing,
matrix column iteration...) never reach the compiler; for those the
oracle runs interpreter-only consistency checks instead: determinism
across two runs, numpy warnings escalated to errors (silent value
corruption like complex-into-float stores shows up as a
``ComplexWarning``), and a metamorphic check that desugars matrix
``for`` iteration into explicit column indexing and demands identical
results (catches loop-variable aliasing bugs).
"""

from __future__ import annotations

import re
import shutil
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.compiler import CompilerOptions, compile_source
from repro.errors import UnsupportedFeatureError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse
from repro.frontend.source import Span
from repro.frontend.unparse import to_source
from repro.fuzz.generator import GeneratedProgram
from repro.mlab.interp import MatlabInterpreter
from repro.observe import trace as obs_trace

#: Engines compared against the interpreter in compile mode.
COMPILE_ENGINES = ("reference", "compiled", "gcc")

#: Relative tolerance per (dtype, engine-path) combination.  The
#: simulator backends compute in float64 except where the program is
#: declared single (then per-op float32 rounding applies); the gcc path
#: additionally round-trips values through printf/strtod and libm
#: implementations differ between the host and numpy.
_TOLERANCE = {
    ("double", "sim"): 1e-9,
    ("double", "gcc"): 1e-7,
    ("single", "sim"): 2e-4,
    ("single", "gcc"): 2e-4,
}


def have_gcc(cc: str = "gcc") -> bool:
    return shutil.which(cc) is not None


@dataclass
class Verdict:
    """Outcome of one oracle run."""

    #: 'ok' | 'divergence' | 'crash' | 'skip'
    status: str
    #: Engine (or check) that disagreed/crashed, '' for ok.
    engine: str = ""
    #: Human-readable detail of the disagreement or exception.
    detail: str = ""
    #: Stable bucket id for crash dedup: exception type + message
    #: prefix with numbers/names normalized out.
    bucket: str = ""
    #: Engines that actually executed.
    engines_run: tuple[str, ...] = ()
    #: Golden outputs (kept for reducers/tests; may be None on crash).
    golden: "list[object] | None" = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def interesting(self) -> bool:
        return self.status in ("divergence", "crash")

    def key(self) -> str:
        """Identity used by the reducer: a reduced candidate is
        interesting iff it reproduces the same key."""
        if self.status == "divergence":
            return f"divergence:{self.engine}"
        if self.status == "crash":
            return f"crash:{self.bucket}"
        return self.status


def _bucket(engine: str, exc: BaseException) -> str:
    """Stable crash-bucket id: exception type plus a normalized prefix
    of the message (identifiers and numbers blanked so the same defect
    with different variable names shares a bucket)."""
    text = str(exc)[:120]
    text = re.sub(r"'[^']*'", "'_'", text)
    text = re.sub(r"\d+(\.\d+)?", "#", text)
    return f"{engine}:{type(exc).__name__}:{text}"


# ----------------------------------------------------------------------
# Output comparison
# ----------------------------------------------------------------------


def _canon(value: object) -> np.ndarray:
    """Canonical 2-D complex128 array for comparison."""
    array = np.asarray(value)
    if array.ndim == 0:
        array = array.reshape(1, 1)
    elif array.ndim == 1:
        array = array.reshape(1, -1)
    return array.astype(np.complex128)


def compare_outputs(golden: list[object], candidate: list[object],
                    rtol: float) -> "str | None":
    """None when equivalent, else a description of the first mismatch."""
    if len(golden) != len(candidate):
        return (f"output arity differs: golden {len(golden)} vs "
                f"candidate {len(candidate)}")
    for index, (want, got) in enumerate(zip(golden, candidate)):
        a, b = _canon(want), _canon(got)
        if a.shape != b.shape:
            return (f"output {index}: shape {a.shape} vs {b.shape}")
        nan_a, nan_b = np.isnan(a), np.isnan(b)
        if not np.array_equal(nan_a, nan_b):
            return f"output {index}: NaN positions differ"
        mask = ~nan_a
        if not np.allclose(a[mask], b[mask], rtol=rtol,
                           atol=rtol, equal_nan=False):
            diff = np.abs(a[mask] - b[mask])
            worst = float(diff.max()) if diff.size else 0.0
            return (f"output {index}: max abs error {worst:.3e} "
                    f"exceeds rtol {rtol:.0e}")
    return None


def _program_dtype(program: GeneratedProgram) -> str:
    if any(spec[0] == "single" for spec in program.param_specs):
        return "single"
    if "single(" in program.source:
        return "single"
    return "double"


# ----------------------------------------------------------------------
# Metamorphic transform: desugar matrix column iteration
# ----------------------------------------------------------------------


def _desugar_matrix_for(program: ast.Program) -> "ast.Program | None":
    """Rewrite ``for v = M`` (matrix iterable) into an index-based loop
    ``for __j = 1:size(M, 2); v = M(:, __j); ...``.  Returns None when
    nothing was rewritten.  MATLAB semantics make the two forms
    equivalent; a divergence means column binding is broken (e.g. the
    loop variable aliasing the iterated matrix)."""
    span = Span.unknown()
    changed = False

    def walk(stmts: list[ast.Stmt]) -> list[ast.Stmt]:
        nonlocal changed
        out: list[ast.Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, ast.For):
                body = walk(stmt.body)
                if isinstance(stmt.iterable, ast.Identifier):
                    changed = True
                    j = f"__fz_{stmt.var}_j"
                    bind = ast.Assign(
                        span=span,
                        target=ast.Identifier(span=span, name=stmt.var),
                        value=ast.CallIndex(
                            span=span, target=stmt.iterable,
                            args=[ast.ColonAll(span=span),
                                  ast.Identifier(span=span, name=j)]))
                    out.append(ast.For(
                        span=span, var=j,
                        iterable=ast.Range(
                            span=span,
                            start=ast.NumberLit(span=span, value=1.0),
                            stop=ast.CallIndex(
                                span=span,
                                target=ast.Identifier(span=span,
                                                      name="size"),
                                args=[stmt.iterable,
                                      ast.NumberLit(span=span,
                                                    value=2.0)])),
                        body=[bind] + body))
                else:
                    out.append(ast.For(span=stmt.span, var=stmt.var,
                                       iterable=stmt.iterable, body=body))
            elif isinstance(stmt, ast.While):
                out.append(ast.While(span=stmt.span,
                                     condition=stmt.condition,
                                     body=walk(stmt.body)))
            elif isinstance(stmt, ast.If):
                out.append(ast.If(
                    span=stmt.span,
                    branches=[(cond, walk(body))
                              for cond, body in stmt.branches],
                    else_body=walk(stmt.else_body)))
            elif isinstance(stmt, ast.Switch):
                out.append(ast.Switch(
                    span=stmt.span, subject=stmt.subject,
                    cases=[(match, walk(body))
                           for match, body in stmt.cases],
                    otherwise=walk(stmt.otherwise)))
            else:
                out.append(stmt)
        return out

    functions = [ast.Function(span=f.span, name=f.name, params=f.params,
                              returns=f.returns, body=walk(f.body))
                 for f in program.functions]
    if not changed:
        return None
    return ast.Program(span=program.span, functions=functions,
                       script=program.script)


# ----------------------------------------------------------------------
# Oracle
# ----------------------------------------------------------------------


#: gcc-engine harnesses: ``"native"`` = in-process ``.so`` dispatch
#: (compile once per program), ``"exec"`` = per-call main()-wrapper
#: executable with printf/stdout output parsing.
GCC_HARNESSES = ("native", "exec")


class DifferentialOracle:
    """Runs programs through every engine and compares the results."""

    def __init__(self, engines: "tuple[str, ...] | list[str]" = None,
                 processor: str = "vliw_simd_dsp", cc: str = "gcc",
                 harness: str = "native"):
        if engines is None:
            engines = list(COMPILE_ENGINES)
        engines = [e for e in engines
                   if e != "gcc" or have_gcc(cc)]
        if harness not in GCC_HARNESSES:
            raise ValueError(
                f"unknown gcc harness {harness!r}; expected one of "
                f"{GCC_HARNESSES}")
        self.engines = tuple(engines)
        self.processor = processor
        self.cc = cc
        self.harness = harness

    # -- public ---------------------------------------------------------

    def run(self, program: GeneratedProgram) -> Verdict:
        session = obs_trace.current()
        session.counter("fuzz.programs")
        if program.mode == "interp":
            verdict = self._run_interp_mode(program)
        else:
            verdict = self._run_compile_mode(program)
        session.counter(f"fuzz.{verdict.status}")
        if verdict.interesting:
            session.event("fuzz.verdict", status=verdict.status,
                          engine=verdict.engine, bucket=verdict.bucket)
        return verdict

    def run_points(self, program: GeneratedProgram,
                   points: "list[list[object]]") -> "list[Verdict]":
        """Judge one compile-mode program on several input points.

        The translation unit is compiled **once** and every execution
        artifact (compiled-closure program, native ``.so``) is reused
        across points — with the default native harness that means one
        compiler invocation for the whole point set, not one per oracle
        call.  Returns one verdict per point, stopping early at the
        first interesting one.
        """
        session = obs_trace.current()
        session.counter("fuzz.programs")
        try:
            result = compile_source(
                program.source, args=program.arg_specs(),
                entry=program.entry, processor=self.processor,
                options=CompilerOptions(), use_cache=False)
        except UnsupportedFeatureError as exc:
            return [Verdict(status="skip", engine="compile",
                            detail=str(exc))]
        except Exception as exc:
            return [Verdict(status="crash", engine="compile",
                            detail=f"{type(exc).__name__}: {exc}",
                            bucket=_bucket("compile", exc))]
        verdicts: list[Verdict] = []
        for inputs in points:
            verdict = self._judge_point(result, program, inputs)
            verdicts.append(verdict)
            session.counter(f"fuzz.{verdict.status}")
            if verdict.interesting:
                break
        return verdicts

    def _judge_point(self, result, program: GeneratedProgram,
                     inputs: "list[object]",
                     golden: "list[object] | None" = None) -> Verdict:
        """Compare every engine against the interpreter on one point."""
        session = obs_trace.current()
        if golden is None:
            t0 = time.perf_counter()
            try:
                golden = MatlabInterpreter(program.source).call(
                    program.entry, list(inputs), nargout=program.nargout)
            except Exception as exc:
                return Verdict(status="crash", engine="interp",
                               detail=f"{type(exc).__name__}: {exc}",
                               bucket=_bucket("interp", exc))
            session.observe("fuzz.engine.interp_s",
                            time.perf_counter() - t0)
        dtype = _program_dtype(program)
        ran: list[str] = ["interp"]
        for engine in self.engines:
            t0 = time.perf_counter()
            try:
                outputs = self._run_engine(result, engine, list(inputs))
            except Exception as exc:
                return Verdict(status="crash", engine=engine,
                               detail=f"{type(exc).__name__}: {exc}",
                               bucket=_bucket(engine, exc),
                               engines_run=tuple(ran), golden=golden)
            session.observe(f"fuzz.engine.{engine}_s",
                            time.perf_counter() - t0)
            ran.append(engine)
            path = "gcc" if engine == "gcc" else "sim"
            rtol = _TOLERANCE[(dtype, path)]
            mismatch = compare_outputs(golden, outputs, rtol)
            if mismatch is not None:
                return Verdict(status="divergence", engine=engine,
                               detail=mismatch, engines_run=tuple(ran),
                               golden=golden)
        return Verdict(status="ok", engines_run=tuple(ran),
                       golden=golden)

    # -- compile mode ---------------------------------------------------

    def _golden(self, program: GeneratedProgram) -> list[object]:
        interp = MatlabInterpreter(program.source)
        return interp.call(program.entry, program.inputs(),
                           nargout=program.nargout)

    def _run_compile_mode(self, program: GeneratedProgram) -> Verdict:
        try:
            golden = self._golden(program)
        except Exception as exc:
            return Verdict(status="crash", engine="interp",
                           detail=f"{type(exc).__name__}: {exc}",
                           bucket=_bucket("interp", exc))

        try:
            result = compile_source(
                program.source, args=program.arg_specs(),
                entry=program.entry, processor=self.processor,
                options=CompilerOptions(), use_cache=False)
        except UnsupportedFeatureError as exc:
            return Verdict(status="skip", engine="compile",
                           detail=str(exc), golden=golden)
        except Exception as exc:
            return Verdict(status="crash", engine="compile",
                           detail=f"{type(exc).__name__}: {exc}",
                           bucket=_bucket("compile", exc), golden=golden)

        return self._judge_point(result, program, program.inputs(),
                                 golden=golden)

    def _run_engine(self, result, engine: str,
                    inputs: "list[object]") -> list[object]:
        if engine == "gcc":
            if self.harness == "exec":
                from repro.backend.harness import run_via_gcc
                return run_via_gcc(result, inputs, cc=self.cc)
            return result.native_program(cc=self.cc).run(inputs).outputs
        return result.simulate(inputs, backend=engine).outputs

    # -- interpreter-only mode ------------------------------------------

    def _run_interp_mode(self, program: GeneratedProgram) -> Verdict:
        # Warnings escalated to errors: numpy flags the silent value
        # corruption class (ComplexWarning for complex-into-float
        # stores, overflow/invalid casts) that plain comparison between
        # two identical interpreter runs can never see.
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                golden = self._golden(program)
        except Warning as exc:
            return Verdict(status="divergence", engine="interp-warn",
                           detail=f"{type(exc).__name__}: {exc}",
                           bucket=_bucket("interp-warn", exc))
        except Exception as exc:
            return Verdict(status="crash", engine="interp",
                           detail=f"{type(exc).__name__}: {exc}",
                           bucket=_bucket("interp", exc))

        # Determinism: a second run must be bit-identical.
        second = self._golden(program)
        mismatch = compare_outputs(golden, second, rtol=0.0)
        if mismatch is not None:
            return Verdict(status="divergence", engine="interp-rerun",
                           detail=mismatch, golden=golden)

        # Metamorphic: matrix-for desugared to explicit column indexing
        # must agree exactly (same numpy ops in the same order).
        desugared = _desugar_matrix_for(parse(program.source))
        if desugared is not None:
            try:
                alt = MatlabInterpreter(to_source(desugared)).call(
                    program.entry, program.inputs(),
                    nargout=program.nargout)
            except Exception as exc:
                return Verdict(status="crash", engine="interp-desugar",
                               detail=f"{type(exc).__name__}: {exc}",
                               bucket=_bucket("interp-desugar", exc),
                               golden=golden)
            mismatch = compare_outputs(golden, alt, rtol=0.0)
            if mismatch is not None:
                return Verdict(status="divergence",
                               engine="interp-desugar", detail=mismatch,
                               golden=golden)
        return Verdict(status="ok", engines_run=("interp",),
                       golden=golden)
