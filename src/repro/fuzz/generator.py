"""Seeded random MATLAB program generator.

Emits *well-typed* programs over the compiler-supported subset: every
variable has a concrete shape, dtype (double/single), and complexness
tracked during generation, so the programs survive shape/type inference
and the four execution paths can be compared on them.

Two modes:

* ``compile`` — only constructs the compiler accepts: static shapes,
  preallocated arrays, scalar/vector/matrix arithmetic, ranges,
  ``end``-relative indexing, for/while/if/switch, user-defined
  subfunctions (single- and multi-return, called with scalar and
  matrix arguments), the builtin and library inventory shared by the
  inferencer and the interpreter.
* ``interp`` — additionally exercises the golden interpreter's more
  permissive features that never reach codegen: growth-by-assignment
  (``g = []; g(k) = ...``), logical indexing, anonymous functions, and
  matrix column iteration.

Floating-point discipline: branch conditions, loop bounds, and switch
subjects are built only from *exact* expressions — values guaranteed
bit-identical across numpy, the two simulator backends, and compiled C
(no reductions with engine-specific summation order, no libm calls, no
mixed single/double arithmetic).  Everything else may differ by ulps
between engines and is judged by the oracle's tolerance instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.frontend import ast_nodes as ast
from repro.frontend.source import Span
from repro.frontend.unparse import to_source

_SPAN = Span.unknown()


def _num(value: float) -> ast.NumberLit:
    return ast.NumberLit(span=_SPAN, value=float(value))


def _name(name: str) -> ast.Identifier:
    return ast.Identifier(span=_SPAN, name=name)


def _call(fn: str, *args: ast.Expr) -> ast.CallIndex:
    return ast.CallIndex(span=_SPAN, target=_name(fn), args=list(args))


def _bin(op: str, left: ast.Expr, right: ast.Expr) -> ast.BinaryOp:
    return ast.BinaryOp(span=_SPAN, op=op, left=left, right=right)


def _assign(target: ast.Expr, value: ast.Expr) -> ast.Assign:
    return ast.Assign(span=_SPAN, target=target, value=value)


# ----------------------------------------------------------------------
# Value facts tracked per variable / expression
# ----------------------------------------------------------------------


@dataclass
class Info:
    """Static facts about one variable or generated expression."""

    rows: int
    cols: int
    dtype: str = "double"      # 'double' | 'single'
    is_complex: bool = False
    #: True when every engine computes the value bit-identically
    #: (safe to branch on).
    exact: bool = True

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def is_scalar(self) -> bool:
        return self.rows == 1 and self.cols == 1

    @property
    def is_vector(self) -> bool:
        return (self.rows == 1 or self.cols == 1) and not self.is_scalar

    @property
    def numel(self) -> int:
        return self.rows * self.cols

    def merged(self, other: "Info", exact_op: bool = True) -> "Info":
        """Facts for an elementwise combination of two operands."""
        rows, cols = self.shape if not self.is_scalar else other.shape
        dtype = "single" if "single" in (self.dtype, other.dtype) \
            else "double"
        mixed = self.dtype != other.dtype
        return Info(rows, cols, dtype,
                    self.is_complex or other.is_complex,
                    self.exact and other.exact and exact_op and not mixed)


@dataclass
class SubFunction:
    """One generated subfunction plus the facts call sites need.

    ``kind`` is ``'expr'`` for a shape-polymorphic elementwise body
    (call sites may pick any argument shape, so one program can force
    several type specializations of the same function) or ``'stmt'``
    for a fixed-signature body built from the full statement grammar
    (while loops, branches, indexed stores).
    """

    name: str
    kind: str
    params: list[str]
    param_infos: list[Info]
    returns: list[str]
    return_infos: list[Info]
    node: ast.Function


@dataclass
class GeneratedProgram:
    """One generated program plus everything needed to execute it."""

    source: str
    entry: str
    mode: str                         # 'compile' | 'interp'
    seed: int
    #: (dtype, is_complex, rows, cols) per entry-point argument.
    param_specs: list[tuple[str, bool, int, int]]
    #: Input values as nested lists (JSON-serializable; complex values
    #: stored as [re, im] pairs).
    input_values: list[object]
    nargout: int
    returns: list[str] = field(default_factory=list)

    def arg_specs(self):
        """Compiler ``arg()`` descriptions of the parameters."""
        from repro.compiler import arg
        return [arg((rows, cols), dtype=dtype, complex=cplx)
                for dtype, cplx, rows, cols in self.param_specs]

    def inputs(self) -> list[object]:
        """Concrete numpy/scalar inputs matching the parameters."""
        values: list[object] = []
        for (dtype, cplx, rows, cols), stored in zip(self.param_specs,
                                                     self.input_values):
            array = np.array(stored, dtype=np.float64)
            if cplx:
                array = array[..., 0] + 1j * array[..., 1]
            array = array.reshape(rows, cols)
            if dtype == "single":
                array = array.astype(
                    np.complex64 if cplx else np.float32)
            if rows == 1 and cols == 1 and not cplx:
                values.append(float(array[0, 0]))
            else:
                values.append(array)
        return values

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "entry": self.entry,
            "mode": self.mode,
            "seed": self.seed,
            "param_specs": [list(p) for p in self.param_specs],
            "input_values": self.input_values,
            "nargout": self.nargout,
            "returns": list(self.returns),
        }

    @staticmethod
    def from_dict(data: dict) -> "GeneratedProgram":
        return GeneratedProgram(
            source=data["source"], entry=data["entry"], mode=data["mode"],
            seed=int(data.get("seed", 0)),
            param_specs=[tuple(p) for p in data["param_specs"]],
            input_values=data["input_values"],
            nargout=int(data["nargout"]),
            returns=list(data.get("returns", [])),
        )


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------

#: Elementwise single-argument builtins over real data, split by
#: whether every engine computes them bit-identically (no libm).
_EXACT_ELEMWISE = ("abs", "floor", "ceil", "round", "fix", "sign")
_LIBM_ELEMWISE = ("sin", "cos", "atan", "exp")


class ProgramGenerator:
    """Generates one random well-typed program per :meth:`generate`."""

    def __init__(self, seed: int, mode: str = "compile",
                 max_stmts: int = 10):
        if mode not in ("compile", "interp"):
            raise ValueError(f"unknown fuzz mode {mode!r}")
        self.seed = seed
        self.mode = mode
        self.max_stmts = max_stmts
        self.rng = random.Random(seed)
        self.env: dict[str, Info] = {}
        #: Subfunctions available to call from the entry body, and the
        #: subset that has actually been called so far.
        self.subfns: list[SubFunction] = []
        self._called: set[str] = set()
        #: True while a subfunction body is being generated: no nested
        #: user calls (the compiler rejects recursion, and call-in-call
        #: chains add nothing the entry-level calls don't already test).
        self._in_subfn = False
        #: Names that must never be written: parameters (emitted C
        #: passes them as const arrays) and live loop variables /
        #: while counters (reassignment breaks termination).
        self.protected: set[str] = set()
        self._counter = 0
        #: Nesting depth of loop bodies currently being generated.
        #: Inside a loop, ``.^`` exponents are capped at 1 — repeated
        #: squaring across iterations blows magnitudes past the dtype
        #: range and turns every comparison into inf-vs-inf noise.
        self._in_loop = 0

    # -- public ---------------------------------------------------------

    def generate(self) -> GeneratedProgram:
        rng = self.rng
        self.env = {}
        self.protected = set()
        self._counter = 0
        entry = f"fz{self.seed & 0xFFFF}"

        self.subfns = self._gen_subfunctions()
        self._called = set()

        params: list[tuple[str, Info]] = []
        for index in range(rng.randint(1, 3)):
            info = self._random_param_info()
            name = f"p{index}"
            self.env[name] = info
            self.protected.add(name)
            params.append((name, info))

        body: list[ast.Stmt] = []
        # Guarantee at least one derived variable before control flow.
        body.extend(self._gen_new_assign())
        target = rng.randint(3, self.max_stmts)
        guard = 0
        while len(body) < target and guard < 4 * target:
            guard += 1
            stmt = self._gen_stmt(depth=0)
            if stmt is not None:
                body.extend(stmt)
        # Every generated subfunction must be reached at least once, or
        # the differential run would never execute it.
        for sub in self.subfns:
            if sub.name not in self._called:
                body.extend(self._gen_call_to(sub))

        returns = self._pick_returns()
        func = ast.Function(span=_SPAN, name=entry,
                            params=[name for name, _ in params],
                            returns=returns, body=body)
        functions = [func] + [sub.node for sub in self.subfns]
        if self.subfns and rng.random() < 0.5:
            # Exercise entry-by-name selection: the entry function is
            # not always first in the file.
            rng.shuffle(functions)
        program = ast.Program(span=_SPAN, functions=functions)
        source = to_source(program)

        param_specs = [(info.dtype, info.is_complex, info.rows, info.cols)
                       for _, info in params]
        input_values = [self._random_input(info) for _, info in params]
        return GeneratedProgram(
            source=source, entry=entry, mode=self.mode, seed=self.seed,
            param_specs=param_specs, input_values=input_values,
            nargout=len(returns), returns=returns)

    # -- parameters and inputs -----------------------------------------

    def _random_param_info(self) -> Info:
        rng = self.rng
        shape = rng.choice([(1, 1), (1, rng.randint(2, 6)),
                            (rng.randint(2, 5), 1),
                            (rng.randint(2, 4), rng.randint(2, 4))])
        dtype = "single" if rng.random() < 0.15 else "double"
        is_complex = dtype == "double" and rng.random() < 0.15
        return Info(shape[0], shape[1], dtype, is_complex)

    def _quantized(self) -> float:
        """A value exactly representable in both float32 and float64."""
        return self.rng.randint(-128, 128) / 32.0

    def _random_input(self, info: Info) -> object:
        flat = []
        for _ in range(info.numel):
            if info.is_complex:
                flat.append([self._quantized(), self._quantized()])
            else:
                flat.append(self._quantized())
        return flat

    def _pick_returns(self) -> list[str]:
        candidates = [name for name in self.env
                      if not name.startswith("p")] or list(self.env)
        self.rng.shuffle(candidates)
        return sorted(candidates[:self.rng.randint(1, min(3,
                                                          len(candidates)))])

    # -- statements -----------------------------------------------------

    def _fresh(self, prefix: str = "v") -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _gen_stmt(self, depth: int) -> "list[ast.Stmt] | None":
        rng = self.rng
        makers = [(4, self._gen_new_assign), (3, self._gen_reassign),
                  (3, self._gen_indexed_store)]
        if depth < 2:
            makers += [(2, self._gen_if), (2, self._gen_for),
                       (1, self._gen_while), (1, self._gen_switch)]
        if self.subfns and not self._in_subfn:
            makers += [(3, self._gen_user_call)]
        if self.mode == "interp":
            makers += [(2, self._gen_growth), (1, self._gen_anon),
                       (1, self._gen_logical_index),
                       (1, self._gen_matrix_iter)]
        total = sum(w for w, _ in makers)
        pick = rng.uniform(0, total)
        for weight, maker in makers:
            pick -= weight
            if pick <= 0:
                return maker() if maker in (self._gen_new_assign,
                                            self._gen_reassign,
                                            self._gen_indexed_store,
                                            self._gen_user_call,
                                            self._gen_growth,
                                            self._gen_anon,
                                            self._gen_logical_index,
                                            self._gen_matrix_iter) \
                    else maker(depth)
        return None

    def _gen_new_assign(self) -> list[ast.Stmt]:
        rng = self.rng
        shape = rng.choice([(1, 1), (1, 1), None])
        if shape is None:
            donors = [i for i in self.env.values() if not i.is_scalar]
            shape = rng.choice(donors).shape if donors else \
                (1, rng.randint(2, 5))
        want_complex = rng.random() < 0.2 and self._has_complex_material()
        expr, info = self._gen_expr(shape, want_complex, depth=0)
        name = self._fresh()
        self.env[name] = info
        return [_assign(_name(name), expr)]

    def _gen_reassign(self) -> "list[ast.Stmt] | None":
        name = self._pick_var(lambda i: True, writable=True)
        if name is None:
            return None
        info = self.env[name]
        expr, new_info = self._gen_matched_expr(info)
        self.env[name] = new_info
        return [_assign(_name(name), expr)]

    def _gen_matched_expr(self, info: Info) -> tuple[ast.Expr, Info]:
        """An expression with exactly ``info``'s shape/dtype/complexness
        (wrapped in a cast when the natural dtype differs).  Matching
        complexness exactly mirrors the compiler's class-stability
        rule: a variable's complexness is fixed at first assignment."""
        expr, got = self._gen_expr(info.shape, info.is_complex, depth=0)
        if got.dtype != info.dtype:
            expr = _call(info.dtype, expr)
            got = Info(got.rows, got.cols, info.dtype, got.is_complex,
                       exact=False)
        if info.is_complex and not got.is_complex:
            expr = _call("complex", expr)
            got = Info(got.rows, got.cols, got.dtype, True, got.exact)
        return expr, got

    def _gen_indexed_store(self) -> "list[ast.Stmt] | None":
        rng = self.rng
        name = self._pick_var(lambda i: not i.is_scalar, writable=True)
        if name is None:
            return None
        info = self.env[name]
        kind = rng.choice(["element", "column", "row"]
                          if info.rows > 1 and info.cols > 1
                          else ["element", "element", "linear"])
        if kind == "element":
            subs = [self._gen_subscript(info.rows),
                    self._gen_subscript(info.cols)] \
                if info.rows > 1 and info.cols > 1 else \
                [self._gen_subscript(info.numel)]
            value, vinfo = self._gen_store_value(info, (1, 1))
        elif kind == "linear":
            subs = [self._gen_subscript(info.numel)]
            value, vinfo = self._gen_store_value(info, (1, 1))
        elif kind == "column":
            subs = [ast.ColonAll(span=_SPAN),
                    self._gen_subscript(info.cols)]
            value, vinfo = self._gen_store_value(info, (info.rows, 1))
        else:
            subs = [self._gen_subscript(info.rows),
                    ast.ColonAll(span=_SPAN)]
            value, vinfo = self._gen_store_value(info, (1, info.cols))
        target = ast.CallIndex(span=_SPAN, target=_name(name), args=subs)
        self.env[name] = Info(info.rows, info.cols, info.dtype,
                              info.is_complex,
                              info.exact and vinfo.exact)
        return [_assign(target, value)]

    def _gen_store_value(self, array: Info,
                         shape: tuple[int, int]) -> tuple[ast.Expr, Info]:
        expr, got = self._gen_expr(shape, array.is_complex, depth=1)
        if got.dtype != array.dtype:
            expr = _call(array.dtype, expr)
            got = Info(got.rows, got.cols, array.dtype, got.is_complex,
                       exact=False)
        if array.is_complex and not got.is_complex:
            expr = _call("complex", expr)
            got = Info(got.rows, got.cols, got.dtype, True, got.exact)
        return expr, got

    def _gen_subscript(self, extent: int) -> ast.Expr:
        """An in-bounds 1-based subscript: constant or end-relative."""
        rng = self.rng
        if rng.random() < 0.25:
            offset = rng.randint(0, extent - 1)
            marker = ast.EndMarker(span=_SPAN)
            return marker if offset == 0 else \
                _bin("-", marker, _num(offset))
        return _num(rng.randint(1, extent))

    # -- control flow ---------------------------------------------------

    def _gen_branch_body(self, depth: int) -> list[ast.Stmt]:
        """Statements safe inside a conditionally-executed region: only
        reassignments of existing variables (types must join across
        branches, and uses after the region must be defined on every
        path)."""
        body: list[ast.Stmt] = []
        for _ in range(self.rng.randint(1, 2)):
            stmt = self._gen_reassign() or self._gen_indexed_store()
            if stmt:
                body.extend(stmt)
        if not body:
            name = self._fresh()
            self.env[name] = Info(1, 1)
            # Define before the region so every path has it: caller
            # prepends this initializer.
            body.append(_assign(_name(name), _num(0)))
        return body

    def _gen_if(self, depth: int) -> list[ast.Stmt]:
        rng = self.rng
        branches = [(self._gen_condition(),
                     self._gen_branch_body(depth + 1))]
        if rng.random() < 0.4:
            branches.append((self._gen_condition(),
                             self._gen_branch_body(depth + 1)))
        else_body = self._gen_branch_body(depth + 1) \
            if rng.random() < 0.6 else []
        return [ast.If(span=_SPAN, branches=branches, else_body=else_body)]

    def _gen_for(self, depth: int) -> list[ast.Stmt]:
        rng = self.rng
        var = self._fresh("k")
        vec = self._pick_var(lambda i: i.is_vector and not i.is_complex,
                             writable=True)
        if vec is not None and rng.random() < 0.5:
            iterable: ast.Expr = ast.Range(
                span=_SPAN, start=_num(1), stop=_call("length", _name(vec)))
        else:
            trip = rng.randint(2, 5)
            iterable = ast.Range(span=_SPAN, start=_num(1), stop=_num(trip))
            vec = None
        self.env[var] = Info(1, 1)
        self.protected.add(var)
        body = self._gen_loop_body(depth + 1, var, vec)
        del self.env[var]
        self.protected.discard(var)
        return [ast.For(span=_SPAN, var=var, iterable=iterable, body=body)]

    def _gen_loop_body(self, depth: int, loop_var: str,
                       indexable: "str | None") -> list[ast.Stmt]:
        rng = self.rng
        self._in_loop += 1
        try:
            return self._gen_loop_body_inner(rng, depth, loop_var,
                                             indexable)
        finally:
            self._in_loop -= 1

    def _gen_loop_body_inner(self, rng, depth: int, loop_var: str,
                             indexable: "str | None") -> list[ast.Stmt]:
        body: list[ast.Stmt] = []
        if indexable is not None and rng.random() < 0.7:
            # v(k) = f(v(k), k, ...): in-bounds by construction because
            # the loop runs 1:length(v).
            info = self.env[indexable]
            element = ast.CallIndex(span=_SPAN, target=_name(indexable),
                                    args=[_name(loop_var)])
            update, uinfo = self._gen_expr((1, 1), info.is_complex,
                                           depth=2, seeds=[
                                               (element, Info(
                                                   1, 1, info.dtype,
                                                   info.is_complex,
                                                   info.exact)),
                                               (_name(loop_var),
                                                Info(1, 1))])
            if uinfo.dtype != info.dtype:
                update = _call(info.dtype, update)
                uinfo.exact = False
            body.append(_assign(
                ast.CallIndex(span=_SPAN, target=_name(indexable),
                              args=[_name(loop_var)]), update))
            self.env[indexable] = Info(info.rows, info.cols, info.dtype,
                                       info.is_complex,
                                       info.exact and uinfo.exact)
        for _ in range(rng.randint(0, 2)):
            stmt = self._gen_reassign()
            if stmt:
                body.extend(stmt)
        if depth < 2 and rng.random() < 0.25:
            escape: ast.Stmt = ast.Break(span=_SPAN) \
                if rng.random() < 0.5 else ast.Continue(span=_SPAN)
            body.append(ast.If(span=_SPAN,
                               branches=[(self._gen_condition(),
                                          [escape])]))
        if not body:
            body.append(self._gen_new_assign()[0])
            # Variables defined only inside a loop body may never be
            # defined at run time; drop it from the env again.
            target = body[-1].target
            self.env.pop(target.name, None)
        return body

    def _gen_while(self, depth: int) -> list[ast.Stmt]:
        rng = self.rng
        counter = self._fresh("it")
        self.env[counter] = Info(1, 1)
        self.protected.add(counter)
        # The bound is either a small constant or length(vec) — shapes
        # are static, so length() is a loop invariant and exact in
        # every engine.
        vec = self._pick_var(lambda i: i.is_vector)
        if vec is not None and rng.random() < 0.4:
            bound: ast.Expr = _call("length", _name(vec))
        else:
            bound = _num(rng.randint(2, 5))
        # Increment FIRST: a generated `continue` later in the body can
        # then never skip it (the classic infinite-while bug).
        body: list[ast.Stmt] = [
            _assign(_name(counter), _bin("+", _name(counter), _num(1)))]
        body.extend(self._gen_loop_body(depth + 1, counter, None))
        self.protected.discard(counter)
        return [
            _assign(_name(counter), _num(0)),
            ast.While(span=_SPAN,
                      condition=_bin("<", _name(counter), bound),
                      body=body),
        ]

    def _gen_switch(self, depth: int) -> list[ast.Stmt]:
        rng = self.rng
        scalar, _ = self._gen_exact_scalar(depth=2)
        subject = _call("floor", scalar)
        cases = [(_num(value), self._gen_branch_body(depth + 1))
                 for value in rng.sample(range(-2, 4), rng.randint(1, 3))]
        otherwise = self._gen_branch_body(depth + 1) \
            if rng.random() < 0.5 else []
        return [ast.Switch(span=_SPAN, subject=subject, cases=cases,
                           otherwise=otherwise)]

    # -- user-defined subfunctions --------------------------------------

    def _gen_subfunctions(self) -> list[SubFunction]:
        rng = self.rng
        roll = rng.random()
        count = 0 if roll < 0.35 else 1 if roll < 0.7 else 2
        return [self._gen_one_subfn(index + 1) for index in range(count)]

    def _gen_one_subfn(self, index: int) -> SubFunction:
        name = f"sf{index}"
        if self.rng.random() < 0.5:
            return self._make_expr_subfn(name)
        return self._make_stmt_subfn(name)

    def _make_expr_subfn(self, name: str) -> SubFunction:
        """A shape-polymorphic elementwise body: two same-shape params
        combined with exact ops (+, -, .*) and quantized constants.
        Call sites choose the argument shape, so two calls with
        different shapes force two type specializations."""
        rng = self.rng
        body = [_assign(_name("r1"),
                        _bin("+", _bin(".*", _name("a"),
                                       _num(self._quantized())),
                             _name("b")))]
        returns = ["r1"]
        if rng.random() < 0.6:
            op = rng.choice(["+", "-", ".*"])
            body.append(_assign(_name("r2"),
                                _bin(op, _name("a"),
                                     _bin(".*", _name("b"),
                                          _num(self._quantized())))))
            returns.append("r2")
        node = ast.Function(span=_SPAN, name=name, params=["a", "b"],
                            returns=returns, body=body)
        return SubFunction(name=name, kind="expr", params=["a", "b"],
                           param_infos=[], returns=returns,
                           return_infos=[], node=node)

    def _make_stmt_subfn(self, name: str) -> SubFunction:
        """A fixed-signature body over the full statement grammar
        (while loops, branches, indexed stores).  Its return-value
        facts are recorded under the assumption that every argument is
        exact; call sites therefore pass exact-only expressions, so
        conditions inside the body that read parameters stay safe."""
        rng = self.rng
        saved_env, saved_prot = self.env, self.protected
        saved_loop = self._in_loop
        self.env, self.protected = {}, set()
        self._in_loop = 0
        self._in_subfn = True
        try:
            params: list[tuple[str, Info]] = []
            for i in range(rng.randint(1, 3)):
                info = self._random_param_info()
                # Double-only parameters: call sites pass exact-only
                # material, and a dtype cast would break exactness.
                info = Info(info.rows, info.cols, "double",
                            info.is_complex)
                pname = f"a{i}"
                self.env[pname] = info
                self.protected.add(pname)
                params.append((pname, info))
            body: list[ast.Stmt] = []
            body.extend(self._gen_new_assign())
            target = rng.randint(2, 6)
            guard = 0
            while len(body) < target and guard < 4 * target:
                guard += 1
                stmt = self._gen_stmt(depth=1)
                if stmt is not None:
                    body.extend(stmt)
            param_names = {pname for pname, _ in params}
            candidates = sorted(n for n in self.env
                                if n not in param_names)
            rng.shuffle(candidates)
            returns = sorted(candidates[:rng.randint(1, min(
                2, len(candidates)))])
            return_infos = [self.env[n] for n in returns]
            node = ast.Function(span=_SPAN, name=name,
                                params=[pname for pname, _ in params],
                                returns=returns, body=body)
            return SubFunction(name=name, kind="stmt",
                               params=[pname for pname, _ in params],
                               param_infos=[info for _, info in params],
                               returns=returns, return_infos=return_infos,
                               node=node)
        finally:
            self.env, self.protected = saved_env, saved_prot
            self._in_loop = saved_loop
            self._in_subfn = False

    def _gen_user_call(self) -> "list[ast.Stmt] | None":
        if not self.subfns:
            return None
        return self._gen_call_to(self.rng.choice(self.subfns))

    def _gen_call_to(self, sub: SubFunction) -> list[ast.Stmt]:
        rng = self.rng
        if sub.kind == "expr":
            args, arg_infos, result_infos = self._expr_call_signature(sub)
        else:
            args, arg_infos = [], []
            for info in sub.param_infos:
                expr, got = self._gen_expr(info.shape, info.is_complex,
                                           depth=1, exact_only=True)
                if not got.exact or got.dtype != "double":
                    # The body's conditions may read this parameter, so
                    # anything short of bit-exact double material is
                    # replaced by a constant of the right shape.
                    expr, got = self._exact_fallback(info)
                args.append(expr)
                arg_infos.append(got)
            result_infos = [
                Info(ret.rows, ret.cols, ret.dtype, ret.is_complex,
                     ret.exact)
                for ret in sub.return_infos]
        call = ast.CallIndex(span=_SPAN, target=_name(sub.name),
                             args=args)
        self._called.add(sub.name)
        if len(sub.returns) == 1 or rng.random() < 0.3:
            # nargout=1: a plain assignment takes the first output only.
            result = self._fresh()
            self.env[result] = result_infos[0]
            return [_assign(_name(result), call)]
        targets: list[ast.Expr] = []
        for index, info in enumerate(result_infos):
            if index > 0 and rng.random() < 0.2:
                targets.append(_name("~"))
                continue
            result = self._fresh()
            self.env[result] = info
            targets.append(_name(result))
        return [ast.MultiAssign(span=_SPAN, targets=targets, value=call)]

    def _exact_fallback(self, info: Info) -> tuple[ast.Expr, Info]:
        """A bit-exact double expression of ``info``'s shape and
        complexness, built from constants only."""
        rows, cols = info.shape
        if info.is_scalar:
            base: ast.Expr = _num(self._quantized())
        else:
            base = _bin(".*", _call("ones", _num(rows), _num(cols)),
                        _num(self._quantized()))
        if info.is_complex:
            base = _call("complex", base, base)
        return base, Info(rows, cols, "double", info.is_complex, True)

    def _expr_call_signature(self, sub: SubFunction):
        """Pick a shape/dtype/complexness for one call to an ``expr``
        subfunction and build matching arguments."""
        rng = self.rng
        donors = [i for i in self.env.values() if not i.is_scalar]
        shape = rng.choice([(1, 1)] + [i.shape for i in donors]) \
            if donors else rng.choice([(1, 1), (1, rng.randint(2, 5))])
        dtype = "single" if rng.random() < 0.1 else "double"
        args, arg_infos = [], []
        for _ in sub.params:
            cplx = dtype == "double" and rng.random() < 0.2 \
                and self._has_complex_material()
            expr, got = self._gen_expr(shape, cplx, depth=1)
            if got.dtype != dtype:
                expr = _call(dtype, expr)
                got = Info(got.rows, got.cols, dtype, got.is_complex,
                           exact=False)
            args.append(expr)
            arg_infos.append(got)
        rows, cols = shape
        is_complex = any(got.is_complex for got in arg_infos)
        # The body mixes arguments with double constants, so results
        # are exact only for all-exact double arguments.
        exact = all(got.exact for got in arg_infos) and dtype == "double"
        result_infos = [Info(rows, cols, dtype, is_complex, exact)
                        for _ in sub.returns]
        return args, arg_infos, result_infos

    def _gen_condition(self) -> ast.Expr:
        """A scalar condition built only from exact material."""
        rng = self.rng
        left, _ = self._gen_exact_scalar(depth=2)
        right, _ = self._gen_exact_scalar(depth=2)
        op = rng.choice(["<", "<=", ">", ">=", "==", "~="])
        cond = _bin(op, left, right)
        if rng.random() < 0.2:
            left2, _ = self._gen_exact_scalar(depth=2)
            right2, _ = self._gen_exact_scalar(depth=2)
            cond = _bin(rng.choice(["&&", "||"]), cond,
                        _bin(rng.choice(["<", ">"]), left2, right2))
        return cond

    # -- interpreter-only features --------------------------------------

    def _gen_growth(self) -> list[ast.Stmt]:
        """Growth-by-assignment from empty: ``g = []; g(k) = ...``."""
        rng = self.rng
        name = self._fresh("g")
        count = rng.randint(2, 5)
        loop_var = self._fresh("k")
        self.env[loop_var] = Info(1, 1)
        want_complex = rng.random() < 0.3 and self._has_complex_material()
        value, vinfo = self._gen_expr((1, 1), want_complex, depth=2, seeds=[
            (_name(loop_var), Info(1, 1))])
        del self.env[loop_var]
        stmts: list[ast.Stmt] = [
            _assign(_name(name), ast.MatrixLit(span=_SPAN, rows=[])),
            ast.For(span=_SPAN, var=loop_var,
                    iterable=ast.Range(span=_SPAN, start=_num(1),
                                       stop=_num(count)),
                    body=[_assign(
                        ast.CallIndex(span=_SPAN, target=_name(name),
                                      args=[_name(loop_var)]),
                        value)]),
        ]
        self.env[name] = Info(1, count, "double", vinfo.is_complex,
                              vinfo.exact)
        return stmts

    def _gen_anon(self) -> "list[ast.Stmt] | None":
        rng = self.rng
        source = self._pick_var(lambda i: not i.is_complex)
        if source is None:
            return None
        info = self.env[source]
        param = "x"
        body = _bin(rng.choice(["+", ".*"]),
                    _bin(".*", _name(param), _num(self._quantized())),
                    _num(self._quantized()))
        handle = self._fresh("f")
        result = self._fresh()
        self.env[result] = Info(info.rows, info.cols, "double", False,
                                info.exact and info.dtype == "double")
        return [
            _assign(_name(handle),
                    ast.AnonFunc(span=_SPAN, params=[param], body=body)),
            _assign(_name(result), _call(handle, _name(source))),
        ]

    def _gen_logical_index(self) -> "list[ast.Stmt] | None":
        source = self._pick_var(lambda i: i.is_vector and not i.is_complex)
        if source is None:
            return None
        info = self.env[source]
        mask = _bin(self.rng.choice([">", "<", ">="]), _name(source),
                    _num(self._quantized()))
        selected = ast.CallIndex(span=_SPAN, target=_name(source),
                                 args=[mask])
        name = self._fresh()
        self.env[name] = Info(1, 1, info.dtype, False, False)
        return [_assign(_name(name), _call("sum", selected))]

    def _gen_matrix_iter(self) -> "list[ast.Stmt] | None":
        source = self._pick_var(
            lambda i: i.rows > 1 and i.cols > 1 and not i.is_complex)
        if source is None:
            return None
        info = self.env[source]
        acc = self._fresh("s")
        col = self._fresh("c")
        body: list[ast.Stmt] = []
        if self.rng.random() < 0.5:
            # Mutate the loop variable: MATLAB semantics say this must
            # never write back into the iterated matrix.
            body.append(_assign(
                ast.CallIndex(span=_SPAN, target=_name(col),
                              args=[_num(1), _num(1)]),
                _num(self._quantized())))
        body.append(_assign(_name(acc),
                            _bin("+", _name(acc), _call("sum", _name(col)))))
        self.env[acc] = Info(1, 1, info.dtype, False, False)
        return [
            _assign(_name(acc), _num(0)),
            ast.For(span=_SPAN, var=col, iterable=_name(source), body=body),
        ]

    # -- expressions ----------------------------------------------------

    def _has_complex_material(self) -> bool:
        return any(i.is_complex for i in self.env.values()) or True

    def _pick_var(self, want, writable: bool = False) -> "str | None":
        names = [name for name, info in self.env.items() if want(info)
                 and not (writable and name in self.protected)]
        return self.rng.choice(names) if names else None

    def _gen_exact_scalar(self, depth: int) -> tuple[ast.Expr, Info]:
        return self._gen_expr((1, 1), False, depth, exact_only=True)

    def _gen_expr(self, shape: tuple[int, int], want_complex: bool,
                  depth: int, exact_only: bool = False,
                  seeds: "list[tuple[ast.Expr, Info]] | None" = None) \
            -> tuple[ast.Expr, Info]:
        """An expression of exactly ``shape``; complex iff requested.

        ``exact_only`` restricts to bit-identical-across-engines
        material.  ``seeds`` are extra (expr, info) leaves offered to
        the picker (e.g. the current loop variable).
        """
        rng = self.rng
        rows, cols = shape
        scalar = rows == 1 and cols == 1

        if depth >= 3:
            return self._gen_leaf(shape, want_complex, exact_only, seeds)

        choices = ["leaf", "leaf", "binary", "binary"]
        if not want_complex:
            choices.append("elemwise")
        if scalar and not exact_only:
            choices.append("reduction")
        if not scalar and not exact_only and not want_complex:
            choices.append("shape")
        if want_complex:
            choices.append("complex")
        picked = rng.choice(choices)
        if picked == "leaf":
            return self._gen_leaf(shape, want_complex, exact_only, seeds)
        if picked == "binary":
            return self._gen_binary(shape, want_complex, depth,
                                    exact_only, seeds)
        if picked == "complex":
            return self._gen_complex_build(shape, depth)
        if picked == "elemwise":
            return self._gen_elemwise_call(shape, depth, exact_only,
                                           seeds)
        if picked == "reduction":
            return self._gen_reduction(depth, want_complex)
        return self._gen_shape_call(shape, depth)

    def _gen_binary(self, shape, want_complex, depth, exact_only, seeds):
        rng = self.rng
        ops = ["+", "-", ".*"] if want_complex else \
            ["+", "+", "-", ".*", "./", ".^"]
        op = rng.choice(ops)
        scalar_side = rng.random() < 0.4 and shape != (1, 1)
        left, linfo = self._gen_expr(shape, want_complex, depth + 1,
                                     exact_only, seeds)
        right_shape = (1, 1) if scalar_side else shape
        if op == ".^":
            # Integer constant exponent: real stays real, magnitudes
            # bounded, exact in every engine.  Inside loop bodies the
            # cap drops to 1 so iterated reassignment cannot square a
            # value to overflow.
            max_exp = 1 if self._in_loop else 3
            right, rinfo = _num(rng.randint(0, max_exp)), Info(1, 1)
        elif op == "./":
            # Guarded denominator: no engine ever divides by zero.
            denom, dinfo = self._gen_expr(right_shape, False, depth + 1,
                                          exact_only, seeds)
            right = _bin("+", _call("abs", denom), _num(0.5))
            rinfo = Info(dinfo.rows, dinfo.cols, dinfo.dtype, False,
                         dinfo.exact)
        else:
            want_right = want_complex and rng.random() < 0.5
            right, rinfo = self._gen_expr(right_shape, want_right,
                                          depth + 1, exact_only, seeds)
        if op not in ("./", ".^") and rng.random() < 0.5:
            # Commute only when the right operand carries no invariant
            # (guarded denominator, integer exponent).
            left, right = right, left
            linfo, rinfo = rinfo, linfo
        info = linfo.merged(rinfo)
        info.rows, info.cols = shape
        if want_complex and not info.is_complex:
            left = _bin("+", left, ast.ImagLit(span=_SPAN, value=1.0))
            info.is_complex = True
        return _bin(op, left, right), info

    def _gen_elemwise_call(self, shape, depth, exact_only, seeds):
        rng = self.rng
        fns = _EXACT_ELEMWISE if exact_only else \
            _EXACT_ELEMWISE + _LIBM_ELEMWISE
        fn = rng.choice(fns)
        operand, info = self._gen_expr(shape, False, depth + 1,
                                       exact_only, seeds)
        if fn == "exp":
            # Bound the argument so no engine overflows to inf.
            operand = _call("atan", operand)
        result = Info(info.rows, info.cols, info.dtype, False,
                      info.exact and fn in _EXACT_ELEMWISE)
        return _call(fn, operand), result

    def _gen_reduction(self, depth, want_complex=False):
        rng = self.rng
        vec = self._pick_var(
            lambda i: i.is_vector and i.is_complex == want_complex)
        if vec is None:
            expr, sinfo = self._gen_expr((1, rng.randint(2, 4)),
                                         want_complex, depth + 1)
            source: ast.Expr = expr
        else:
            source = _name(vec)
            sinfo = self.env[vec]
        if sinfo.is_complex:
            # norm() of complex is real — it would break the requested
            # complexness; sum is the only closed complex reduction.
            fn = "sum"
        else:
            fn = rng.choice(["sum", "mean", "min", "max", "norm",
                             "prod"])
        info = Info(1, 1, sinfo.dtype, sinfo.is_complex, False)
        return _call(fn, source), info

    def _gen_shape_call(self, shape, depth):
        """Array-shaped builtins: constructors, transpose, reshape..."""
        rng = self.rng
        rows, cols = shape
        options = ["zeros", "ones", "literal", "transpose"]
        if rows == 1 and cols > 1:
            options += ["range", "linspace"]
        donors = [n for n, i in self.env.items()
                  if i.numel == rows * cols and i.shape != shape]
        if donors:
            options.append("reshape")
        picked = rng.choice(options)
        if picked in ("zeros", "ones"):
            return (_call(picked, _num(rows), _num(cols)),
                    Info(rows, cols))
        if picked == "range":
            start = rng.randint(-3, 3)
            return (ast.Range(span=_SPAN, start=_num(start),
                              stop=_num(start + cols - 1)),
                    Info(rows, cols))
        if picked == "linspace":
            return (_call("linspace", _num(self._quantized()),
                          _num(self._quantized()), _num(cols)),
                    Info(rows, cols, exact=False))
        if picked == "reshape":
            donor = rng.choice(donors)
            dinfo = self.env[donor]
            return (_call("reshape", _name(donor), _num(rows), _num(cols)),
                    Info(rows, cols, dinfo.dtype, dinfo.is_complex,
                         dinfo.exact))
        if picked == "transpose":
            inner, info = self._gen_expr((cols, rows), False, depth + 1)
            return (ast.Transpose(span=_SPAN, operand=inner,
                                  conjugate=False),
                    Info(rows, cols, info.dtype, info.is_complex,
                         info.exact))
        elements = [[self._gen_expr((1, 1), False, depth + 2)
                     for _ in range(cols)] for _ in range(rows)]
        exact = all(info.exact and info.dtype == "double"
                    for row in elements for _, info in row)
        lit = ast.MatrixLit(span=_SPAN,
                            rows=[[expr for expr, _ in row]
                                  for row in elements])
        return lit, Info(rows, cols, "double", False, exact)

    def _gen_complex_build(self, shape, depth):
        rng = self.rng
        real, rinfo = self._gen_expr(shape, False, depth + 1)
        if rng.random() < 0.5:
            imag, iinfo = self._gen_expr(shape, False, depth + 1)
            return (_call("complex", real, imag),
                    Info(shape[0], shape[1], "double", True,
                         rinfo.exact and iinfo.exact
                         and rinfo.dtype == "double"
                         and iinfo.dtype == "double"))
        scale = ast.ImagLit(span=_SPAN, value=self._quantized())
        return (_bin("+", real, _bin(".*",
                                     self._gen_expr(shape, False,
                                                    depth + 1)[0], scale)),
                Info(shape[0], shape[1], "double", True, False))

    def _gen_leaf(self, shape, want_complex, exact_only, seeds=None):
        rng = self.rng
        rows, cols = shape
        scalar = rows == 1 and cols == 1

        candidates: list[tuple[ast.Expr, Info]] = []
        if seeds:
            candidates.extend(
                (expr, info) for expr, info in seeds
                if info.shape == shape
                and info.is_complex == want_complex
                and (not exact_only or info.exact))

        def usable(info: Info) -> bool:
            if info.is_complex != want_complex:
                return False
            if exact_only and not info.exact:
                return False
            return True

        for name, info in self.env.items():
            if not usable(info):
                continue
            if info.shape == shape:
                candidates.append((_name(name), info))
            if scalar and not info.is_scalar:
                index_args = [self._gen_subscript(info.rows),
                              self._gen_subscript(info.cols)] \
                    if info.rows > 1 and info.cols > 1 else \
                    [self._gen_subscript(info.numel)]
                candidates.append((
                    ast.CallIndex(span=_SPAN, target=_name(name),
                                  args=index_args),
                    Info(1, 1, info.dtype, info.is_complex, info.exact)))
            if rows == 1 and cols > 1 and info.cols > cols \
                    and info.rows == 1:
                start = rng.randint(1, info.cols - cols + 1)
                slice_expr = ast.CallIndex(
                    span=_SPAN, target=_name(name),
                    args=[ast.Range(span=_SPAN, start=_num(start),
                                    stop=_num(start + cols - 1))])
                candidates.append((
                    slice_expr,
                    Info(1, cols, info.dtype, info.is_complex,
                         info.exact)))

        if scalar and not want_complex:
            for _ in range(2):
                candidates.append((_num(self._quantized()), Info(1, 1)))
            for name in ("length", "numel"):
                if self.env and rng.random() < 0.3:
                    donor = rng.choice(list(self.env))
                    candidates.append((_call(name, _name(donor)),
                                       Info(1, 1)))
        if scalar and want_complex:
            candidates.append((
                _bin("+", _num(self._quantized()),
                     ast.ImagLit(span=_SPAN, value=self._quantized())),
                Info(1, 1, "double", True)))

        if not candidates:
            # Synthesize from nothing: zeros/complex zeros of the shape.
            base = _call("zeros", _num(rows), _num(cols)) \
                if not scalar else _num(self._quantized())
            info = Info(rows, cols)
            if want_complex:
                base = _call("complex", base, base)
                info = Info(rows, cols, "double", True)
            return base, info
        return rng.choice(candidates)
