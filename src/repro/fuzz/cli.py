"""``repro-fuzz`` — the differential fuzzing driver.

Examples::

    # 200 compile-mode programs through interpreter + both simulator
    # backends + gcc (when on PATH); nonzero exit on any divergence
    repro-fuzz --seed 0 --count 200

    # Interpreter-only features (growth, logical indexing, matrix
    # iteration) under the interpreter-consistency oracle
    repro-fuzz --seed 7 --count 100 --mode interp

    # Reduce and save any failures as minimal reproducers
    repro-fuzz --seed 0 --count 500 --reduce --corpus failures/

    # Machine-readable run summary for CI
    repro-fuzz --seed 0 --count 50 --metrics-json fuzz.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.fuzz.generator import ProgramGenerator
from repro.fuzz.oracle import COMPILE_ENGINES, DifferentialOracle
from repro.fuzz.reducer import reduce_program, write_reproducer
from repro.observe import TraceSession, trace as obs_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Differential fuzzer: random well-typed MATLAB "
                    "programs through the golden interpreter, both "
                    "simulator backends, and gcc-compiled emitted C")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; program i uses seed+i "
                             "(default 0)")
    parser.add_argument("--count", type=int, default=100,
                        help="number of programs to generate "
                             "(default 100)")
    parser.add_argument("--mode", choices=["compile", "interp"],
                        default="compile",
                        help="'compile': differential across engines; "
                             "'interp': interpreter-only features under "
                             "consistency oracles")
    parser.add_argument("--backends", default=None,
                        help="comma-separated subset of "
                             f"{','.join(COMPILE_ENGINES)} to compare "
                             "against the interpreter (default: all "
                             "available)")
    parser.add_argument("--processor", default="vliw_simd_dsp",
                        help="target processor description name")
    parser.add_argument("--cc", default="gcc",
                        help="host C compiler for the gcc engine")
    parser.add_argument("--reduce", action="store_true",
                        help="delta-debug each failure to a minimal "
                             "reproducer")
    parser.add_argument("--corpus", metavar="DIR", default=None,
                        help="write failing programs (reduced when "
                             "--reduce) as NAME.m + NAME.json replay "
                             "sidecars into DIR")
    parser.add_argument("--max-failures", type=int, default=10,
                        help="stop after this many distinct failures "
                             "(default 10)")
    parser.add_argument("--metrics-json", metavar="FILE", default=None,
                        help="write a machine-readable JSON summary of "
                             "the run to FILE")
    parser.add_argument("--print-programs", action="store_true",
                        help="print every generated program to stderr "
                             "(debugging the generator)")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    engines = None
    if options.backends is not None:
        engines = [e.strip() for e in options.backends.split(",")
                   if e.strip()]
        unknown = [e for e in engines if e not in COMPILE_ENGINES]
        if unknown:
            parser.error(f"unknown backend(s) {', '.join(unknown)}; "
                         f"expected a subset of "
                         f"{', '.join(COMPILE_ENGINES)}")

    session = TraceSession()
    oracle = DifferentialOracle(engines=engines,
                                processor=options.processor,
                                cc=options.cc)
    failures: list[dict] = []
    seen_buckets: set[str] = set()

    with obs_trace.use(session):
        if options.mode == "compile" and oracle.engines:
            print(f"engines: interp vs {', '.join(oracle.engines)}")
        elif options.mode == "compile":
            print("engines: (none available beyond the interpreter)")
        for index in range(options.count):
            seed = options.seed + index
            generator = ProgramGenerator(seed, mode=options.mode)
            program = generator.generate()
            if options.print_programs:
                print(f"% seed {seed}\n{program.source}",
                      file=sys.stderr)
            verdict = oracle.run(program)
            if not verdict.interesting:
                continue

            key = verdict.key()
            fresh = key not in seen_buckets
            seen_buckets.add(key)
            print(f"seed {seed}: {verdict.status} "
                  f"[{verdict.engine}] {verdict.detail}"
                  + ("" if fresh else " (duplicate bucket)"))
            if options.reduce and fresh:
                program = reduce_program(program, verdict, oracle)
            if options.corpus and fresh:
                path = write_reproducer(options.corpus,
                                        f"seed{seed}", program, verdict)
                print(f"  reproducer: {path}")
            failures.append({
                "seed": seed,
                "status": verdict.status,
                "engine": verdict.engine,
                "detail": verdict.detail,
                "bucket": verdict.bucket,
                "source": program.source,
            })
            if len(seen_buckets) >= options.max_failures:
                print(f"stopping after {options.max_failures} distinct "
                      "failure buckets")
                break

    counters = session.counters
    programs = counters.get("fuzz.programs", 0)
    summary = {
        "seed": options.seed,
        "count": options.count,
        "mode": options.mode,
        "engines": list(oracle.engines) if options.mode == "compile"
        else ["interp"],
        "programs": programs,
        "ok": counters.get("fuzz.ok", 0),
        "skipped": counters.get("fuzz.skip", 0),
        "divergences": counters.get("fuzz.divergence", 0),
        "crashes": counters.get("fuzz.crash", 0),
        "distinct_buckets": len(seen_buckets),
        "failures": failures,
        "counters": dict(sorted(counters.items())),
        "remarks": [f"{r.pass_name}: {r.message}"
                    for r in session.remarks],
    }
    print(f"{programs} programs: {summary['ok']} ok, "
          f"{summary['skipped']} skipped, "
          f"{summary['divergences']} divergences, "
          f"{summary['crashes']} crashes")
    if options.metrics_json:
        with open(options.metrics_json, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
