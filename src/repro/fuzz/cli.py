"""``repro-fuzz`` — the differential fuzzing driver.

Examples::

    # 200 compile-mode programs through interpreter + both simulator
    # backends + gcc (when on PATH); nonzero exit on any divergence
    repro-fuzz --seed 0 --count 200

    # Interpreter-only features (growth, logical indexing, matrix
    # iteration) under the interpreter-consistency oracle
    repro-fuzz --seed 7 --count 100 --mode interp

    # Reduce and save any failures as minimal reproducers
    repro-fuzz --seed 0 --count 500 --reduce --corpus failures/

    # Machine-readable run summary for CI
    repro-fuzz --seed 0 --count 50 --metrics-json fuzz.json
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback

from repro.errors import EXIT_FAILURE, EXIT_INTERNAL, EXIT_OK
from repro.fuzz.generator import ProgramGenerator
from repro.fuzz.oracle import (COMPILE_ENGINES, GCC_HARNESSES,
                               DifferentialOracle, Verdict, have_gcc)
from repro.fuzz.reducer import reduce_program, write_reproducer
from repro.observe import TraceSession, trace as obs_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fuzz",
        description="Differential fuzzer: random well-typed MATLAB "
                    "programs through the golden interpreter, both "
                    "simulator backends, and gcc-compiled emitted C")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; program i uses seed+i "
                             "(default 0)")
    parser.add_argument("--count", type=int, default=100,
                        help="number of programs to generate "
                             "(default 100)")
    parser.add_argument("--mode", choices=["compile", "interp"],
                        default="compile",
                        help="'compile': differential across engines; "
                             "'interp': interpreter-only features under "
                             "consistency oracles")
    parser.add_argument("--backends", default=None,
                        help="comma-separated subset of "
                             f"{','.join(COMPILE_ENGINES)} to compare "
                             "against the interpreter (default: all "
                             "available)")
    parser.add_argument("--processor", default="vliw_simd_dsp",
                        help="target processor description name")
    parser.add_argument("--cc", default="gcc",
                        help="host C compiler for the gcc engine")
    parser.add_argument("--harness", choices=list(GCC_HARNESSES),
                        default="native",
                        help="gcc-engine harness: 'native' (default; "
                             "one cached .so per program, called "
                             "in-process) or 'exec' (legacy per-call "
                             "main()-wrapper executable with stdout "
                             "parsing)")
    parser.add_argument("--reduce", action="store_true",
                        help="delta-debug each failure to a minimal "
                             "reproducer")
    parser.add_argument("--corpus", metavar="DIR", default=None,
                        help="write failing programs (reduced when "
                             "--reduce) as NAME.m + NAME.json replay "
                             "sidecars into DIR")
    parser.add_argument("--max-failures", type=int, default=10,
                        help="stop after this many distinct failures "
                             "(default 10)")
    parser.add_argument("--metrics-json", metavar="FILE", default=None,
                        help="write a machine-readable JSON summary of "
                             "the run to FILE")
    parser.add_argument("--print-programs", action="store_true",
                        help="print every generated program to stderr "
                             "(debugging the generator; forces --jobs 1)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes; seeds are sharded and "
                             "results merged in seed order (default 1)")
    return parser


def _parse_engines(options, parser) -> "list[str] | None":
    """Validate --backends; unavailable explicit requests are an error
    (silently comparing against nothing would report success while
    verifying nothing)."""
    if options.backends is None:
        return None
    engines = [e.strip() for e in options.backends.split(",")
               if e.strip()]
    unknown = [e for e in engines if e not in COMPILE_ENGINES]
    if unknown:
        parser.error(f"unknown backend(s) {', '.join(unknown)}; "
                     f"expected a subset of "
                     f"{', '.join(COMPILE_ENGINES)}")
    if options.mode == "compile":
        missing = [e for e in engines
                   if e == "gcc" and not have_gcc(options.cc)]
        if missing:
            parser.error(f"backend 'gcc' requested but "
                         f"'{options.cc}' is not on PATH")
        if not engines:
            parser.error("--backends resolved to an empty engine set; "
                         "nothing to compare against the interpreter")
    return engines


def _handle_failure(program, verdict, seed: int, options, oracle,
                    seen_buckets: "set[str]",
                    failures: "list[dict]") -> bool:
    """Record one interesting verdict; print, dedup, reduce, write the
    reproducer.  Returns True when the distinct-bucket budget is
    exhausted and the run should stop."""
    key = verdict.key()
    fresh = key not in seen_buckets
    seen_buckets.add(key)
    print(f"seed {seed}: {verdict.status} "
          f"[{verdict.engine}] {verdict.detail}"
          + ("" if fresh else " (duplicate bucket)"))
    if options.reduce and fresh:
        program = reduce_program(program, verdict, oracle)
    if options.corpus and fresh:
        path = write_reproducer(options.corpus,
                                f"seed{seed}", program, verdict)
        print(f"  reproducer: {path}")
    failures.append({
        "seed": seed,
        "status": verdict.status,
        "engine": verdict.engine,
        "detail": verdict.detail,
        "bucket": verdict.bucket,
        "source": program.source,
    })
    if len(seen_buckets) >= options.max_failures:
        print(f"stopping after {options.max_failures} distinct "
              "failure buckets")
        return True
    return False


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    try:
        return _run(options, parser)
    except SystemExit:
        raise
    except OSError as exc:
        print(f"repro-fuzz: error: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    except Exception:
        print("repro-fuzz: internal error:", file=sys.stderr)
        traceback.print_exc()
        return EXIT_INTERNAL


def _run(options, parser) -> int:
    engines = _parse_engines(options, parser)
    if options.jobs < 1:
        parser.error("--jobs must be >= 1")
    jobs = 1 if options.print_programs else min(options.jobs,
                                                max(options.count, 1))

    session = TraceSession()
    oracle = DifferentialOracle(engines=engines,
                                processor=options.processor,
                                cc=options.cc,
                                harness=options.harness)
    failures: list[dict] = []
    seen_buckets: set[str] = set()
    shard_counters: dict[str, int] = {}
    shard_metrics: "dict | None" = None

    with obs_trace.use(session):
        if options.mode == "compile" and oracle.engines:
            print(f"engines: interp vs {', '.join(oracle.engines)}")
        elif options.mode == "compile":
            print("engines: (none available beyond the interpreter)")
        if jobs > 1:
            from repro.fuzz.parallel import run_sharded
            records, shard_counters, _, shard_metrics = run_sharded(
                jobs, options.seed, options.count, options.mode,
                engines, options.processor, options.cc,
                options.harness)
            # Same streaming semantics as the serial loop, applied to
            # the seed-ordered merge: dedup, reduce, and corpus writes
            # happen here in the parent; the program is regenerated
            # from its seed (generation is deterministic).
            for record in records:
                program = ProgramGenerator(
                    record["seed"], mode=options.mode).generate()
                verdict = Verdict(status=record["status"],
                                  engine=record["engine"],
                                  detail=record["detail"],
                                  bucket=record["bucket"])
                if _handle_failure(program, verdict, record["seed"],
                                   options, oracle, seen_buckets,
                                   failures):
                    break
        else:
            for index in range(options.count):
                seed = options.seed + index
                generator = ProgramGenerator(seed, mode=options.mode)
                program = generator.generate()
                if options.print_programs:
                    print(f"% seed {seed}\n{program.source}",
                          file=sys.stderr)
                verdict = oracle.run(program)
                if not verdict.interesting:
                    continue
                if _handle_failure(program, verdict, seed, options,
                                   oracle, seen_buckets, failures):
                    break

    counters = dict(session.counters)
    for name, value in shard_counters.items():
        counters[name] = counters.get(name, 0) + value
    # One registry covering serial work (this process's session) plus
    # every worker shard — engine-latency histograms merge exactly.
    registry = session.metrics
    registry.merge(shard_metrics)
    programs = counters.get("fuzz.programs", 0)
    summary = {
        "seed": options.seed,
        "count": options.count,
        "mode": options.mode,
        "engines": list(oracle.engines) if options.mode == "compile"
        else ["interp"],
        "programs": programs,
        "ok": counters.get("fuzz.ok", 0),
        "skipped": counters.get("fuzz.skip", 0),
        "divergences": counters.get("fuzz.divergence", 0),
        "crashes": counters.get("fuzz.crash", 0),
        "distinct_buckets": len(seen_buckets),
        "failures": failures,
        "counters": dict(sorted(counters.items())),
        "metrics": {
            "snapshot": registry.snapshot(),
            "summary": registry.summaries(),
        },
        "remarks": [f"{r.pass_name}: {r.message}"
                    for r in session.remarks],
    }
    print(f"{programs} programs: {summary['ok']} ok, "
          f"{summary['skipped']} skipped, "
          f"{summary['divergences']} divergences, "
          f"{summary['crashes']} crashes")
    if options.metrics_json:
        from repro.observe.metrics import atomic_write_text
        atomic_write_text(
            options.metrics_json,
            json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return EXIT_FAILURE if failures else EXIT_OK


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
