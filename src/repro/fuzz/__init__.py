"""Differential fuzzing subsystem.

Randomized differential testing of the four execution paths the repo
maintains for every MATLAB program:

* the golden :class:`~repro.mlab.interp.MatlabInterpreter`,
* the tree-walking reference simulator,
* the compiled-closure simulator backend,
* the gcc-compiled-and-executed emitted C (when gcc is on PATH).

:mod:`repro.fuzz.generator` emits seeded, well-typed random programs
over the supported subset (plus interpreter-only features in ``interp``
mode); :mod:`repro.fuzz.oracle` runs one program through every engine
and compares results with NaN-aware, dtype-aware tolerance;
:mod:`repro.fuzz.reducer` shrinks any diverging program to a minimal
reproducer; :mod:`repro.fuzz.cli` is the ``repro-fuzz`` entry point.
"""

from repro.fuzz.generator import GeneratedProgram, ProgramGenerator
from repro.fuzz.oracle import DifferentialOracle, Verdict
from repro.fuzz.reducer import reduce_program

__all__ = [
    "DifferentialOracle",
    "GeneratedProgram",
    "ProgramGenerator",
    "Verdict",
    "reduce_program",
]
