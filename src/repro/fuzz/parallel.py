"""Process-parallel fuzzing: seed-range shards over a worker pool.

The differential oracle is embarrassingly parallel in the seed — each
program is generated, executed, and judged independently — so
``repro-fuzz --jobs N`` slices the seed range into contiguous shards
and fans them out over a ``ProcessPoolExecutor``.  Each shard returns
plain data (failure records + counters); the parent merges them **in
seed order**, so bucket dedup, ``--max-failures`` accounting, and the
metrics report are byte-equivalent to a serial run over the same
seeds (modulo the early-stop point, which a parallel run applies after
the fact to the merged, ordered failure list).

Reduction and corpus writing stay in the parent: fresh failures are
regenerated from their seed (generation is deterministic) and re-judged
there, which keeps the workers free of filesystem side effects.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.observe import trace as obs_trace
from repro.observe.telemetry import MetricsRegistry
from repro.observe.trace import TraceSession

#: Shards per worker: small enough to amortize fork cost, large enough
#: to balance load when one shard draws slow programs.
_SHARDS_PER_WORKER = 4


def run_shard(base_seed: int, start: int, count: int, mode: str,
              engines: "list[str] | None", processor: str,
              cc: str, harness: str = "native") -> dict:
    """Run programs ``base_seed + start .. + start + count - 1``.

    Returns plain data only: per-failure records (with the seed, so the
    parent can regenerate the program) and the shard's trace counters.
    """
    from repro.fuzz.generator import ProgramGenerator
    from repro.fuzz.oracle import DifferentialOracle

    oracle = DifferentialOracle(engines=engines, processor=processor,
                                cc=cc, harness=harness)
    session = TraceSession()
    failures: list[dict] = []
    with obs_trace.use(session):
        for index in range(start, start + count):
            seed = base_seed + index
            program = ProgramGenerator(seed, mode=mode).generate()
            verdict = oracle.run(program)
            if not verdict.interesting:
                continue
            failures.append({
                "seed": seed,
                "status": verdict.status,
                "engine": verdict.engine,
                "detail": verdict.detail,
                "bucket": verdict.bucket,
                "source": program.source,
            })
    return {
        "start": start,
        "count": count,
        "engines": list(oracle.engines),
        "failures": failures,
        "counters": dict(session.counters),
        "metrics": session.metrics.snapshot(),
    }


def run_sharded(jobs: int, base_seed: int, count: int, mode: str,
                engines: "list[str] | None", processor: str,
                cc: str, harness: str = "native") \
        -> "tuple[list[dict], dict, list[str], dict]":
    """Fan the seed range out over ``jobs`` workers.

    Returns ``(failures_in_seed_order, merged_counters, engines,
    merged_metrics_snapshot)``.  The metrics snapshot is the
    associative merge of every shard's registry
    (:mod:`repro.observe.telemetry`), so engine-latency histograms
    aggregate exactly as a serial run would have recorded them.
    """
    shard_count = max(1, min(jobs * _SHARDS_PER_WORKER, count))
    bounds = []
    base, extra = divmod(count, shard_count)
    start = 0
    for index in range(shard_count):
        size = base + (1 if index < extra else 0)
        if size:
            bounds.append((start, size))
        start += size

    merged_counters: dict[str, int] = {}
    failures: list[dict] = []
    shard_engines: list[str] = []
    registry = MetricsRegistry()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        shards = pool.map(
            run_shard,
            *zip(*[(base_seed, s, n, mode, engines, processor, cc,
                    harness)
                   for s, n in bounds]))
        for shard in shards:  # map() preserves submission order
            shard_engines = shard["engines"]
            failures.extend(shard["failures"])
            for name, value in shard["counters"].items():
                merged_counters[name] = \
                    merged_counters.get(name, 0) + value
            registry.merge(shard.get("metrics"))
    failures.sort(key=lambda f: f["seed"])
    return failures, merged_counters, shard_engines, registry.snapshot()
