"""Delta-debugging reducer for diverging fuzz programs.

Given a program on which the oracle reports a divergence or crash,
shrink it to a (locally) minimal program that still reproduces the
*same* verdict — same diverging engine, or same crash bucket — and
write the reproducer plus its replay metadata to a corpus directory.

Reduction passes, applied to fixpoint:

* drop one top-level/nested statement at a time, last-to-first (later
  statements rarely feed earlier ones, so scanning backwards removes
  dead tails fastest);
* hoist the body out of a compound statement (``if``/``for``/
  ``while``/``switch`` collapse to their then-branch / body run once);
* drop subfunctions the entry no longer (transitively) references —
  statement deletion routinely orphans generated ``sf1``/``sf2``
  helpers, and a reproducer should not carry dead functions;
* drop entry-point parameters the shrunken body no longer mentions
  (with the matching argument spec and input value);
* drop return values, keeping at least one.

Each candidate is judged by re-running the full oracle; a candidate is
accepted only when :meth:`Verdict.key` is unchanged, so a reduction can
never morph one bug into a different one unnoticed.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse
from repro.frontend.unparse import to_source
from repro.fuzz.generator import GeneratedProgram
from repro.fuzz.oracle import DifferentialOracle, Verdict
from repro.observe import trace as obs_trace

#: Upper bound on oracle invocations per reduction, so a pathological
#: program cannot stall the whole fuzzing run.
MAX_ORACLE_RUNS = 400


def _identifiers(node: object, found: set) -> None:
    if isinstance(node, ast.Identifier):
        found.add(node.name)
    if hasattr(node, "__dataclass_fields__"):
        for name in node.__dataclass_fields__:
            if name == "span":
                continue
            _identifiers(getattr(node, name), found)
    elif isinstance(node, (list, tuple)):
        for item in node:
            _identifiers(item, found)


def _function(program: ast.Program, entry: str) -> ast.Function:
    for func in program.functions:
        if func.name == entry:
            return func
    return program.functions[0]


def _drop_dead_subfunctions(
        program: GeneratedProgram) -> "GeneratedProgram | None":
    """Remove functions the entry never (transitively) references.

    Liveness is by identifier mention, which over-approximates calls —
    that is deliberate: a name used as a zero-argument call is an
    ``Identifier`` node, and keeping too much is harmless while
    dropping a reachable callee would be rejected by the oracle run
    anyway.  Returns ``None`` when every function is live.
    """
    tree = parse(program.source)
    entry = _function(tree, program.entry).name
    by_name = {f.name: f for f in tree.functions}
    live = {entry}
    queue = [entry]
    while queue:
        used: set = set()
        _identifiers(by_name[queue.pop()].body, used)
        for name in sorted(used & set(by_name) - live):
            live.add(name)
            queue.append(name)
    if live >= set(by_name):
        return None
    functions = [f for f in tree.functions if f.name in live]
    source = to_source(ast.Program(span=tree.span, functions=functions))
    return replace(program, source=source)


def _rebuild(program: GeneratedProgram, func: ast.Function,
             param_specs=None, input_values=None) -> GeneratedProgram:
    tree = parse(program.source)
    functions = [func if f.name == func.name else f
                 for f in tree.functions]
    source = to_source(ast.Program(span=tree.span, functions=functions))
    return replace(
        program, source=source,
        param_specs=param_specs if param_specs is not None
        else program.param_specs,
        input_values=input_values if input_values is not None
        else program.input_values,
        nargout=len(func.returns), returns=list(func.returns))


class _Budget:
    def __init__(self, oracle: DifferentialOracle, limit: int):
        self.oracle = oracle
        self.limit = limit
        self.runs = 0

    def matches(self, candidate: GeneratedProgram, key: str) -> bool:
        if self.runs >= self.limit:
            return False
        self.runs += 1
        try:
            return self.oracle.run(candidate).key() == key
        except Exception:
            # A reducer candidate that breaks the oracle itself (e.g.
            # unparseable after an aggressive hoist) is just not a
            # valid reduction.
            return False


def reduce_program(program: GeneratedProgram, verdict: Verdict,
                   oracle: "DifferentialOracle | None" = None,
                   max_runs: int = MAX_ORACLE_RUNS) -> GeneratedProgram:
    """Shrink ``program`` while preserving ``verdict.key()``."""
    if not verdict.interesting:
        return program
    oracle = oracle or DifferentialOracle()
    budget = _Budget(oracle, max_runs)
    key = verdict.key()
    session = obs_trace.current()

    current = program
    changed = True
    while changed and budget.runs < budget.limit:
        changed = False
        func = _function(parse(current.source), current.entry)

        # 1. statement deletion / compound hoisting, innermost last.
        for candidate_func in _shrink_stmts(func):
            candidate = _rebuild(current, candidate_func)
            if budget.matches(candidate, key):
                current = candidate
                changed = True
                break
        if changed:
            continue

        # 2. drop subfunctions the shrunken entry no longer reaches.
        candidate = _drop_dead_subfunctions(current)
        if candidate is not None and budget.matches(candidate, key):
            current = candidate
            changed = True
            continue

        # 3. drop unused parameters.
        used: set = set()
        _identifiers(func.body, used)
        for index in range(len(func.params) - 1, -1, -1):
            if func.params[index] in used or len(func.params) <= 1:
                continue
            params = func.params[:index] + func.params[index + 1:]
            specs = [s for i, s in enumerate(current.param_specs)
                     if i != index]
            values = [v for i, v in enumerate(current.input_values)
                      if i != index]
            candidate = _rebuild(
                current,
                ast.Function(span=func.span, name=func.name,
                             params=params, returns=func.returns,
                             body=func.body),
                param_specs=specs, input_values=values)
            if budget.matches(candidate, key):
                current = candidate
                changed = True
                break
        if changed:
            continue

        # 4. drop return values (keep one).
        for index in range(len(func.returns) - 1, -1, -1):
            if len(func.returns) <= 1:
                break
            returns = func.returns[:index] + func.returns[index + 1:]
            candidate = _rebuild(
                current,
                ast.Function(span=func.span, name=func.name,
                             params=func.params, returns=returns,
                             body=func.body))
            if budget.matches(candidate, key):
                current = candidate
                changed = True
                break

    session.counter("fuzz.reduce_runs", budget.runs)
    return current


def _shrink_stmts(func: ast.Function):
    """Yield candidate functions, each one statement-level edit away."""
    for body in _shrink_body(func.body):
        yield ast.Function(span=func.span, name=func.name,
                           params=func.params, returns=func.returns,
                           body=body)


def _shrink_body(stmts: list):
    # Deletion, last statement first.
    for index in range(len(stmts) - 1, -1, -1):
        yield stmts[:index] + stmts[index + 1:]
    # Hoisting: replace a compound statement with its body.
    for index in range(len(stmts) - 1, -1, -1):
        stmt = stmts[index]
        if isinstance(stmt, ast.If):
            for _, body in stmt.branches:
                yield stmts[:index] + body + stmts[index + 1:]
            if stmt.else_body:
                yield (stmts[:index] + stmt.else_body
                       + stmts[index + 1:])
        elif isinstance(stmt, (ast.For, ast.While)):
            yield stmts[:index] + stmt.body + stmts[index + 1:]
        elif isinstance(stmt, ast.Switch):
            for _, body in stmt.cases:
                yield stmts[:index] + body + stmts[index + 1:]
            if stmt.otherwise:
                yield (stmts[:index] + stmt.otherwise
                       + stmts[index + 1:])
    # Recursive shrinking inside compounds.
    for index, stmt in enumerate(stmts):
        if isinstance(stmt, ast.If):
            for bindex, (cond, body) in enumerate(stmt.branches):
                for smaller in _shrink_body(body):
                    branches = list(stmt.branches)
                    branches[bindex] = (cond, smaller)
                    yield (stmts[:index]
                           + [ast.If(span=stmt.span, branches=branches,
                                     else_body=stmt.else_body)]
                           + stmts[index + 1:])
        elif isinstance(stmt, ast.For):
            for smaller in _shrink_body(stmt.body):
                yield (stmts[:index]
                       + [ast.For(span=stmt.span, var=stmt.var,
                                  iterable=stmt.iterable, body=smaller)]
                       + stmts[index + 1:])
        elif isinstance(stmt, ast.While):
            for smaller in _shrink_body(stmt.body):
                yield (stmts[:index]
                       + [ast.While(span=stmt.span,
                                    condition=stmt.condition,
                                    body=smaller)]
                       + stmts[index + 1:])


# ----------------------------------------------------------------------
# Corpus persistence
# ----------------------------------------------------------------------


def write_reproducer(directory: "str | Path", name: str,
                     program: GeneratedProgram,
                     verdict: Verdict) -> Path:
    """Write ``name.m`` plus a ``name.json`` replay sidecar.

    The sidecar holds everything :func:`load_reproducer` needs to rerun
    the program deterministically: entry point, argument specs, the
    concrete input values (complex numbers as ``[re, im]`` pairs), and
    the verdict that was observed when the reproducer was minted.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    m_path = directory / f"{name}.m"
    m_path.write_text(program.source)
    sidecar = {
        "program": program.to_dict(),
        "verdict": {
            "status": verdict.status,
            "engine": verdict.engine,
            "detail": verdict.detail,
            "bucket": verdict.bucket,
        },
    }
    (directory / f"{name}.json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n")
    return m_path


def load_reproducer(directory: "str | Path",
                    name: str) -> tuple[GeneratedProgram, dict]:
    """Load one corpus entry back; returns (program, verdict dict)."""
    directory = Path(directory)
    sidecar = json.loads((directory / f"{name}.json").read_text())
    program = GeneratedProgram.from_dict(sidecar["program"])
    # The .m file is authoritative for the source (hand-editable).
    m_path = directory / f"{name}.m"
    if m_path.is_file():
        program = replace(program, source=m_path.read_text())
    return program, sidecar["verdict"]
