"""Parameterized ASIP processor descriptions and intrinsics."""
