"""Parameterized ASIP processor descriptions.

The paper's compiler is retargetable: "the proposed compiler allows the
description of the specialized instruction set of the target processor in
a parameterized way allowing the support of any processor".  This module
is that parameterization: a :class:`ProcessorDescription` lists the
target's custom instructions (:class:`Instruction`) with their semantics
tag, element kind, SIMD lane count, cycle cost and intrinsic name, plus a
:class:`CostTable` for the plain scalar datapath.

The instruction-selection stage (:mod:`repro.vectorize`) queries the
description for the operations it wants to emit; the C backend prints
matched instructions as intrinsic function calls; the cycle simulator
charges their costs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import IsaError
from repro.ir.types import ScalarKind

#: Operation tags understood by the instruction selector.
#: SIMD:     vload vstore vadd vsub vmul vdiv vmac vsplat vredadd vredmin
#:           vredmax vmin vmax vabs vneg
#: Complex:  cadd csub cmul cmac cconj cmag2
#: Scalar:   mac sat_add clip
KNOWN_OPERATIONS = frozenset(
    {
        "vload", "vloadr", "vstore", "vadd", "vsub", "vmul", "vdiv", "vmac",
        "vsplat", "vredadd", "vredmin", "vredmax", "vmin", "vmax", "vabs",
        "vneg", "vconj",
        "cadd", "csub", "cmul", "cmac", "cconj", "cmag2",
        "mac", "sat_add", "clip",
    }
)

#: Operations whose result element kind is the *real* component kind.
REAL_RESULT_OPERATIONS = frozenset({"cmag2"})


@dataclass(frozen=True)
class Instruction:
    """One custom instruction of the target ASIP.

    Attributes:
        name: ISA-level mnemonic, unique within a processor.
        operation: semantic tag from :data:`KNOWN_OPERATIONS`.
        elem: element kind the instruction operates on.
        lanes: SIMD lane count (1 for scalar/complex-scalar instructions).
        cycles: issue-to-result cost charged by the simulator.
        intrinsic: C intrinsic function name emitted by the backend.
        description: human-readable summary for generated headers.
    """

    name: str
    operation: str
    elem: ScalarKind
    lanes: int
    cycles: int
    intrinsic: str
    description: str = ""

    def __post_init__(self) -> None:
        if self.operation not in KNOWN_OPERATIONS:
            raise IsaError(
                f"instruction {self.name!r}: unknown operation "
                f"{self.operation!r}")
        if self.lanes < 1:
            raise IsaError(f"instruction {self.name!r}: lanes must be >= 1")
        if self.cycles < 1:
            raise IsaError(f"instruction {self.name!r}: cycles must be >= 1")

    @property
    def is_simd(self) -> bool:
        return self.lanes > 1

    @property
    def is_complex(self) -> bool:
        return self.elem.is_complex


@dataclass(frozen=True)
class CostTable:
    """Cycle costs of the plain scalar datapath.

    These apply to baseline (non-intrinsic) code and to the scalar
    residue of vectorized code, so baseline and optimized programs are
    measured on the same machine model — mirroring the paper's setup
    where both compilers' C ran on the same ASIP.
    """

    add: int = 1
    mul: int = 1
    div: int = 8
    compare: int = 1
    logic: int = 1
    load: int = 2
    store: int = 2
    move: int = 1
    branch: int = 2          # per loop-iteration control overhead
    call: int = 4            # user-function call overhead
    math_call: int = 25      # sin/cos/exp/... software library routine
    sqrt: int = 15
    pow: int = 40

    def for_binop(self, op: str) -> int:
        if op in ("add", "sub", "min", "max"):
            return self.add
        if op == "mul":
            return self.mul
        if op in ("div", "rem"):
            return self.div
        if op == "pow":
            return self.pow
        if op in ("eq", "ne", "lt", "le", "gt", "ge"):
            return self.compare
        if op in ("land", "lor"):
            return self.logic
        return self.add

    def for_math(self, name: str) -> int:
        if name in ("abs", "sign", "floor", "ceil", "round", "fix",
                    "real", "imag", "conj"):
            return self.add
        if name == "sqrt":
            return self.sqrt
        if name in ("mod", "rem"):
            return self.div
        if name == "pow":
            return self.pow
        return self.math_call


@dataclass(eq=False)
class ProcessorDescription:
    """A complete target description: scalar costs + custom instructions.

    Equality and hashing are fingerprint-based: two descriptions with
    the same name, cost table and instruction list compare equal, which
    lets processors key caches (``functools.lru_cache``, the
    compilation cache in :mod:`repro.cache`).
    """

    name: str
    description: str = ""
    costs: CostTable = field(default_factory=CostTable)
    instructions: list[Instruction] = field(default_factory=list)
    _by_key: dict[tuple[str, ScalarKind, int], Instruction] = field(
        default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for instr in self.instructions:
            if instr.name in seen:
                raise IsaError(
                    f"processor {self.name!r}: duplicate instruction "
                    f"{instr.name!r}")
            seen.add(instr.name)
            self._by_key[(instr.operation, instr.elem, instr.lanes)] = instr
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash of everything that affects compilation.

        Covers the name, the scalar cost table and every instruction
        (semantics tag, element kind, lanes, cycles, intrinsic).  The
        free-text descriptions are excluded so documentation edits do
        not invalidate caches.
        """
        if self._fingerprint is None:
            import hashlib

            parts = [self.name]
            parts.extend(
                f"{f.name}={getattr(self.costs, f.name)}"
                for f in dataclasses.fields(CostTable))
            for instr in self.instructions:
                parts.append(
                    f"{instr.name}:{instr.operation}:{instr.elem.value}:"
                    f"{instr.lanes}:{instr.cycles}:{instr.intrinsic}")
            digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProcessorDescription):
            return NotImplemented
        return self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    # ------------------------------------------------------------------
    # Selection queries
    # ------------------------------------------------------------------

    def find(self, operation: str, elem: ScalarKind, lanes: int) -> Instruction | None:
        """Exact-match lookup of an instruction."""
        return self._by_key.get((operation, elem, lanes))

    def simd_lanes(self, elem: ScalarKind) -> list[int]:
        """Available SIMD widths for ``elem``, widest first.

        A width counts as available only when the minimum complete set
        of instructions needed to vectorize a loop exists at that width
        (load, store, add, mul, splat).
        """
        widths: set[int] = set()
        for instr in self.instructions:
            if instr.elem is elem and instr.lanes > 1:
                widths.add(instr.lanes)
        usable = []
        for lanes in sorted(widths, reverse=True):
            needed = ("vload", "vstore", "vadd", "vmul", "vsplat")
            if all(self.find(op, elem, lanes) for op in needed):
                usable.append(lanes)
        return usable

    def best_simd_width(self, elem: ScalarKind) -> int | None:
        widths = self.simd_lanes(elem)
        return widths[0] if widths else None

    def has_complex_arith(self, elem: ScalarKind) -> bool:
        """Does the target provide scalar complex-arithmetic instructions?"""
        if not elem.is_complex:
            return False
        return self.find("cmul", elem, 1) is not None

    def instruction_by_name(self, name: str) -> Instruction | None:
        for instr in self.instructions:
            if instr.name == name:
                return instr
        return None

    def summary(self) -> str:
        lines = [f"processor {self.name}: {self.description}"]
        for instr in self.instructions:
            lines.append(
                f"  {instr.name:<18} {instr.operation:<8} "
                f"{instr.elem.value:<5} x{instr.lanes:<3} "
                f"{instr.cycles} cyc  -> {instr.intrinsic}")
        return "\n".join(lines)


def make_simd_instruction_set(elem: ScalarKind, lanes: int, *,
                              prefix: str = "v",
                              load_cycles: int = 2,
                              alu_cycles: int = 1,
                              mul_cycles: "int | None" = None,
                              mac_cycles: int = 1,
                              reduce_cycles: int = 2,
                              div_cycles: int = 10) -> list[Instruction]:
    """Build the standard SIMD instruction group for one (elem, lanes).

    A convenience for authoring processor descriptions: generates the
    full load/store/arithmetic/reduction family with consistent naming
    (``vadd_f32x8`` etc.) and intrinsics (``asip_vadd_f32x8``).
    """
    suffix = f"{elem.value}x{lanes}"
    if mul_cycles is None:
        mul_cycles = alu_cycles

    def instr(op: str, cycles: int, description: str) -> Instruction:
        name = f"{prefix}{op[1:] if op.startswith('v') else op}_{suffix}"
        return Instruction(
            name=name,
            operation=op,
            elem=elem,
            lanes=lanes,
            cycles=cycles,
            intrinsic=f"asip_{op}_{suffix}",
            description=description,
        )

    group = [
        instr("vload", load_cycles, f"load {lanes} contiguous {elem.value}"),
        instr("vloadr", load_cycles,
              f"load {lanes} contiguous {elem.value}, reversed lane order"),
        instr("vstore", load_cycles, f"store {lanes} contiguous {elem.value}"),
        instr("vsplat", 1, "broadcast scalar to all lanes"),
        instr("vadd", alu_cycles, "lane-wise add"),
        instr("vsub", alu_cycles, "lane-wise subtract"),
        instr("vmul", mul_cycles, "lane-wise multiply"),
        instr("vdiv", div_cycles, "lane-wise divide"),
        instr("vmac", mac_cycles, "lane-wise multiply-accumulate"),
        instr("vneg", alu_cycles, "lane-wise negate"),
        instr("vredadd", reduce_cycles, "horizontal add reduction"),
    ]
    if elem.is_complex:
        # Ordering-based lane ops make no sense on complex elements.
        group.append(instr("vconj", alu_cycles, "lane-wise conjugate"))
    else:
        group += [
            instr("vmin", alu_cycles, "lane-wise minimum"),
            instr("vmax", alu_cycles, "lane-wise maximum"),
            instr("vabs", alu_cycles, "lane-wise absolute value"),
            instr("vredmin", reduce_cycles, "horizontal min reduction"),
            instr("vredmax", reduce_cycles, "horizontal max reduction"),
        ]
    return group


def make_complex_instruction_set(elem: ScalarKind, *,
                                 mul_cycles: int = 2,
                                 mac_cycles: int = 2) -> list[Instruction]:
    """Scalar complex-arithmetic instruction group for c64/c128."""
    if not elem.is_complex:
        raise IsaError(f"complex instruction set requires a complex kind, got {elem.value}")
    suffix = elem.value

    def instr(op: str, cycles: int, description: str) -> Instruction:
        return Instruction(
            name=f"{op}_{suffix}",
            operation=op,
            elem=elem,
            lanes=1,
            cycles=cycles,
            intrinsic=f"asip_{op}_{suffix}",
            description=description,
        )

    return [
        instr("cadd", 1, "complex add"),
        instr("csub", 1, "complex subtract"),
        instr("cmul", mul_cycles, "complex multiply (4 mul + 2 add fused)"),
        instr("cmac", mac_cycles, "complex multiply-accumulate"),
        instr("cconj", 1, "complex conjugate"),
        instr("cmag2", 1, "squared magnitude |z|^2"),
    ]
