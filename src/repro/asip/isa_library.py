"""Ready-made processor descriptions.

Three targets ship with the compiler, spanning the retargetability axis
the paper demonstrates:

* :func:`generic_scalar_dsp` — a plain scalar DSP with no custom
  instructions.  Optimized and baseline code coincide on it (modulo
  scalar IR cleanups), which anchors the speedup comparison.
* :func:`vliw_simd_dsp` — the analogue of the paper's evaluation target:
  a DSP-oriented ASIP with 8-lane single / 4-lane double SIMD and scalar
  complex-arithmetic instructions.
* :func:`wide_simd_dsp` — a wider hypothetical variant (16/8 lanes, SIMD
  complex) used by the vector-width sweep experiment.

All three share the same scalar :class:`~repro.asip.model.CostTable`, so
differences between targets isolate the custom-instruction effect.
"""

from __future__ import annotations

import functools

from repro.asip.model import (
    CostTable,
    Instruction,
    ProcessorDescription,
    make_complex_instruction_set,
    make_simd_instruction_set,
)
from repro.errors import IsaError
from repro.ir.types import ScalarKind

#: Widest SIMD datapath any description may declare.  Far beyond any
#: plausible ASIP; the bound exists so a typo'd width (``simd_width:
#: 80000``) is a diagnosable description error, not an attempt to
#: materialize tens of thousands of instructions.
MAX_SIMD_LANES = 64


def validate_simd_width(width: int, *, source: str = "") -> int:
    """Check one SIMD width parameter; raises :class:`IsaError`.

    Widths must be integral, >= 1 (1 = scalar datapath, no SIMD) and a
    power of two no wider than :data:`MAX_SIMD_LANES` — the lane-split
    ladders (``w, w/2, w/4, ...``) every description builder emits
    only make sense on powers of two.
    """
    prefix = f"{source}: " if source else ""
    if isinstance(width, bool) or not isinstance(width, int):
        raise IsaError(f"{prefix}SIMD width must be an integer, "
                       f"got {width!r}")
    if width < 1:
        raise IsaError(f"{prefix}SIMD width must be >= 1, got {width}")
    if width & (width - 1):
        raise IsaError(f"{prefix}SIMD width must be a power of two, "
                       f"got {width}")
    if width > MAX_SIMD_LANES:
        raise IsaError(f"{prefix}SIMD width must be <= {MAX_SIMD_LANES}, "
                       f"got {width}")
    return width


def validate_cycle_cost(value: int, *, what: str = "cycle cost",
                        source: str = "") -> int:
    """Check one per-op cycle cost; raises :class:`IsaError`."""
    prefix = f"{source}: " if source else ""
    if isinstance(value, bool) or not isinstance(value, int):
        raise IsaError(f"{prefix}{what} must be an integer, got {value!r}")
    if value < 1:
        raise IsaError(f"{prefix}{what} must be >= 1, got {value}")
    return value


def generic_scalar_dsp() -> ProcessorDescription:
    """A scalar load/store DSP without custom instructions."""
    return ProcessorDescription(
        name="generic_scalar_dsp",
        description="baseline scalar DSP; no SIMD, no complex arithmetic",
        costs=CostTable(),
        instructions=[
            # A classic DSP still has a scalar MAC unit.
            Instruction(
                name="mac_f64",
                operation="mac",
                elem=ScalarKind.F64,
                lanes=1,
                cycles=1,
                intrinsic="asip_mac_f64",
                description="scalar fused multiply-accumulate",
            ),
            Instruction(
                name="mac_f32",
                operation="mac",
                elem=ScalarKind.F32,
                lanes=1,
                cycles=1,
                intrinsic="asip_mac_f32",
                description="scalar fused multiply-accumulate",
            ),
        ],
    )


def vliw_simd_dsp() -> ProcessorDescription:
    """The paper-target analogue: SIMD + complex-arithmetic ASIP."""
    instructions: list[Instruction] = []
    instructions += make_simd_instruction_set(ScalarKind.F32, 8)
    instructions += make_simd_instruction_set(ScalarKind.F64, 4)
    instructions += make_simd_instruction_set(ScalarKind.I16, 8)
    instructions += make_simd_instruction_set(ScalarKind.I32, 8)
    # The same 256-bit datapath carries complex lanes (re/im pairs).
    instructions += make_simd_instruction_set(ScalarKind.C64, 4,
                                              load_cycles=2, alu_cycles=2,
                                              mac_cycles=2, reduce_cycles=3)
    instructions += make_simd_instruction_set(ScalarKind.C128, 2,
                                              load_cycles=2, alu_cycles=2,
                                              mac_cycles=2, reduce_cycles=3)
    instructions += make_complex_instruction_set(ScalarKind.C64)
    instructions += make_complex_instruction_set(ScalarKind.C128)
    instructions += [
        Instruction(
            name="mac_f64",
            operation="mac",
            elem=ScalarKind.F64,
            lanes=1,
            cycles=1,
            intrinsic="asip_mac_f64",
            description="scalar fused multiply-accumulate",
        ),
        Instruction(
            name="mac_f32",
            operation="mac",
            elem=ScalarKind.F32,
            lanes=1,
            cycles=1,
            intrinsic="asip_mac_f32",
            description="scalar fused multiply-accumulate",
        ),
        Instruction(
            name="clip_f64",
            operation="clip",
            elem=ScalarKind.F64,
            lanes=1,
            cycles=1,
            intrinsic="asip_clip_f64",
            description="saturate to [lo, hi]",
        ),
        Instruction(
            name="clip_f32",
            operation="clip",
            elem=ScalarKind.F32,
            lanes=1,
            cycles=1,
            intrinsic="asip_clip_f32",
            description="saturate to [lo, hi]",
        ),
    ]
    return ProcessorDescription(
        name="vliw_simd_dsp",
        description=(
            "DSP-oriented ASIP with 8x f32 / 4x f64 SIMD datapath and "
            "scalar complex-arithmetic unit (paper evaluation target "
            "analogue)"
        ),
        costs=CostTable(),
        instructions=instructions,
    )


def wide_simd_dsp() -> ProcessorDescription:
    """A wider variant: 16x f32 / 8x f64 SIMD, plus SIMD complex ops."""
    instructions: list[Instruction] = []
    instructions += make_simd_instruction_set(ScalarKind.F32, 16)
    instructions += make_simd_instruction_set(ScalarKind.F32, 8)
    instructions += make_simd_instruction_set(ScalarKind.F64, 8)
    instructions += make_simd_instruction_set(ScalarKind.F64, 4)
    instructions += make_complex_instruction_set(ScalarKind.C64)
    instructions += make_complex_instruction_set(ScalarKind.C128)
    instructions += make_simd_instruction_set(ScalarKind.C128, 4,
                                              load_cycles=3, alu_cycles=2,
                                              mac_cycles=2, reduce_cycles=3)
    instructions += make_simd_instruction_set(ScalarKind.C64, 8,
                                              load_cycles=3, alu_cycles=2,
                                              mac_cycles=2, reduce_cycles=3)
    instructions += [
        Instruction(
            name="mac_f64",
            operation="mac",
            elem=ScalarKind.F64,
            lanes=1,
            cycles=1,
            intrinsic="asip_mac_f64",
            description="scalar fused multiply-accumulate",
        ),
    ]
    return ProcessorDescription(
        name="wide_simd_dsp",
        description="wide-SIMD ASIP variant with SIMD complex arithmetic",
        costs=CostTable(),
        instructions=instructions,
    )


def simd_dsp_with_width(lanes_f64: int) -> ProcessorDescription:
    """A parametric family used by the vector-width sweep (E6).

    A ``w``-lane double datapath also exposes its narrower power-of-two
    sub-widths (as real vector ISAs do), plus twice the lanes in single
    precision.
    """
    validate_simd_width(lanes_f64,
                        source=f"processor spec simd_width:{lanes_f64}")
    instructions: list[Instruction] = []
    width = lanes_f64
    while width >= 2:
        instructions += make_simd_instruction_set(ScalarKind.F64, width)
        instructions += make_simd_instruction_set(ScalarKind.F32, width * 2)
        width //= 2
    instructions += make_complex_instruction_set(ScalarKind.C128)
    instructions += make_complex_instruction_set(ScalarKind.C64)
    return ProcessorDescription(
        name=f"simd_dsp_w{lanes_f64}",
        description=f"parametric SIMD DSP, {lanes_f64}x f64 lanes",
        costs=CostTable(),
        instructions=instructions,
    )


def design_processor(name: str, *,
                     f32_lanes: int = 1,
                     complex_unit: bool = False,
                     scalar_mac: bool = False,
                     clip_unit: bool = False,
                     mac_cycles: int = 1,
                     mul_cycles: int = 1,
                     registers: int = 16,
                     source: str = "") -> ProcessorDescription:
    """Materialize one design-space candidate as a full description.

    This is the candidate-materialization half of ``repro-dse``: a
    point in the parameterized ISA space (SIMD width, complex/MAC/clip
    unit availability, per-op cycle costs, register count) becomes a
    concrete :class:`ProcessorDescription` the retargetable compiler
    can drive, built from the same instruction-group helpers the
    hand-written targets use.

    Args:
        f32_lanes: single-precision SIMD width (1 = scalar datapath);
            doubles carry half the lanes, complex kinds half again,
            and every narrower power-of-two sub-width is exposed too.
        complex_unit: scalar complex-arithmetic instruction group
            (cadd/cmul/cmac/...) for c64 and c128.
        scalar_mac: scalar fused multiply-accumulate unit (f32/f64).
        clip_unit: saturate-to-range instruction (f32/f64).
        mac_cycles: issue-to-result cost of MAC instructions (scalar
            and SIMD).
        mul_cycles: cost of SIMD multiplies and (doubled) complex
            multiplies.
        registers: architectural register count; affects the hardware
            cost model only, never compilation, so it is recorded in
            the description text rather than the instruction table.
        source: diagnostic prefix naming where the parameters came
            from (a space file, a CLI spec).

    All parameters are validated; a malformed value raises
    :class:`IsaError` with a sourced diagnostic.
    """
    validate_simd_width(f32_lanes, source=source)
    validate_cycle_cost(mac_cycles, what="mac_cycles", source=source)
    validate_cycle_cost(mul_cycles, what="mul_cycles", source=source)
    prefix = f"{source}: " if source else ""
    if isinstance(registers, bool) or not isinstance(registers, int) \
            or registers < 4:
        raise IsaError(f"{prefix}register count must be an integer "
                       f">= 4, got {registers!r}")

    instructions: list[Instruction] = []
    width = f32_lanes
    while width >= 2:
        instructions += make_simd_instruction_set(
            ScalarKind.F32, width, mac_cycles=mac_cycles,
            mul_cycles=mul_cycles)
        instructions += make_simd_instruction_set(
            ScalarKind.I32, width, mac_cycles=mac_cycles,
            mul_cycles=mul_cycles)
        if width // 2 >= 2:
            instructions += make_simd_instruction_set(
                ScalarKind.F64, width // 2, mac_cycles=mac_cycles,
                mul_cycles=mul_cycles)
        if complex_unit and width // 2 >= 2:
            instructions += make_simd_instruction_set(
                ScalarKind.C64, width // 2, load_cycles=2,
                alu_cycles=2, mac_cycles=max(mac_cycles, 2),
                reduce_cycles=3)
        if complex_unit and width // 4 >= 2:
            instructions += make_simd_instruction_set(
                ScalarKind.C128, width // 4, load_cycles=2,
                alu_cycles=2, mac_cycles=max(mac_cycles, 2),
                reduce_cycles=3)
        width //= 2
    if complex_unit:
        instructions += make_complex_instruction_set(
            ScalarKind.C64, mul_cycles=2 * mul_cycles,
            mac_cycles=2 * mac_cycles)
        instructions += make_complex_instruction_set(
            ScalarKind.C128, mul_cycles=2 * mul_cycles,
            mac_cycles=2 * mac_cycles)
    if scalar_mac:
        for elem in (ScalarKind.F32, ScalarKind.F64):
            instructions.append(Instruction(
                name=f"mac_{elem.value}", operation="mac", elem=elem,
                lanes=1, cycles=mac_cycles,
                intrinsic=f"asip_mac_{elem.value}",
                description="scalar fused multiply-accumulate"))
    if clip_unit:
        for elem in (ScalarKind.F32, ScalarKind.F64):
            instructions.append(Instruction(
                name=f"clip_{elem.value}", operation="clip", elem=elem,
                lanes=1, cycles=1,
                intrinsic=f"asip_clip_{elem.value}",
                description="saturate to [lo, hi]"))
    return ProcessorDescription(
        name=name,
        description=(f"DSE candidate: {f32_lanes}x f32 SIMD, "
                     f"complex={complex_unit}, mac={scalar_mac}, "
                     f"clip={clip_unit}, mac_cycles={mac_cycles}, "
                     f"mul_cycles={mul_cycles}, registers={registers}"),
        costs=CostTable(),
        instructions=instructions,
    )


_LIBRARY = {
    "generic_scalar_dsp": generic_scalar_dsp,
    "vliw_simd_dsp": vliw_simd_dsp,
    "wide_simd_dsp": wide_simd_dsp,
}


def available_processors() -> list[str]:
    return sorted(_LIBRARY)


@functools.lru_cache(maxsize=None)
def load_processor(name: str) -> ProcessorDescription:
    """Shipped processor description by name.

    Memoized: descriptions are immutable in practice (the compiler
    never mutates them), and rebuilding the full instruction list on
    every ``compile_source`` call showed up in profiles.  Repeated
    loads return the identical object, so ``processor is processor``
    comparisons and fingerprint caching stay cheap.
    """
    try:
        return _LIBRARY[name]()
    except KeyError:
        raise KeyError(
            f"unknown processor {name!r}; available: "
            f"{', '.join(available_processors())}") from None
