"""Ready-made processor descriptions.

Three targets ship with the compiler, spanning the retargetability axis
the paper demonstrates:

* :func:`generic_scalar_dsp` — a plain scalar DSP with no custom
  instructions.  Optimized and baseline code coincide on it (modulo
  scalar IR cleanups), which anchors the speedup comparison.
* :func:`vliw_simd_dsp` — the analogue of the paper's evaluation target:
  a DSP-oriented ASIP with 8-lane single / 4-lane double SIMD and scalar
  complex-arithmetic instructions.
* :func:`wide_simd_dsp` — a wider hypothetical variant (16/8 lanes, SIMD
  complex) used by the vector-width sweep experiment.

All three share the same scalar :class:`~repro.asip.model.CostTable`, so
differences between targets isolate the custom-instruction effect.
"""

from __future__ import annotations

import functools

from repro.asip.model import (
    CostTable,
    Instruction,
    ProcessorDescription,
    make_complex_instruction_set,
    make_simd_instruction_set,
)
from repro.ir.types import ScalarKind


def generic_scalar_dsp() -> ProcessorDescription:
    """A scalar load/store DSP without custom instructions."""
    return ProcessorDescription(
        name="generic_scalar_dsp",
        description="baseline scalar DSP; no SIMD, no complex arithmetic",
        costs=CostTable(),
        instructions=[
            # A classic DSP still has a scalar MAC unit.
            Instruction(
                name="mac_f64",
                operation="mac",
                elem=ScalarKind.F64,
                lanes=1,
                cycles=1,
                intrinsic="asip_mac_f64",
                description="scalar fused multiply-accumulate",
            ),
            Instruction(
                name="mac_f32",
                operation="mac",
                elem=ScalarKind.F32,
                lanes=1,
                cycles=1,
                intrinsic="asip_mac_f32",
                description="scalar fused multiply-accumulate",
            ),
        ],
    )


def vliw_simd_dsp() -> ProcessorDescription:
    """The paper-target analogue: SIMD + complex-arithmetic ASIP."""
    instructions: list[Instruction] = []
    instructions += make_simd_instruction_set(ScalarKind.F32, 8)
    instructions += make_simd_instruction_set(ScalarKind.F64, 4)
    instructions += make_simd_instruction_set(ScalarKind.I16, 8)
    instructions += make_simd_instruction_set(ScalarKind.I32, 8)
    # The same 256-bit datapath carries complex lanes (re/im pairs).
    instructions += make_simd_instruction_set(ScalarKind.C64, 4,
                                              load_cycles=2, alu_cycles=2,
                                              mac_cycles=2, reduce_cycles=3)
    instructions += make_simd_instruction_set(ScalarKind.C128, 2,
                                              load_cycles=2, alu_cycles=2,
                                              mac_cycles=2, reduce_cycles=3)
    instructions += make_complex_instruction_set(ScalarKind.C64)
    instructions += make_complex_instruction_set(ScalarKind.C128)
    instructions += [
        Instruction(
            name="mac_f64",
            operation="mac",
            elem=ScalarKind.F64,
            lanes=1,
            cycles=1,
            intrinsic="asip_mac_f64",
            description="scalar fused multiply-accumulate",
        ),
        Instruction(
            name="mac_f32",
            operation="mac",
            elem=ScalarKind.F32,
            lanes=1,
            cycles=1,
            intrinsic="asip_mac_f32",
            description="scalar fused multiply-accumulate",
        ),
        Instruction(
            name="clip_f64",
            operation="clip",
            elem=ScalarKind.F64,
            lanes=1,
            cycles=1,
            intrinsic="asip_clip_f64",
            description="saturate to [lo, hi]",
        ),
        Instruction(
            name="clip_f32",
            operation="clip",
            elem=ScalarKind.F32,
            lanes=1,
            cycles=1,
            intrinsic="asip_clip_f32",
            description="saturate to [lo, hi]",
        ),
    ]
    return ProcessorDescription(
        name="vliw_simd_dsp",
        description=(
            "DSP-oriented ASIP with 8x f32 / 4x f64 SIMD datapath and "
            "scalar complex-arithmetic unit (paper evaluation target "
            "analogue)"
        ),
        costs=CostTable(),
        instructions=instructions,
    )


def wide_simd_dsp() -> ProcessorDescription:
    """A wider variant: 16x f32 / 8x f64 SIMD, plus SIMD complex ops."""
    instructions: list[Instruction] = []
    instructions += make_simd_instruction_set(ScalarKind.F32, 16)
    instructions += make_simd_instruction_set(ScalarKind.F32, 8)
    instructions += make_simd_instruction_set(ScalarKind.F64, 8)
    instructions += make_simd_instruction_set(ScalarKind.F64, 4)
    instructions += make_complex_instruction_set(ScalarKind.C64)
    instructions += make_complex_instruction_set(ScalarKind.C128)
    instructions += make_simd_instruction_set(ScalarKind.C128, 4,
                                              load_cycles=3, alu_cycles=2,
                                              mac_cycles=2, reduce_cycles=3)
    instructions += make_simd_instruction_set(ScalarKind.C64, 8,
                                              load_cycles=3, alu_cycles=2,
                                              mac_cycles=2, reduce_cycles=3)
    instructions += [
        Instruction(
            name="mac_f64",
            operation="mac",
            elem=ScalarKind.F64,
            lanes=1,
            cycles=1,
            intrinsic="asip_mac_f64",
            description="scalar fused multiply-accumulate",
        ),
    ]
    return ProcessorDescription(
        name="wide_simd_dsp",
        description="wide-SIMD ASIP variant with SIMD complex arithmetic",
        costs=CostTable(),
        instructions=instructions,
    )


def simd_dsp_with_width(lanes_f64: int) -> ProcessorDescription:
    """A parametric family used by the vector-width sweep (E6).

    A ``w``-lane double datapath also exposes its narrower power-of-two
    sub-widths (as real vector ISAs do), plus twice the lanes in single
    precision.
    """
    instructions: list[Instruction] = []
    width = lanes_f64
    while width >= 2:
        instructions += make_simd_instruction_set(ScalarKind.F64, width)
        instructions += make_simd_instruction_set(ScalarKind.F32, width * 2)
        width //= 2
    instructions += make_complex_instruction_set(ScalarKind.C128)
    instructions += make_complex_instruction_set(ScalarKind.C64)
    return ProcessorDescription(
        name=f"simd_dsp_w{lanes_f64}",
        description=f"parametric SIMD DSP, {lanes_f64}x f64 lanes",
        costs=CostTable(),
        instructions=instructions,
    )


_LIBRARY = {
    "generic_scalar_dsp": generic_scalar_dsp,
    "vliw_simd_dsp": vliw_simd_dsp,
    "wide_simd_dsp": wide_simd_dsp,
}


def available_processors() -> list[str]:
    return sorted(_LIBRARY)


@functools.lru_cache(maxsize=None)
def load_processor(name: str) -> ProcessorDescription:
    """Shipped processor description by name.

    Memoized: descriptions are immutable in practice (the compiler
    never mutates them), and rebuilding the full instruction list on
    every ``compile_source`` call showed up in profiles.  Repeated
    loads return the identical object, so ``processor is processor``
    comparisons and fingerprint caching stay cheap.
    """
    try:
        return _LIBRARY[name]()
    except KeyError:
        raise KeyError(
            f"unknown processor {name!r}; available: "
            f"{', '.join(available_processors())}") from None
