"""repro — a retargetable MATLAB-to-C compiler for ASIPs.

Reproduction of "Matlab to C Compilation Targeting Application Specific
Instruction Set Processors" (Latifis et al., DATE 2016).

Quickstart::

    from repro import compile_source, arg

    result = compile_source(matlab_text, args=[arg((1, 256))])
    print(result.c_source())                 # ANSI C with intrinsics
    outputs = result.simulate([x]).outputs   # cycle-accurate ASIP run
"""

from repro.asip.isa_library import available_processors, load_processor
from repro.asip.model import (
    CostTable,
    Instruction,
    ProcessorDescription,
    make_complex_instruction_set,
    make_simd_instruction_set,
)
from repro.compiler import (
    CompilationResult,
    CompilerOptions,
    arg,
    compile_source,
)
from repro.errors import (
    CompileError,
    LexError,
    ParseError,
    ReproError,
    SemanticError,
    UnsupportedFeatureError,
)
from repro.mlab.interp import MatlabInterpreter

__version__ = "1.0.0"

__all__ = [
    "CompilationResult",
    "CompileError",
    "CompilerOptions",
    "CostTable",
    "Instruction",
    "LexError",
    "MatlabInterpreter",
    "ParseError",
    "ProcessorDescription",
    "ReproError",
    "SemanticError",
    "UnsupportedFeatureError",
    "arg",
    "available_processors",
    "compile_source",
    "load_processor",
    "make_complex_instruction_set",
    "make_simd_instruction_set",
]
