"""Unit tests for the IR optimization passes.

Each pass is tested both structurally (the rewrite happened) and
semantically (simulated results are unchanged), using small MATLAB
programs lowered through the real pipeline.
"""

import numpy as np

from repro.asip.isa_library import generic_scalar_dsp
from repro.frontend.parser import parse
from repro.ir import nodes as ir
from repro.ir.builder import lower_program
from repro.ir.passes.constant_folding import ConstantFolding
from repro.ir.passes.cse import CommonSubexpressionElimination
from repro.ir.passes.dce import DeadCodeElimination
from repro.ir.passes.licm import LoopInvariantCodeMotion
from repro.ir.passes.loop_fusion import LoopFusion
from repro.ir.passes.manager import PassManager, cleanup_pipeline, \
    minimal_pipeline, standard_pipeline
from repro.ir.passes.propagation import ConstantPropagation
from repro.ir.printer import format_module
from repro.ir.types import I32, ScalarKind, ScalarType
from repro.ir.verifier import verify_module
from repro.semantics.inference import specialize_program
from repro.semantics.shapes import Shape
from repro.semantics.types import DType, MType
from repro.sim.machine import Simulator

F64 = ScalarType(ScalarKind.F64)


def build(source: str, entry: str, args):
    sprog = specialize_program(parse(source), entry, args)
    return lower_program(sprog, mode="fused")


def row(n: int) -> MType:
    return MType(DType.DOUBLE, False, Shape(1, n))


def run_module(module, inputs):
    return Simulator(module, generic_scalar_dsp()).run(list(inputs))


def assert_semantics_preserved(source, entry, args, inputs, pipeline):
    reference = build(source, entry, args)
    optimized = build(source, entry, args)
    pipeline.run(optimized)
    verify_module(optimized)
    ref_out = run_module(reference, inputs).outputs
    opt_out = run_module(optimized, inputs).outputs
    for expected, actual in zip(ref_out, opt_out):
        assert np.allclose(np.asarray(actual), np.asarray(expected))
    return optimized


# ----------------------------------------------------------------------
# Constant folding
# ----------------------------------------------------------------------


def fold_expr(expr: ir.Expr) -> ir.Expr:
    func = ir.IRFunction(name="t", locals={"v": F64, "i": I32},
                         body=[ir.AssignVar("v", expr)])
    ConstantFolding().run(func)
    return func.body[0].value


def test_fold_constant_arithmetic():
    expr = ir.BinOp(F64, op="add", left=ir.Const(F64, 2.0),
                    right=ir.Const(F64, 3.0))
    assert fold_expr(expr).value == 5.0


def test_fold_add_zero_identity():
    expr = ir.BinOp(F64, op="add", left=ir.VarRef(F64, "v"),
                    right=ir.Const(F64, 0.0))
    folded = fold_expr(expr)
    assert isinstance(folded, ir.VarRef)


def test_fold_mul_one_identity():
    expr = ir.BinOp(F64, op="mul", left=ir.Const(F64, 1.0),
                    right=ir.VarRef(F64, "v"))
    assert isinstance(fold_expr(expr), ir.VarRef)


def test_no_mul_zero_fold_for_floats():
    # 0 * NaN must stay NaN, so x*0 is not folded for floats.
    expr = ir.BinOp(F64, op="mul", left=ir.VarRef(F64, "v"),
                    right=ir.Const(F64, 0.0))
    assert isinstance(fold_expr(expr), ir.BinOp)


def test_mul_zero_folds_for_integers():
    expr = ir.BinOp(I32, op="mul", left=ir.VarRef(I32, "i"),
                    right=ir.Const(I32, 0))
    func = ir.IRFunction(name="t", locals={"i": I32, "o": I32},
                         body=[ir.AssignVar("o", expr)])
    ConstantFolding().run(func)
    assert isinstance(func.body[0].value, ir.Const)


def test_cast_roundtrip_removed():
    inner = ir.Cast(F64, operand=ir.VarRef(I32, "i"))
    expr = ir.Cast(I32, operand=inner)
    func = ir.IRFunction(name="t", locals={"i": I32, "o": I32},
                         body=[ir.AssignVar("o", expr)])
    ConstantFolding().run(func)
    assert isinstance(func.body[0].value, ir.VarRef)


def test_cast_narrowing_of_index_arithmetic():
    # cast<i32>(cast<f64>(i) + 1.0) -> i + 1
    inner = ir.BinOp(F64, op="add",
                     left=ir.Cast(F64, operand=ir.VarRef(I32, "i")),
                     right=ir.Const(F64, 1.0))
    expr = ir.Cast(I32, operand=inner)
    func = ir.IRFunction(name="t", locals={"i": I32, "o": I32},
                         body=[ir.AssignVar("o", expr)])
    ConstantFolding().run(func)
    value = func.body[0].value
    assert isinstance(value, ir.BinOp) and value.type == I32


def test_reassociation_of_integer_offsets():
    # (i + 2) - 1 -> i + 1
    expr = ir.BinOp(I32, op="sub",
                    left=ir.BinOp(I32, op="add", left=ir.VarRef(I32, "i"),
                                  right=ir.Const(I32, 2)),
                    right=ir.Const(I32, 1))
    func = ir.IRFunction(name="t", locals={"i": I32, "o": I32},
                         body=[ir.AssignVar("o", expr)])
    ConstantFolding().run(func)
    value = func.body[0].value
    assert isinstance(value, ir.BinOp)
    assert isinstance(value.right, ir.Const) and value.right.value == 1


def test_dead_if_branch_removed():
    stmt = ir.If(condition=ir.Const(ScalarType(ScalarKind.BOOL), False),
                 then_body=[ir.AssignVar("v", ir.Const(F64, 1.0))],
                 else_body=[ir.AssignVar("v", ir.Const(F64, 2.0))])
    func = ir.IRFunction(name="t", locals={"v": F64}, body=[stmt])
    ConstantFolding().run(func)
    assert isinstance(func.body[0], ir.AssignVar)
    assert func.body[0].value.value == 2.0


def test_zero_trip_loop_removed():
    loop = ir.ForRange(var="i", start=ir.Const(I32, 5),
                       stop=ir.Const(I32, 5), step=1,
                       body=[ir.AssignVar("v", ir.Const(F64, 1.0))])
    func = ir.IRFunction(name="t", locals={"v": F64, "i": I32}, body=[loop])
    ConstantFolding().run(func)
    assert func.body == []


def test_fold_comparison_to_bool():
    expr = ir.BinOp(ScalarType(ScalarKind.BOOL), op="lt",
                    left=ir.Const(F64, 1.0), right=ir.Const(F64, 2.0))
    func = ir.IRFunction(name="t", locals={"b": ScalarType(ScalarKind.BOOL)},
                         body=[ir.AssignVar("b", expr)])
    ConstantFolding().run(func)
    assert func.body[0].value.value is True


def test_double_negation_removed():
    expr = ir.UnOp(F64, op="neg",
                   operand=ir.UnOp(F64, op="neg",
                                   operand=ir.VarRef(F64, "v")))
    assert isinstance(fold_expr(expr), ir.VarRef)


def test_math_call_folding():
    expr = ir.MathCall(F64, name="sqrt", args=[ir.Const(F64, 16.0)])
    assert fold_expr(expr).value == 4.0


# ----------------------------------------------------------------------
# Constant propagation
# ----------------------------------------------------------------------


def test_propagation_through_straight_line():
    src = "function y = f(x)\nn = 3;\nm = n + 1;\ny = x * m;\nend"
    module = build(src, "f", [MType.double()])
    PassManager([ConstantPropagation(), ConstantFolding()]).run(module)
    text = format_module(module)
    assert "4.0" in text


def test_propagation_killed_by_loop_assignment():
    src = """
function y = f(x)
s = 1;
for k = 1:3
    s = s * x;
end
y = s;
end
"""
    assert_semantics_preserved(src, "f", [MType.double()], [2.0],
                               PassManager([ConstantPropagation(),
                                            ConstantFolding()]))


def test_while_condition_not_constant_folded():
    # Regression: substituting the pre-loop constant into a while
    # condition whose variable the body changes caused out-of-bounds
    # butterfly indices in the FFT.
    src = """
function y = f(x)
n = 1;
y = 0;
while n < x
    y = y + n;
    n = n * 2;
end
end
"""
    assert_semantics_preserved(src, "f", [MType.double()], [100.0],
                               PassManager([ConstantPropagation(),
                                            ConstantFolding()]))


def test_propagation_branch_kill():
    src = """
function y = f(c)
v = 5;
if c > 0
    v = 6;
end
y = v;
end
"""
    module = assert_semantics_preserved(
        src, "f", [MType.double()], [1.0],
        PassManager([ConstantPropagation(), ConstantFolding()]))
    # v after the if must NOT have been replaced by 5.
    result = run_module(module, [1.0]).outputs[0]
    assert result == 6.0


# ----------------------------------------------------------------------
# DCE
# ----------------------------------------------------------------------


def test_dce_removes_dead_scalar():
    src = "function y = f(x)\ndead = x * 3;\ny = x + 1;\nend"
    module = build(src, "f", [MType.double()])
    DeadCodeElimination().run(module.functions[0])
    text = format_module(module)
    assert "dead" not in text


def test_dce_removes_dead_array_loop():
    src = """
function y = f(x)
tmp = zeros(1, 4);
for k = 1:4
    tmp(k) = x;
end
y = x;
end
"""
    module = build(src, "f", [MType.double()])
    PassManager([DeadCodeElimination()]).run(module)
    loops = [s for s in ir.walk_statements(module.entry_function.body)
             if isinstance(s, ir.ForRange)]
    assert loops == []
    assert "tmp" not in module.entry_function.locals


def test_dce_keeps_outputs_and_emits():
    src = "function y = f(x)\ny = x;\nfprintf('hi\\n');\nend"
    module = build(src, "f", [MType.double()])
    DeadCodeElimination().run(module.functions[0])
    assert any(isinstance(s, ir.Emit)
               for s in ir.walk_statements(module.entry_function.body))


def test_dce_iterates_through_chains():
    src = "function y = f(x)\na = x + 1;\nb = a * 2;\nc = b - 3;\ny = x;\nend"
    module = build(src, "f", [MType.double()])
    PassManager([DeadCodeElimination()]).run(module)
    assigns = [s for s in ir.walk_statements(module.entry_function.body)
               if isinstance(s, ir.AssignVar)]
    assert len(assigns) == 1  # only y


# ----------------------------------------------------------------------
# CSE
# ----------------------------------------------------------------------


def test_cse_dedups_repeated_index():
    i = ir.VarRef(I32, "i")
    index = ir.BinOp(I32, op="add", left=i, right=ir.Const(I32, 4))
    load = ir.Load(F64, array="a", index=index)
    index2 = ir.BinOp(I32, op="add", left=ir.VarRef(I32, "i"),
                      right=ir.Const(I32, 4))
    store = ir.Store(array="a", index=index2,
                     value=ir.BinOp(F64, op="add", left=load,
                                    right=ir.Const(F64, 1.0)))
    func = ir.IRFunction(
        name="t", locals={"i": I32},
        body=[store])
    func.declare("a", None)  # replaced below with a proper array type
    from repro.ir.types import ArrayType
    func.locals["a"] = ArrayType(F64, 1, 16)
    changed = CommonSubexpressionElimination().run(func)
    assert changed
    assert isinstance(func.body[0], ir.AssignVar)  # the cse temp
    assert func.body[0].name.startswith("cse")


def test_cse_semantics_on_matmul():
    src = "function C = f(A, B)\nC = A * B;\nend"
    args = [MType(DType.DOUBLE, False, Shape(3, 3)),
            MType(DType.DOUBLE, False, Shape(3, 3))]
    a = np.arange(9.0).reshape(3, 3)
    b = np.arange(9.0, 18.0).reshape(3, 3)
    module = assert_semantics_preserved(
        "function C = f(A, B)\nC = A * B;\nend", "f", args, [a, b],
        cleanup_pipeline())


def test_cse_does_not_touch_loads():
    # Loads are not CSE candidates (stores could intervene).
    from repro.ir.types import ArrayType
    load1 = ir.Load(F64, array="a", index=ir.Const(I32, 0))
    load2 = ir.Load(F64, array="a", index=ir.Const(I32, 0))
    value = ir.BinOp(F64, op="add", left=load1, right=load2)
    func = ir.IRFunction(name="t",
                         locals={"v": F64, "a": ArrayType(F64, 1, 4)},
                         body=[ir.AssignVar("v", value)])
    CommonSubexpressionElimination().run(func)
    assert isinstance(func.body[0].value, ir.BinOp)


# ----------------------------------------------------------------------
# LICM
# ----------------------------------------------------------------------


def test_licm_hoists_invariant_prefix():
    body = [
        ir.AssignVar("inv", ir.BinOp(F64, op="mul",
                                     left=ir.VarRef(F64, "x"),
                                     right=ir.Const(F64, 2.0))),
        ir.AssignVar("acc", ir.BinOp(F64, op="add",
                                     left=ir.VarRef(F64, "acc"),
                                     right=ir.VarRef(F64, "inv"))),
    ]
    loop = ir.ForRange(var="i", start=ir.Const(I32, 0),
                       stop=ir.Const(I32, 8), step=1, body=body)
    func = ir.IRFunction(name="t",
                         locals={"i": I32, "x": F64, "inv": F64,
                                 "acc": F64},
                         body=[ir.AssignVar("acc", ir.Const(F64, 0.0)),
                               loop])
    assert LoopInvariantCodeMotion().run(func)
    assert isinstance(func.body[1], ir.AssignVar)
    assert func.body[1].name == "inv"
    assert len(loop.body) == 1


def test_licm_skips_possibly_zero_trip_loops():
    body = [ir.AssignVar("inv", ir.Const(F64, 1.0))]
    loop = ir.ForRange(var="i", start=ir.Const(I32, 0),
                       stop=ir.VarRef(I32, "n"), step=1, body=list(body))
    func = ir.IRFunction(name="t", locals={"i": I32, "n": I32, "inv": F64},
                         body=[loop])
    assert not LoopInvariantCodeMotion().run(func)


def test_licm_skips_variant_values():
    body = [ir.AssignVar("v", ir.Cast(F64, operand=ir.VarRef(I32, "i")))]
    loop = ir.ForRange(var="i", start=ir.Const(I32, 0),
                       stop=ir.Const(I32, 8), step=1, body=list(body))
    func = ir.IRFunction(name="t", locals={"i": I32, "v": F64}, body=[loop])
    assert not LoopInvariantCodeMotion().run(func)


# ----------------------------------------------------------------------
# Loop fusion
# ----------------------------------------------------------------------


def test_fusion_of_elementwise_chain():
    src = """
function y = f(a, b)
t = a .* b;
y = t + a;
end
"""
    module = build(src, "f", [row(8), row(8)])
    PassManager([LoopFusion()]).run(module)
    loops = [s for s in ir.walk_statements(module.entry_function.body)
             if isinstance(s, ir.ForRange)]
    assert len(loops) == 1


def test_fusion_semantics():
    src = """
function y = f(a, b)
t = a .* b;
u = t + a;
y = u ./ 2;
end
"""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((1, 8))
    b = rng.standard_normal((1, 8))
    assert_semantics_preserved(src, "f", [row(8), row(8)], [a, b],
                               PassManager([LoopFusion()]))


def test_fusion_rejects_different_bounds():
    src = """
function [y, z] = f(a, b)
y = a + 1;
z = b + 1;
end
"""
    module = build(src, "f", [row(8), row(5)])
    changed = LoopFusion().run(module.entry_function)
    assert not changed


def test_fusion_rejects_scalar_flow():
    # Loop 1 computes a scalar the second loop reads: order matters.
    body1 = [ir.AssignVar("s", ir.Load(F64, array="a",
                                       index=ir.VarRef(I32, "i")))]
    body2 = [ir.Store(array="b", index=ir.VarRef(I32, "j"),
                      value=ir.VarRef(F64, "s"))]
    from repro.ir.types import ArrayType
    loop1 = ir.ForRange(var="i", start=ir.Const(I32, 0),
                        stop=ir.Const(I32, 4), step=1, body=body1)
    loop2 = ir.ForRange(var="j", start=ir.Const(I32, 0),
                        stop=ir.Const(I32, 4), step=1, body=body2)
    func = ir.IRFunction(name="t",
                         locals={"i": I32, "j": I32, "s": F64,
                                 "a": ArrayType(F64, 1, 4),
                                 "b": ArrayType(F64, 1, 4)},
                         body=[loop1, loop2])
    assert not LoopFusion().run(func)


def test_fusion_rejects_offset_dependence():
    # Loop 2 reads a[i+1] which loop 1 writes: not element-wise aligned.
    from repro.ir.types import ArrayType
    loop1 = ir.ForRange(
        var="i", start=ir.Const(I32, 0), stop=ir.Const(I32, 4), step=1,
        body=[ir.Store(array="a", index=ir.VarRef(I32, "i"),
                       value=ir.Const(F64, 1.0))])
    shifted = ir.BinOp(I32, op="add", left=ir.VarRef(I32, "j"),
                       right=ir.Const(I32, 1))
    loop2 = ir.ForRange(
        var="j", start=ir.Const(I32, 0), stop=ir.Const(I32, 4), step=1,
        body=[ir.Store(array="b", index=ir.VarRef(I32, "j"),
                       value=ir.Load(F64, array="a", index=shifted))])
    func = ir.IRFunction(name="t",
                         locals={"i": I32, "j": I32,
                                 "a": ArrayType(F64, 1, 8),
                                 "b": ArrayType(F64, 1, 8)},
                         body=[loop1, loop2])
    assert not LoopFusion().run(func)


# ----------------------------------------------------------------------
# Whole pipelines
# ----------------------------------------------------------------------


def test_standard_pipeline_preserves_fir():
    src = (Path := __import__("pathlib").Path)(
        "examples/mlab/fir.m").read_text()
    rng = np.random.default_rng(1)
    x = rng.standard_normal((1, 32))
    h = rng.standard_normal((1, 8))
    assert_semantics_preserved(src, "fir", [row(32), row(8)], [x, h],
                               standard_pipeline())


def test_minimal_pipeline_runs():
    src = "function y = f(x)\ny = x * (2 + 3);\nend"
    module = build(src, "f", [MType.double()])
    minimal_pipeline().run(module)
    assert run_module(module, [4.0]).outputs[0] == 20.0


def test_pass_manager_reports_stats():
    src = "function y = f(x)\nn = 1 + 1;\ny = x * n;\nend"
    module = build(src, "f", [MType.double()])
    stats = standard_pipeline().run(module)
    assert stats  # at least one pass did something


def test_licm_does_not_hoist_self_accumulation():
    """Regression: acc = acc + invariant inside a loop is NOT invariant
    (hoisting it collapsed pure scalar accumulation loops)."""
    src = """
function acc = f(v)
acc = 0;
for k = 1:3
    acc = acc + v / 3;
end
end
"""
    module = assert_semantics_preserved(src, "f", [MType.double()], [3.0],
                                        standard_pipeline())
    assert abs(run_module(module, [3.0]).outputs[0] - 3.0) < 1e-12
