"""Tests for the metrics registry, its exposition surfaces, and the
``repro-stats`` gate.

The load-bearing property is **merge exactness**: histograms quantize
observations to integer nanoseconds on a fixed bucket grid, so merging
worker snapshots is associative and order-independent — sharding a
workload over N processes and merging yields *bit-identical* registry
state to observing serially.  Hypothesis proves it below; the parallel
compilation service and the sharded fuzzer both lean on it.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observe.events import format_events
from repro.observe.expo import metric_name, to_prometheus
from repro.observe.metrics import (SCHEMA, atomic_write_text,
                                   build_report)
from repro.observe.stats_cli import main as stats_main
from repro.observe.telemetry import (BOUNDS, BUCKET_LAYOUT,
                                     SNAPSHOT_SCHEMA, Histogram,
                                     MetricsRegistry, merged)
from repro.observe.trace import TraceSession


# latencies spanning the full grid: sub-bucket (ns) to near the 100 s
# overflow bucket
latency = st.floats(min_value=0.0, max_value=200.0,
                    allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------------
# Histogram mechanics
# ---------------------------------------------------------------------


def test_histogram_summary_fields():
    histogram = Histogram()
    for seconds in (0.001, 0.002, 0.004, 0.100):
        histogram.observe_ns(int(seconds * 1e9))
    digest = histogram.summary()
    assert digest["count"] == 4
    assert digest["min_s"] == pytest.approx(0.001)
    assert digest["max_s"] == pytest.approx(0.100)
    assert digest["min_s"] <= digest["p50_s"] <= digest["p99_s"] \
        <= digest["max_s"]
    assert digest["sum_s"] == pytest.approx(0.107)


def test_empty_histogram_summary():
    assert Histogram().summary() == {"count": 0}
    assert Histogram().percentile_ns(0.5) is None


def test_layout_mismatch_merge_is_an_error():
    histogram = Histogram()
    with pytest.raises(ValueError, match="bucket layout"):
        histogram.merge({"layout": "ns-999-v0", "counts": [], "count": 0,
                         "sum_ns": 0})


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2 * 10 ** 11),
                min_size=1, max_size=200),
       st.sampled_from([0.50, 0.90, 0.99]))
def test_percentile_matches_numpy_bucket(values, q):
    """The rank-interpolated estimate lands in the same bucket as the
    exact nearest-rank quantile numpy computes from the raw samples."""
    from bisect import bisect_left

    histogram = Histogram()
    for value in values:
        histogram.observe_ns(value)
    estimate = histogram.percentile_ns(q)
    exact = int(np.quantile(np.array(values), q,
                            method="inverted_cdf"))
    assert bisect_left(BOUNDS, estimate) == bisect_left(BOUNDS, exact)


# ---------------------------------------------------------------------
# Merge exactness (the service/fuzzer aggregation invariant)
# ---------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.lists(st.lists(latency, max_size=30), min_size=1, max_size=6),
       st.randoms(use_true_random=False))
def test_shard_merge_is_bit_identical_to_serial(shards, rng):
    serial = MetricsRegistry()
    snapshots = []
    for shard_index, shard in enumerate(shards):
        worker = MetricsRegistry()
        for seconds in shard:
            serial.observe("exec_s", seconds)
            worker.observe("exec_s", seconds)
        serial.counter("jobs", len(shard))
        worker.counter("jobs", len(shard))
        snapshots.append(worker.snapshot())
    rng.shuffle(snapshots)  # order independence, not just associativity
    assert merged(snapshots).snapshot() == serial.snapshot()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.lists(latency, max_size=20), min_size=2, max_size=6))
def test_merge_is_associative(shards):
    """((a+b)+c)+... == a+(b+(c+...)) on the serialized state."""
    snapshots = []
    for shard in shards:
        worker = MetricsRegistry()
        for seconds in shard:
            worker.observe("exec_s", seconds)
        snapshots.append(worker.snapshot())

    left = MetricsRegistry()
    for snapshot in snapshots:
        left.merge(snapshot)

    def fold_right(items):
        registry = MetricsRegistry()
        registry.merge(items[0])
        if len(items) > 1:
            registry.merge(fold_right(items[1:]).snapshot())
        return registry

    assert left.snapshot() == fold_right(snapshots).snapshot()


def test_counters_add_and_gauges_max_on_merge():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("n", 3)
    b.counter("n", 4)
    a.gauge("peak", 2.0)
    b.gauge("peak", 7.0)
    a.merge(b)
    snapshot = a.snapshot()
    assert snapshot["schema"] == SNAPSHOT_SCHEMA
    assert snapshot["counters"] == {"n": 7}
    assert snapshot["gauges"] == {"peak": 7.0}


def test_disabled_registry_records_nothing():
    registry = MetricsRegistry(enabled=False)
    registry.counter("n")
    registry.gauge("g", 1.0)
    registry.observe("h_s", 0.5)
    assert registry.snapshot()["counters"] == {}
    assert registry.snapshot()["histograms"] == {}


def test_registry_timer_records_one_sample():
    registry = MetricsRegistry()
    with registry.time("stage_s"):
        pass
    assert registry.snapshot()["histograms"]["stage_s"]["count"] == 1


# ---------------------------------------------------------------------
# Session integration: counters mirror, events carry span ids
# ---------------------------------------------------------------------


def test_session_counter_mirrors_into_registry():
    session = TraceSession()
    session.counter("cache.hit", 2)
    session.observe("get_s", 0.25)
    snapshot = session.metrics.snapshot()
    assert snapshot["counters"]["cache.hit"] == 2
    assert snapshot["histograms"]["get_s"]["count"] == 1


def test_events_carry_enclosing_span_id():
    session = TraceSession()
    with session.span("outer") as span:
        session.event("thing.happened", detail=7)
    assert span.id > 0
    event = session.events[0]
    assert event["kind"] == "thing.happened"
    assert event["span_id"] == span.id
    assert event["detail"] == 7
    # The span id also appears in the Chrome trace args: the join key.
    trace = session.to_chrome_trace()
    span_events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert any(e["args"].get("span_id") == span.id for e in span_events)


def test_disabled_session_collects_no_metrics_or_events():
    session = TraceSession(enabled=False)
    session.observe("h_s", 1.0)
    session.event("kind")
    assert session.events == []
    assert session.metrics.snapshot()["histograms"] == {}


# ---------------------------------------------------------------------
# Exposition: Prometheus text, JSONL events, atomic publish
# ---------------------------------------------------------------------


def test_metric_name_sanitization():
    assert metric_name("cache.mem_hit_s") == "repro_cache_mem_hit_seconds"
    assert metric_name("sim.runs") == "repro_sim_runs"


def test_prometheus_exposition_is_well_formed():
    registry = MetricsRegistry()
    registry.counter("cache.hit", 5)
    registry.gauge("batch.workers", 4)
    for seconds in (0.0001, 0.001, 0.5):
        registry.observe("exec_s", seconds)
    text = to_prometheus(registry.snapshot())
    assert text.endswith("\n")
    lines = text.splitlines()
    import re
    sample = re.compile(
        r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? [-+0-9.e]+(\d|inf)?$')
    for line in lines:
        assert line.startswith("# TYPE ") or sample.match(line), line
    assert "repro_cache_hit_total 5" in lines
    assert "repro_batch_workers 4.0" in lines
    assert 'repro_exec_seconds_bucket{le="+Inf"} 3' in lines
    assert "repro_exec_seconds_count 3" in lines
    # Cumulative bucket counts never decrease.
    buckets = [int(line.rsplit(" ", 1)[1]) for line in lines
               if line.startswith("repro_exec_seconds_bucket")]
    assert buckets == sorted(buckets)


def test_events_jsonl_round_trips():
    session = TraceSession()
    session.event("a", x=1)
    session.event("b", y="text")
    text = format_events(session.events)
    parsed = [json.loads(line) for line in text.splitlines()]
    assert [event["kind"] for event in parsed] == ["a", "b"]
    assert parsed[0]["x"] == 1


def test_atomic_write_failure_preserves_previous_file(tmp_path,
                                                      monkeypatch):
    target = tmp_path / "report.json"
    atomic_write_text(str(target), "original")
    real_replace = os.replace

    def broken_replace(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(os, "replace", broken_replace)
    with pytest.raises(OSError):
        atomic_write_text(str(target), "clobbered")
    monkeypatch.setattr(os, "replace", real_replace)
    assert target.read_text() == "original"
    assert [p.name for p in tmp_path.iterdir()] == ["report.json"]


# ---------------------------------------------------------------------
# Schema v2 golden report
# ---------------------------------------------------------------------


def test_build_report_schema_v2_golden_keys():
    from repro.compiler import compile_source
    from repro.observe import trace as obs_trace

    session = TraceSession()
    with obs_trace.use(session):
        from repro.compiler import arg
        result = compile_source(
            "function y = f(x)\ny = x + 1.0;\nend",
            args=[arg((1, 8))], use_cache=False)
    report = build_report(result=result, session=session)
    assert report["schema"] == SCHEMA
    # Pinned v2 layout: v1 keys survive, v2 adds metrics/events/process.
    assert set(report) == {"schema", "compile", "counters", "spans",
                           "metrics", "events", "cache", "native",
                           "process"}
    assert set(report["metrics"]) == {"snapshot", "summary"}
    snapshot = report["metrics"]["snapshot"]
    assert snapshot["schema"] == SNAPSHOT_SCHEMA
    for serialized in snapshot["histograms"].values():
        assert serialized["layout"] == BUCKET_LAYOUT
    # Per-stage compile latencies made it into the registry.
    assert any(name.startswith("compile.stage.")
               for name in snapshot["histograms"])
    # The cache section is scoped to this run's deltas (one uncached
    # compile: no hits), while process-wide totals live under process.
    assert report["cache"]["hits"] == 0
    assert set(report["process"]) == {"cache", "native"}
    json.dumps(report)  # fully serializable


# ---------------------------------------------------------------------
# repro-stats
# ---------------------------------------------------------------------


BENCH = {
    "experiment": "E-test",
    "kernels": [
        {"kernel": "fir", "compiled_wall_s": 0.004,
         "reference_wall_s": 0.023, "cycle_speedup": 6.6},
        {"kernel": "fft", "compiled_wall_s": 0.002,
         "reference_wall_s": 0.026, "cycle_speedup": 1.6},
    ],
    "aggregate": {"compiled_wall_s": 0.006, "reference_wall_s": 0.049},
}


def _write(path, document):
    path.write_text(json.dumps(document, indent=2))
    return str(path)


def test_stats_check_passes_on_identical_runs(tmp_path, capsys):
    base = _write(tmp_path / "base.json", BENCH)
    fresh = _write(tmp_path / "fresh.json", BENCH)
    assert stats_main(["check", fresh, "--against", base,
                       "--tolerance", "0.5"]) == 0
    assert "OK" in capsys.readouterr().out


def test_stats_check_fails_on_slowed_run(tmp_path, capsys):
    slowed = json.loads(json.dumps(BENCH))
    for row in slowed["kernels"]:
        row["compiled_wall_s"] *= 10
    base = _write(tmp_path / "base.json", BENCH)
    fresh = _write(tmp_path / "fresh.json", slowed)
    assert stats_main(["check", fresh, "--against", base,
                       "--tolerance", "0.5", "--abs-floor", "0.0"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "fir.compiled_wall_s" in out


def test_stats_check_fails_on_missing_kernel(tmp_path, capsys):
    shrunk = json.loads(json.dumps(BENCH))
    shrunk["kernels"] = shrunk["kernels"][:1]
    base = _write(tmp_path / "base.json", BENCH)
    fresh = _write(tmp_path / "fresh.json", shrunk)
    assert stats_main(["check", fresh, "--against", base]) == 1
    assert "missing" in capsys.readouterr().out


def test_stats_check_tolerance_allows_noise(tmp_path):
    noisy = json.loads(json.dumps(BENCH))
    for row in noisy["kernels"]:
        row["compiled_wall_s"] *= 1.3  # inside 50% headroom
    base = _write(tmp_path / "base.json", BENCH)
    fresh = _write(tmp_path / "fresh.json", noisy)
    assert stats_main(["check", fresh, "--against", base,
                       "--tolerance", "0.5"]) == 0


def test_stats_check_committed_trajectories_self_consistent():
    """The committed BENCH files gate cleanly against themselves."""
    for name in ("BENCH_e1.json", "BENCH_native.json"):
        path = os.path.join(os.path.dirname(__file__), "..",
                            "benchmarks", "results", name)
        assert stats_main(["check", path, "--against", path,
                           "--tolerance", "0.0"]) == 0


def test_stats_show_and_diff_smoke(tmp_path, capsys):
    base = _write(tmp_path / "base.json", BENCH)
    slowed = json.loads(json.dumps(BENCH))
    slowed["kernels"][0]["compiled_wall_s"] = 0.008
    fresh = _write(tmp_path / "fresh.json", slowed)
    assert stats_main(["show", base]) == 0
    out = capsys.readouterr().out
    assert "fir" in out and "compiled_wall_s" in out
    assert stats_main(["diff", base, fresh]) == 0
    out = capsys.readouterr().out
    assert "fir.compiled_wall_s" in out and "+100" in out


# ---------------------------------------------------------------------
# Batch aggregation: jobs=1 and jobs=N expose the same metric set
# ---------------------------------------------------------------------


def _batch(jobs):
    from repro.service.jobs import CompileJob, next_job_id
    from repro.service.pool import CompileService

    compile_jobs = [
        CompileJob(job_id=next_job_id(f"m{tag}"),
                   source=(f"function y = k{tag}(x)\n"
                           f"y = x * {tag}.0 + 1.0;\nend"),
                   args=["double:1x16"])
        for tag in range(4)]
    with CompileService(jobs=jobs) as service:
        return service.compile_batch(compile_jobs)


def test_batch_metric_set_is_identical_across_worker_counts():
    serial = _batch(1).to_report()["metrics"]["snapshot"]
    parallel = _batch(2).to_report()["metrics"]["snapshot"]
    assert set(serial["histograms"]) == set(parallel["histograms"])
    assert set(serial["counters"]) == set(parallel["counters"])
    for name in ("service.queue_wait_s", "service.exec_s"):
        assert serial["histograms"][name]["count"] == 4
        assert parallel["histograms"][name]["count"] == 4
